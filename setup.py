"""Setup shim.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works on minimal offline environments that lack
the ``wheel`` package (pip then falls back to the legacy
``setup.py develop`` editable path, which needs nothing but setuptools).
"""

from setuptools import setup

setup()
