"""Negra/Tiger export-format reader (the disco-dop ``export`` format).

One sentence per ``#BOS n`` … ``#EOS n`` block; one node per line::

    #BOS 1
    The     DT   --   SB   500
    cat     NN   --   HD   500
    sat     VBD  --   HD   501
    #500    NP   --   SB   501
    #501    S    --   --   0
    #EOS 1

Columns are WORD TAG MORPH FUNC PARENT (export v3) or WORD LEMMA TAG
MORPH FUNC PARENT after a ``#FORMAT 4`` directive.  ``#NNN`` first
fields introduce nonterminals; PARENT ``0`` attaches to the (virtual)
root.  Secondary-edge column pairs after PARENT are ignored.

Sibling order follows the corpus convention: constituents are ordered
by the position of their first terminal (terminals keep sentence
order); childless nonterminals sort last, in declaration order.  The
terminal mapping matches the rest of the library — a preterminal node
labeled with the TAG holding the WORD as a leaf child.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.corpora.normalize import NormalizeOptions, normalize_node
from repro.errors import CorpusParseError
from repro.trees.node import TreeNode
from repro.trees.tree import LabeledTree

#: FUNC column values meaning "no function annotated".
_NO_FUNCTION = frozenset({"", "-", "--"})

#: Sort key for constituents that dominate no terminal at all.
_NO_SPAN = 1 << 60


class _Sentence:
    """One ``#BOS``…``#EOS`` block under construction."""

    __slots__ = ("number", "line", "terminals", "nonterminals", "order")

    def __init__(self, number: str, line: int):
        self.number = number
        self.line = line
        #: node id -> (label, parent id); terminals get ids 0,1,2,…
        #: and nonterminals keep their 500+ ids.
        self.terminals: list[tuple[TreeNode, int]] = []
        self.nonterminals: dict[int, tuple[str, int, int]] = {}
        self.order: list[int] = []  # nonterminal ids in declaration order


def iter_parse_export(
    source: str | Iterable[str],
    normalize: NormalizeOptions | None = None,
    functions: str | None = None,
    root_label: str = "VROOT",
    path: str | None = None,
) -> Iterator[LabeledTree]:
    """Lazily parse export-format sentences into labeled trees.

    ``functions='add'`` appends the FUNC column to labels
    (``NP`` → ``NP-SB``), giving the export reader parity with corpora
    whose brackets carry function labels; any other value leaves labels
    as annotated (the export format keeps functions out of the label
    column, so there is nothing to remove).
    """
    if isinstance(source, str):
        source = source.splitlines()
    options = normalize if normalize is not None else NormalizeOptions()
    add_functions = functions == "add"
    has_lemma = False
    sentence: _Sentence | None = None
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("%%"):
            continue
        fields = line.split()
        keyword = fields[0]
        if keyword == "#FORMAT":
            has_lemma = len(fields) > 1 and fields[1] == "4"
            continue
        if keyword == "#BOS":
            if sentence is not None:
                raise CorpusParseError(
                    f"#BOS inside sentence {sentence.number}", path, lineno, 1
                )
            if len(fields) < 2:
                raise CorpusParseError("#BOS without a number", path, lineno, 1)
            sentence = _Sentence(fields[1], lineno)
            continue
        if keyword == "#EOS":
            if sentence is None:
                raise CorpusParseError("#EOS outside any sentence", path, lineno, 1)
            if len(fields) > 1 and fields[1] != sentence.number:
                raise CorpusParseError(
                    f"#EOS {fields[1]} does not match #BOS {sentence.number}",
                    path,
                    lineno,
                    1,
                )
            root = _build(sentence, root_label, path, lineno)
            sentence = None
            root = normalize_node(root, options)
            if root is not None:
                yield LabeledTree(root)
            continue
        if sentence is None:
            raise CorpusParseError(
                f"node line outside #BOS/#EOS: {line!r}", path, lineno, 1
            )
        _add_node(sentence, fields, has_lemma, add_functions, path, lineno)
    if sentence is not None:
        raise CorpusParseError(
            f"sentence {sentence.number} opened at line {sentence.line} "
            "was never closed with #EOS",
            path,
            sentence.line,
            1,
        )


def _add_node(
    sentence: _Sentence,
    fields: list[str],
    has_lemma: bool,
    add_functions: bool,
    path: str | None,
    lineno: int,
) -> None:
    width = 6 if has_lemma else 5
    if len(fields) < width:
        raise CorpusParseError(
            f"expected at least {width} columns, got {len(fields)}",
            path,
            lineno,
            1,
        )
    word = fields[0]
    tag = fields[width - 4]
    func = fields[width - 2]
    parent_field = fields[width - 1]
    if not parent_field.isdigit():
        raise CorpusParseError(
            f"parent column {parent_field!r} is not a number", path, lineno, 1
        )
    parent = int(parent_field)
    label = tag
    if add_functions and func not in _NO_FUNCTION:
        label = f"{tag}-{func}"
    if word.startswith("#") and word[1:].isdigit():
        node_id = int(word[1:])
        if node_id in sentence.nonterminals:
            raise CorpusParseError(
                f"duplicate nonterminal id #{node_id}", path, lineno, 1
            )
        sentence.nonterminals[node_id] = (label, parent, lineno)
        sentence.order.append(node_id)
    else:
        preterminal = TreeNode(label)
        preterminal.add(word)
        sentence.terminals.append((preterminal, parent))


def _build(
    sentence: _Sentence, root_label: str, path: str | None, lineno: int
) -> TreeNode:
    if not sentence.terminals and not sentence.nonterminals:
        raise CorpusParseError(
            f"sentence {sentence.number} has no nodes", path, lineno, 1
        )
    nodes: dict[int, TreeNode] = {
        node_id: TreeNode(label)
        for node_id, (label, _, _) in sentence.nonterminals.items()
    }
    # children_of[parent] = [(span_start, declaration_index, node)]
    children_of: dict[int, list[tuple[int, int, TreeNode]]] = {}
    span_start: dict[int, int] = {}

    def attach(parent: int, key: tuple[int, int, TreeNode], where: int) -> None:
        if parent != 0 and parent not in nodes:
            raise CorpusParseError(
                f"unknown parent #{parent}", path, where, 1
            )
        children_of.setdefault(parent, []).append(key)

    for index, (preterminal, parent) in enumerate(sentence.terminals):
        attach(parent, (index, index, preterminal), sentence.line)
        # Propagate the first-terminal position up the nonterminal chain.
        seen: set[int] = set()
        while parent != 0 and parent not in seen:
            seen.add(parent)
            if parent not in sentence.nonterminals:
                break
            if parent in span_start:
                span_start[parent] = min(span_start[parent], index)
            else:
                span_start[parent] = index
            parent = sentence.nonterminals[parent][1]
    for declaration, node_id in enumerate(sentence.order):
        label, parent, where = sentence.nonterminals[node_id]
        start = span_start.get(node_id, _NO_SPAN)
        attach(parent, (start, len(sentence.terminals) + declaration, nodes[node_id]), where)
    for parent, kids in children_of.items():
        kids.sort(key=lambda item: (item[0], item[1]))
        if parent != 0:
            nodes[parent].children = [node for _, _, node in kids]
    top = [node for _, _, node in sorted(children_of.get(0, []))]
    if not top:
        raise CorpusParseError(
            f"sentence {sentence.number} has no root (parent 0) node",
            path,
            sentence.line,
            1,
        )
    if len(top) == 1:
        return top[0]
    return TreeNode(root_label, top)


def parse_export(
    source: str | Iterable[str],
    normalize: NormalizeOptions | None = None,
    functions: str | None = None,
    root_label: str = "VROOT",
    path: str | None = None,
) -> list[LabeledTree]:
    """Parse a whole export-format document into a list of trees."""
    return list(
        iter_parse_export(
            source,
            normalize=normalize,
            functions=functions,
            root_label=root_label,
            path=path,
        )
    )
