"""Streaming reader for real DBLP-style XML: one tree per publication.

The paper's stream construction "removed the root tag of the document"
and treated each remaining top-level element as one tree of the stream.
A real ``dblp.xml`` is far larger than memory, so this reader never
materialises the document: chunks are fed into an incremental lexical
scanner (:class:`ForestSplitter`) that tracks just enough state —
open-element depth, tag/quote/comment/CDATA/PI/DOCTYPE modes — to carve
each complete child element of the root out of a bounded buffer.  Every
carved record then goes through the library's own
:func:`~repro.trees.xml.iter_parse_forest`, so entity handling,
attribute mapping and error taxonomy are byte-identical to the
whole-document parser (property-tested in ``tests/test_corpora.py``).

Memory is bounded by one record plus one chunk: the buffer is compacted
after every scan, and inter-record whitespace at the top level is
discarded as it arrives.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XmlParseError
from repro.trees.tree import LabeledTree
from repro.trees.xml import iter_parse_forest

#: The publication elements of the real DBLP DTD (children of ``<dblp>``).
DBLP_RECORD_TAGS = frozenset(
    {
        "article",
        "inproceedings",
        "proceedings",
        "book",
        "incollection",
        "phdthesis",
        "mastersthesis",
        "www",
        "data",
    }
)

#: Default chunk size in characters (~64 KiB of text per read).
DEFAULT_CHUNK_CHARS = 1 << 16


class ForestSplitter:  # sketchlint: thread-confined
    """Incrementally split an XML document into its root's child elements.

    Feed text chunks with :meth:`feed`; each call returns the complete
    depth-1 elements (``(absolute_offset, text)`` pairs) finished by
    that chunk.  The root's own tags are consumed and never emitted —
    the paper's "remove the root tag" construction.  Call :meth:`close`
    at end of input to surface truncation as :class:`XmlParseError`.
    """

    _TEXT, _TAG, _COMMENT, _CDATA, _PI, _DECL = range(6)

    def __init__(self) -> None:
        self.buffer = ""
        self.offset = 0  # absolute document offset of buffer[0]
        self.done = False  # saw the root close tag
        self._pos = 0  # scan position within buffer
        self._state = self._TEXT
        self._depth = 0  # currently open elements (root included)
        self._record_start = -1  # buffer offset of the open record, or -1
        self._tag_start = -1  # buffer offset of the '<' being scanned
        self._tag_is_close = False
        self._quote = ""
        self._subset_depth = 0  # '[' nesting inside <!DOCTYPE ...>
        self._saw_root = False

    # ------------------------------------------------------------------
    def feed(self, chunk: str) -> list[tuple[int, str]]:
        """Add text; return records completed by it (offset, text)."""
        if self.done or not chunk:
            return []
        self.buffer += chunk
        records: list[tuple[int, str]] = []
        while self._scan_step(records):
            pass
        self._compact()
        return records

    def close(self) -> None:
        """Assert the document ended cleanly (root closed, no open lexeme)."""
        if self.done:
            return
        if not self._saw_root:
            raise XmlParseError("no root element found", self.offset + self._pos)
        where = self.offset + (
            self._tag_start if self._state != self._TEXT and self._tag_start >= 0
            else self._pos
        )
        if self._state != self._TEXT:
            raise XmlParseError("unterminated markup at end of input", where)
        raise XmlParseError(
            f"unterminated document: {self._depth} element(s) still open", where
        )

    # ------------------------------------------------------------------
    def _scan_step(self, records: list[tuple[int, str]]) -> bool:
        """Advance one lexeme; return False when more input is needed."""
        buffer = self.buffer
        if self._state == self._TEXT:
            start = buffer.find("<", self._pos)
            if start < 0:
                self._pos = len(buffer)
                return False
            # Classifying '<' needs up to 9 chars of lookahead (<![CDATA[).
            if len(buffer) - start < 9 and not self._classifiable(buffer, start):
                self._pos = start
                return False
            self._pos = start
            self._tag_start = start
            if buffer.startswith("<!--", start):
                self._state = self._COMMENT
            elif buffer.startswith("<![CDATA[", start):
                self._state = self._CDATA
            elif buffer.startswith("<?", start):
                self._state = self._PI
            elif buffer.startswith("<!", start):
                self._state = self._DECL
                self._subset_depth = 0
                self._pos = start + 2
            else:
                self._state = self._TAG
                self._tag_is_close = buffer.startswith("</", start)
                self._quote = ""
                self._pos = start + (2 if self._tag_is_close else 1)
                if not self._tag_is_close and self._depth == 1:
                    self._record_start = start
            return True
        if self._state == self._COMMENT:
            return self._skip_until("-->")
        if self._state == self._CDATA:
            return self._skip_until("]]>")
        if self._state == self._PI:
            return self._skip_until("?>")
        if self._state == self._DECL:
            return self._scan_declaration()
        return self._scan_tag(records)

    @staticmethod
    def _classifiable(buffer: str, start: int) -> bool:
        """True when the '<' can be classified without more lookahead."""
        prefix = buffer[start : start + 9]
        for special in ("<![CDATA[", "<!--"):
            if len(prefix) < len(special) and special.startswith(prefix):
                return False
        return True

    def _skip_until(self, terminator: str) -> bool:
        end = self.buffer.find(terminator, self._pos)
        if end < 0:
            # Keep the whole construct buffered until its terminator shows.
            self._pos = self._tag_start
            return False
        self._pos = end + len(terminator)
        self._state = self._TEXT
        self._tag_start = -1
        return True

    def _scan_declaration(self) -> bool:
        """Skip ``<!DOCTYPE …>`` including a ``[...]`` internal subset."""
        buffer = self.buffer
        pos = self._pos
        while pos < len(buffer):
            ch = buffer[pos]
            if ch == "[":
                self._subset_depth += 1
            elif ch == "]":
                self._subset_depth -= 1
            elif ch == ">" and self._subset_depth <= 0:
                self._pos = pos + 1
                self._state = self._TEXT
                self._tag_start = -1
                return True
            pos += 1
        self._pos = pos
        return False

    def _scan_tag(self, records: list[tuple[int, str]]) -> bool:
        buffer = self.buffer
        pos = self._pos
        while pos < len(buffer):
            ch = buffer[pos]
            if self._quote:
                if ch == self._quote:
                    self._quote = ""
            elif ch in ("'", '"'):
                self._quote = ch
            elif ch == ">":
                self._finish_tag(pos, records)
                return True
            pos += 1
        self._pos = pos
        return False

    def _finish_tag(self, gt_pos: int, records: list[tuple[int, str]]) -> None:
        self_closing = not self._tag_is_close and self.buffer[gt_pos - 1] == "/"
        self._pos = gt_pos + 1
        self._state = self._TEXT
        if self._tag_is_close:
            if self._depth == 0:
                raise XmlParseError(
                    "close tag without an open element",
                    self.offset + self._tag_start,
                )
            self._depth -= 1
            if self._depth == 1 and self._record_start >= 0:
                self._emit(records, self._record_start, gt_pos + 1)
            elif self._depth == 0:
                self.done = True
        elif self_closing:
            if self._depth == 1:
                self._emit(records, self._tag_start, gt_pos + 1)
            elif self._depth == 0:
                # A self-closing root: an empty forest.
                self._saw_root = True
                self.done = True
        else:
            self._depth += 1
            if self._depth == 1:
                self._saw_root = True
        self._tag_start = -1

    def _emit(
        self, records: list[tuple[int, str]], start: int, end: int
    ) -> None:
        records.append((self.offset + start, self.buffer[start:end]))
        self._record_start = -1

    def _compact(self) -> None:
        """Drop the consumed prefix; keep any open record or lexeme."""
        keep = self._pos
        if self._record_start >= 0:
            keep = min(keep, self._record_start)
        if self._state != self._TEXT and self._tag_start >= 0:
            keep = min(keep, self._tag_start)
        if keep <= 0:
            return
        self.buffer = self.buffer[keep:]
        self.offset += keep
        self._pos -= keep
        if self._record_start >= 0:
            self._record_start -= keep
        if self._tag_start >= 0:
            self._tag_start -= keep


def iter_split_records(
    chunks,  # type: Iterator[str] | list[str]
) -> Iterator[tuple[int, str]]:
    """Drive a :class:`ForestSplitter` over an iterable of text chunks."""
    splitter = ForestSplitter()
    for chunk in chunks:
        yield from splitter.feed(chunk)
        if splitter.done:
            return
    splitter.close()


def iter_dblp_trees(
    path: str,
    record_tags=None,
    keep_attributes: bool = True,
    chunk_chars: int = DEFAULT_CHUNK_CHARS,
    encoding: str = "utf-8",
) -> Iterator[LabeledTree]:
    """Stream one :class:`LabeledTree` per publication from a DBLP XML file.

    ``record_tags`` restricts the yielded records to the given element
    names (e.g. :data:`DBLP_RECORD_TAGS`); ``None`` keeps every child of
    the root.  Memory stays bounded by the largest single record.
    """
    wanted = frozenset(record_tags) if record_tags is not None else None
    with open(path, "r", encoding=encoding) as handle:
        chunks = iter(lambda: handle.read(chunk_chars), "")
        for record_offset, text in iter_split_records(chunks):
            try:
                trees = list(iter_parse_forest(text, keep_attributes=keep_attributes))
            except XmlParseError as exc:
                raise XmlParseError(
                    f"in record at document offset {record_offset}: {exc.args[0]}"
                ) from exc
            # The splitter emits exactly one complete element per record.
            assert len(trees) == 1
            tree = trees[0]
            if wanted is None or tree.label_of(tree.root) in wanted:
                yield tree
