"""Streaming readers for real corpus formats.

The synthetic :mod:`repro.datasets` generators reproduce the *shape* of
the paper's corpora; this package reads the real formats those corpora
ship in, as lazily-streaming ``LabeledTree`` iterators that plug
straight into :class:`~repro.stream.engine.StreamProcessor`:

* :func:`~repro.corpora.ptb.iter_parse_ptb` — Penn-Treebank bracketed
  trees (``.mrg``), with position-annotated
  :class:`~repro.errors.CorpusParseError`;
* :func:`~repro.corpora.export.iter_parse_export` — Negra/Tiger export
  format;
* :func:`~repro.corpora.dblp.iter_dblp_trees` — a real DBLP-style XML
  document split into one tree per publication ("remove the root tag")
  with memory bounded by one record;
* :class:`~repro.corpora.reader.CorpusReader` — glob'd multi-file
  corpora with encoding and normalisation options (strip function
  labels, drop punctuation, remove ``-NONE-`` traces).

See ``docs/corpora.md`` for formats, options, CLI usage and fixture
provenance.
"""

from repro.corpora.dblp import DBLP_RECORD_TAGS, ForestSplitter, iter_dblp_trees
from repro.corpora.export import iter_parse_export, parse_export
from repro.corpora.normalize import NormalizeOptions, normalize_node, strip_function
from repro.corpora.ptb import iter_parse_ptb, parse_ptb
from repro.corpora.reader import FORMATS, CorpusReader

__all__ = [
    "CorpusReader",
    "DBLP_RECORD_TAGS",
    "FORMATS",
    "ForestSplitter",
    "NormalizeOptions",
    "iter_dblp_trees",
    "iter_parse_export",
    "iter_parse_ptb",
    "normalize_node",
    "parse_export",
    "parse_ptb",
    "strip_function",
]
