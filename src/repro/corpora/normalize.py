"""Tree normalisation shared by the corpus readers.

Real treebank annotation carries information the paper's pattern counts
usually should not distinguish on: grammatical-function suffixes
(``NP-SBJ`` vs ``NP``), co-indexing (``NP-SBJ-1``), empty ``-NONE-``
trace elements, and punctuation preterminals.  The options here mirror
disco-dop's ``CorpusReader`` knobs (``functions='remove'``,
``punct='remove'``, ``removeempty``): every reader parses first, then
runs the arriving tree through :func:`normalize_node` before freezing it
into a :class:`~repro.trees.tree.LabeledTree`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.trees.node import TreeNode

#: Penn-Treebank / Negra punctuation preterminal tags.
PUNCTUATION_TAGS = frozenset(
    {".", ",", ":", "``", "''", "-LRB-", "-RRB-", "$,", "$.", "$(", "$["}
)

#: The PTB empty-element tag; disco-dop additionally treats ``''``/``None``
#: terminals as empty, which cannot occur here (labels are non-empty).
EMPTY_TAG = "-NONE-"

_FUNCTION_CHOICES = (None, "leave", "remove")
_PUNCT_CHOICES = (None, "leave", "remove")


@dataclass(frozen=True)
class NormalizeOptions:
    """Label/terminal normalisation applied to every parsed tree.

    Parameters
    ----------
    functions:
        ``None``/``'leave'`` keeps syntactic labels as annotated;
        ``'remove'`` strips hyphen/equals-separated grammatical function
        and co-index suffixes from *internal* labels (``NP-SBJ-1`` →
        ``NP``).  Special tags that start with a hyphen (``-NONE-``,
        ``-LRB-``) are never touched, and terminal tokens are never
        rewritten.
    punct:
        ``None``/``'leave'`` keeps punctuation; ``'remove'`` drops
        punctuation preterminals (tag in :data:`PUNCTUATION_TAGS`, or a
        one-token preterminal whose token has no alphanumerics) together
        with any ancestors left empty.
    remove_empty:
        Drop ``-NONE-`` trace preterminals and any ancestors left empty
        (the disco-dop ``removeempty`` behaviour).
    """

    functions: str | None = None
    punct: str | None = None
    remove_empty: bool = False

    def __post_init__(self) -> None:
        if self.functions not in _FUNCTION_CHOICES:
            raise ConfigError(
                f"functions must be one of {_FUNCTION_CHOICES}, got {self.functions!r}"
            )
        if self.punct not in _PUNCT_CHOICES:
            raise ConfigError(
                f"punct must be one of {_PUNCT_CHOICES}, got {self.punct!r}"
            )

    @property
    def is_noop(self) -> bool:
        return (
            self.functions in (None, "leave")
            and self.punct in (None, "leave")
            and not self.remove_empty
        )


def strip_function(label: str) -> str:
    """``NP-SBJ-1`` → ``NP``; hyphen-initial special tags pass through."""
    if label.startswith("-"):
        return label
    cut = len(label)
    for separator in "-=":
        index = label.find(separator)
        if 0 < index < cut:
            cut = index
    return label[:cut]


def _is_punctuation(tag: str, token: str) -> bool:
    if tag in PUNCTUATION_TAGS:
        return True
    return not any(ch.isalnum() for ch in token) and tag != EMPTY_TAG


def normalize_node(root: TreeNode, options: NormalizeOptions) -> TreeNode | None:
    """Return a normalised copy of ``root``, or ``None`` if nothing is left.

    The input is never mutated.  Iterative post-order so arbitrarily deep
    parse trees (treebank sentences are narrow and deep) cannot overflow
    the recursion limit.
    """
    if options.is_noop:
        return root
    rebuilt: dict[int, TreeNode | None] = {}
    stack: list[tuple[TreeNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))
            continue
        if not node.children:
            # A terminal token: kept verbatim; its fate is decided by the
            # preterminal above it.
            rebuilt[id(node)] = TreeNode(node.label)
            continue
        if options.remove_empty and node.label == EMPTY_TAG:
            rebuilt[id(node)] = None
            continue
        if (
            options.punct == "remove"
            and len(node.children) == 1
            and not node.children[0].children
            and _is_punctuation(node.label, node.children[0].label)
        ):
            rebuilt[id(node)] = None
            continue
        kids = [rebuilt[id(child)] for child in node.children]
        kept = [kid for kid in kids if kid is not None]
        if not kept:
            rebuilt[id(node)] = None  # every child pruned: empty ancestor
            continue
        label = node.label
        if options.functions == "remove":
            label = strip_function(label)
        rebuilt[id(node)] = TreeNode(label, kept)
    return rebuilt[id(root)]
