"""Multi-file corpus reader (disco-dop style) over the format parsers.

:class:`CorpusReader` binds a glob'd file set, an encoding, a format and
the normalisation options into one lazily-streaming ``LabeledTree``
iterator that plugs directly into
:class:`~repro.stream.engine.StreamProcessor` / ``SketchTree.ingest`` —
the same contract as the synthetic :mod:`repro.datasets` generators.

>>> reader = CorpusReader("wsj/*.mrg", functions="remove", punct="remove")
>>> processor.run(reader)                               # doctest: +SKIP
"""

from __future__ import annotations

from glob import glob
from pathlib import Path
from typing import Iterator

from repro.corpora.dblp import iter_dblp_trees
from repro.corpora.export import iter_parse_export
from repro.corpora.normalize import NormalizeOptions
from repro.corpora.ptb import iter_parse_ptb
from repro.errors import ConfigError
from repro.trees.tree import LabeledTree

#: Supported corpus formats.
FORMATS = ("ptb", "export", "dblp-xml")


class CorpusReader:  # sketchlint: thread-confined
    """Stream labeled trees from a set of real corpus files.

    Parameters
    ----------
    path:
        A filename, a glob pattern (``"wsj/*.mrg"``), or a sequence of
        either.  Matches are streamed in sorted order, file by file.
    format:
        ``'ptb'`` — Penn-Treebank bracketed trees (``.mrg``);
        ``'export'`` — Negra/Tiger export format;
        ``'dblp-xml'`` — one XML document whose root's children are the
        stream (the paper's DBLP construction).
    encoding:
        Text encoding of the corpus files.
    functions:
        ``'remove'`` strips grammatical-function suffixes
        (``NP-SBJ`` → ``NP``); for ``'export'``, ``'add'`` instead
        appends the FUNC column to labels.  Default: leave labels as is.
    punct:
        ``'remove'`` drops punctuation preterminals (and ancestors left
        empty).  Default: keep.
    remove_empty:
        Drop ``-NONE-`` trace preterminals and emptied ancestors.
    root_label:
        Label of the virtual root added when an export sentence has
        several parent-0 constituents.
    keep_attributes:
        (``dblp-xml``) map attributes to ``@name`` child nodes, as
        :func:`~repro.trees.xml.parse_xml` does.
    record_tags:
        (``dblp-xml``) restrict records to these element names, e.g.
        :data:`~repro.corpora.dblp.DBLP_RECORD_TAGS`; ``None`` keeps all.
    """

    def __init__(
        self,
        path,
        format: str = "ptb",
        encoding: str = "utf-8",
        functions: str | None = None,
        punct: str | None = None,
        remove_empty: bool = False,
        root_label: str = "VROOT",
        keep_attributes: bool = True,
        record_tags=None,
    ):
        if format not in FORMATS:
            raise ConfigError(f"format must be one of {FORMATS}, got {format!r}")
        if format == "dblp-xml" and (
            functions not in (None, "leave")
            or punct not in (None, "leave")
            or remove_empty
        ):
            raise ConfigError(
                "functions/punct/remove_empty are treebank options; "
                "they do not apply to format='dblp-xml'"
            )
        if functions == "add" and format != "export":
            raise ConfigError(
                "functions='add' needs a FUNC column and is only supported "
                "for format='export'"
            )
        normalize_functions = functions if functions != "add" else None
        self.format = format
        self.encoding = encoding
        self.functions = functions
        self.root_label = root_label
        self.keep_attributes = keep_attributes
        self.record_tags = record_tags
        self.normalize = NormalizeOptions(
            functions=normalize_functions, punct=punct, remove_empty=remove_empty
        )
        self._patterns = [path] if isinstance(path, (str, Path)) else list(path)
        if not self._patterns:
            raise ConfigError("at least one corpus path or pattern is required")

    # ------------------------------------------------------------------
    def files(self) -> list[Path]:
        """Resolve the patterns to a sorted, de-duplicated file list."""
        matched: list[Path] = []
        for pattern in self._patterns:
            text = str(pattern)
            candidate = Path(text)
            if candidate.is_file():
                matched.append(candidate)
            else:
                matched.extend(Path(hit) for hit in glob(text, recursive=True))
        unique = sorted({path.resolve() for path in matched})
        if not unique:
            raise ConfigError(
                f"no corpus files matched {[str(p) for p in self._patterns]}"
            )
        return unique

    def itertrees(self) -> Iterator[LabeledTree]:
        """Lazily yield every tree of every matched file, in file order."""
        for path in self.files():
            yield from self._read_file(path)

    __iter__ = itertrees

    def trees(self) -> list[LabeledTree]:
        """Materialise the whole corpus (tests and small fixtures only)."""
        return list(self.itertrees())

    # ------------------------------------------------------------------
    def _read_file(self, path: Path) -> Iterator[LabeledTree]:
        if self.format == "dblp-xml":
            yield from iter_dblp_trees(
                str(path),
                record_tags=self.record_tags,
                keep_attributes=self.keep_attributes,
                encoding=self.encoding,
            )
            return
        with open(path, "r", encoding=self.encoding) as handle:
            if self.format == "ptb":
                yield from iter_parse_ptb(
                    handle, normalize=self.normalize, path=str(path)
                )
            else:
                yield from iter_parse_export(
                    handle,
                    normalize=self.normalize,
                    functions=self.functions,
                    root_label=self.root_label,
                    path=str(path),
                )
