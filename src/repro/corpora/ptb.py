"""Penn-Treebank bracketed-tree lexer and parser (streaming).

The classic ``.mrg`` file format is a sequence of bracketed trees::

    ( (S (NP-SBJ (DT The) (NN cat)) (VP (VBD sat)) (. .)) )

The reader is a two-stage design — a regex tokenizer producing
line/column-annotated tokens, and an explicit-stack bracket parser — so
errors point at the offending token and arbitrarily deep parses cannot
overflow the recursion limit.  Each complete top-level tree is yielded
as soon as its closing bracket arrives, so a multi-gigabyte treebank
streams in constant memory straight into
:class:`~repro.stream.engine.StreamProcessor`.

Mapping: a nonterminal ``(NP ...)`` becomes an internal node labeled
``NP``; a terminal token becomes a leaf child of its preterminal —
the same "values are leaf children" convention as
:mod:`repro.trees.xml`, so treebank and XML streams feed identical
queries.  The conventional label-less wrapper bracket around each
sentence is unwrapped.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.corpora.normalize import NormalizeOptions, normalize_node
from repro.errors import CorpusParseError
from repro.trees.node import TreeNode
from repro.trees.tree import LabeledTree

#: Token kinds.
LPAREN = "("
RPAREN = ")"
STRING = "STRING"

_TOKEN_PATTERN = re.compile(r"\(|\)|[^()\s]+")


class Token:
    """One lexical token with its 1-based source position."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: str, line: int, column: int):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.value!r}, line={self.line}, column={self.column})"


def iter_tokens(lines: Iterable[str]) -> Iterator[Token]:
    """Tokenize lines into parens and label/terminal strings."""
    for lineno, line in enumerate(lines, start=1):
        for match in _TOKEN_PATTERN.finditer(line):
            text = match.group()
            if text == "(":
                yield Token(LPAREN, text, lineno, match.start() + 1)
            elif text == ")":
                yield Token(RPAREN, text, lineno, match.start() + 1)
            else:
                yield Token(STRING, text, lineno, match.start() + 1)


class _Frame:
    """One open bracket: its (pending) label, children, and position."""

    __slots__ = ("label", "children", "line", "column")

    def __init__(self, line: int, column: int):
        self.label: str | None = None
        self.children: list[TreeNode] = []
        self.line = line
        self.column = column


def iter_parse_ptb(
    source: str | Iterable[str],
    normalize: NormalizeOptions | None = None,
    path: str | None = None,
) -> Iterator[LabeledTree]:
    """Lazily parse bracketed trees from a string or an iterable of lines.

    ``path`` only decorates error messages.  Trees that normalisation
    empties out entirely (e.g. a sentence that was all traces) are
    skipped, not yielded.
    """
    if isinstance(source, str):
        source = source.splitlines()
    options = normalize if normalize is not None else NormalizeOptions()
    stack: list[_Frame] = []
    last = (1, 1)
    for token in iter_tokens(source):
        last = (token.line, token.column)
        if token.kind == LPAREN:
            stack.append(_Frame(token.line, token.column))
        elif token.kind == STRING:
            if not stack:
                raise CorpusParseError(
                    f"token {token.value!r} outside any bracket",
                    path,
                    token.line,
                    token.column,
                )
            frame = stack[-1]
            if frame.label is None and not frame.children:
                frame.label = token.value
            else:
                frame.children.append(TreeNode(token.value))
        else:  # RPAREN
            if not stack:
                raise CorpusParseError(
                    "unbalanced ')'", path, token.line, token.column
                )
            frame = stack.pop()
            node = _close_frame(frame, path)
            if stack:
                stack[-1].children.append(node)
            else:
                root = normalize_node(node, options)
                if root is not None:
                    yield LabeledTree(root)
    if stack:
        frame = stack[0]
        raise CorpusParseError(
            f"unexpected end of input: bracket opened at line {frame.line}, "
            f"column {frame.column} was never closed",
            path,
            last[0],
            last[1],
        )


def _close_frame(frame: _Frame, path: str | None) -> TreeNode:
    if frame.label is not None:
        return TreeNode(frame.label, frame.children)
    # Label-less bracket: the PTB convention wraps each sentence in an
    # anonymous outer pair — unwrap its single child.
    if len(frame.children) == 1:
        return frame.children[0]
    detail = "an empty bracket" if not frame.children else (
        f"a label-less bracket with {len(frame.children)} children"
    )
    raise CorpusParseError(detail, path, frame.line, frame.column)


def parse_ptb(
    source: str | Iterable[str],
    normalize: NormalizeOptions | None = None,
    path: str | None = None,
) -> list[LabeledTree]:
    """Parse a whole bracketed-tree document into a list of trees."""
    return list(iter_parse_ptb(source, normalize=normalize, path=path))
