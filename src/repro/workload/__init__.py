"""Query workload generation, bucketed by selectivity.

Reproduces the paper's workload methodology (Section 7.3): queries are
ordered tree patterns *sampled from the data itself*, grouped into
selectivity buckets (``selectivity = actual count / total sequences
processed``), so that accuracy can be reported per selectivity range as
in Figures 10 and 12.  Composite SUM (three distinct patterns) and
PRODUCT (two distinct patterns) workloads mirror Sections 7.8/7.9.
"""

from repro.workload.generator import (
    ProductQuery,
    SumQuery,
    Workload,
    WorkloadQuery,
    generate_product_workload,
    generate_sum_workload,
    generate_workload,
)

__all__ = [
    "ProductQuery",
    "SumQuery",
    "Workload",
    "WorkloadQuery",
    "generate_product_workload",
    "generate_sum_workload",
    "generate_workload",
]
