"""The memoised EnumTree algorithm (paper Algorithm 3).

Let ``P(i, j)`` be the list of ordered tree patterns rooted at node ``i``
with exactly ``j`` edges.  To build ``P(i, j)``, choose ``t`` of ``i``'s
child edges (``1 ≤ t ≤ min(fanout, j)``, preserving sibling order), then
distribute the remaining ``j − t`` edges over the chosen children with a
composition ``x_1 + … + x_t = j − t, x_m ≥ 0``, and take the cartesian
product ``P(c_1, x_1) × … × P(c_t, x_t)``.  ``P(c, 0)`` is the paper's
``⊥``: the child is present as a bare leaf.

Because trees are processed in postorder, every child's table is complete
before its parent's — the memoisation is an explicit bottom-up pass rather
than recursion, so deep trees cannot overflow the interpreter stack.  The
same bottom-up structure powers the event-driven (SAX-style) enumerator
in :mod:`repro.stream.sax`, which shares :func:`node_table`.

Patterns are emitted in canonical nested-tuple form
``(label, (child, …))``.  Sub-patterns are *shared* between the patterns
that contain them, keeping the memory footprint close to the output size.
The result is a multiset: each element is one pattern occurrence, which is
exactly what the sketch must count.

Real corpora repeat the same subtree *shapes* constantly (DBLP especially),
so the per-node tables themselves are highly redundant across trees.
:class:`PatternTableMemo` interns each shape ``(label, child shapes)`` and
shares the finished table across every structurally identical subtree in a
stream — the "canonical-subtree → pattern-batch" cache from the ROADMAP.
Because ``node_table`` is a pure function of the label and the children's
tables, a memoised table is element-for-element the table the unmemoised
pass would have built, so emission order and content are bit-identical.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from repro.errors import ConfigError
from repro.trees.tree import LabeledTree, Nested

#: A node's table: ``table[j]`` lists the patterns rooted at the node
#: with exactly ``j`` edges (``table[0]`` is the single bare-leaf entry).
NodeTable = list  # list[list[Nested]]


def compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All tuples of ``parts`` non-negative integers summing to ``total``.

    >>> sorted(compositions(2, 2))
    [(0, 2), (1, 1), (2, 0)]
    """
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in compositions(total - first, parts - 1):
            yield (first,) + rest


#: Memoised ``compositions`` results: the argument space is tiny (both
#: bounded by ``k``) while ``_patterns_of_size`` asks for the same splits
#: for every node, so the recursive generator ran millions of times on
#: long streams.  Single-writer like the rest of the enumeration state:
#: only ingest paths reach it (see docs/concurrency.md).
_COMPOSITIONS_CACHE: dict[tuple[int, int], tuple[tuple[int, ...], ...]] = {}


def _compositions_cached(total: int, parts: int) -> tuple[tuple[int, ...], ...]:
    key = (total, parts)
    cached = _COMPOSITIONS_CACHE.get(key)
    if cached is None:
        cached = _COMPOSITIONS_CACHE[key] = tuple(compositions(total, parts))
    return cached


class PatternTableMemo:  # sketchlint: single-writer
    """Shares ``node_table`` results across structurally identical subtrees.

    Each subtree shape is interned to a dense integer id keyed by
    ``(k, label, child shape ids)``; the id indexes the finished
    :data:`NodeTable`.  Later occurrences of the shape — within one tree
    or across a whole stream — reuse the table outright, skipping the
    combinations/compositions/product work entirely and emitting the
    *same tuple objects*, which also keeps the encoder's LRU probes and
    the pattern multiset's memory footprint small.

    The memo may only be reset **between** trees: ids are dense per
    generation, and clearing mid-tree would let a fresh id collide with a
    stale child reference.  :meth:`tables_of` therefore flushes on entry
    (i.e. between trees by construction) once the interned shape universe
    exceeds ``limit``.

    Single-writer, like the synopsis that owns it: only ingest paths
    (``update*`` / ``delete_tree``) touch the memo, never ``estimate_*``.
    """

    __slots__ = ("limit", "hits", "misses", "flushes", "_ids", "_tables")

    def __init__(self, limit: int = 1 << 16):
        if limit < 1:
            raise ConfigError(f"memo limit must be >= 1, got {limit}")
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self._ids: dict[tuple, int] = {}
        self._tables: list[NodeTable] = []

    @property
    def n_shapes(self) -> int:
        """Distinct subtree shapes currently interned."""
        return len(self._ids)

    def tables_of(self, tree: LabeledTree, k: int) -> list[NodeTable]:
        """The per-node tables of ``tree``, shared through the memo.

        Bit-identical to building each table with :func:`node_table`:
        every memo hit returns a table produced by ``node_table`` on an
        identical ``(label, child tables)`` input.
        """
        if len(self._ids) > self.limit:
            self._ids.clear()
            self._tables.clear()
            self.flushes += 1
        ids = self._ids
        by_id = self._tables
        labels = tree.labels
        children = tree.children
        shapes: list[int] = []
        tables: list[NodeTable] = []
        for num in range(len(labels)):
            label = labels[num]
            kids = children[num]
            key = (k, label, tuple(shapes[kid - 1] for kid in kids))
            sid = ids.get(key)
            if sid is None:
                sid = len(by_id)
                ids[key] = sid
                table = node_table(
                    label, [tables[kid - 1] for kid in kids], k
                )
                by_id.append(table)
                self.misses += 1
            else:
                table = by_id[sid]
                self.hits += 1
            shapes.append(sid)
            tables.append(table)
        return tables


def enumerate_patterns(tree: LabeledTree, k: int) -> list[Nested]:
    """Every ordered tree pattern occurrence in ``tree`` with 1..k edges.

    Returns a list (multiset) of nested-tuple patterns; duplicates mean
    multiple occurrences of the same pattern.  ``k = 0`` yields an empty
    list — the paper's patterns have at least one edge.
    """
    return list(iter_pattern_multiset(tree, k))


def iter_pattern_multiset(
    tree: LabeledTree, k: int, memo: PatternTableMemo | None = None
) -> Iterator[Nested]:
    """Generator version of :func:`enumerate_patterns`.

    The per-node tables are still materialised (they are reused across
    parents), but the final union over nodes and sizes streams out lazily.
    With a ``memo``, tables are shared across structurally identical
    subtrees (bit-identical output — see :class:`PatternTableMemo`).
    """
    if k < 0:
        raise ConfigError(f"k must be >= 0, got {k}")
    if k == 0 or tree.n_nodes == 0:
        return
    if memo is not None:
        tables = memo.tables_of(tree, k)
    else:
        labels = tree.labels
        children = tree.children
        tables = []
        for num in range(len(labels)):  # postorder: children first
            child_tables = [tables[kid - 1] for kid in children[num]]
            tables.append(node_table(labels[num], child_tables, k))
    for table in tables:
        for j in range(1, k + 1):
            yield from table[j]


def collect_forest_patterns(
    trees, k: int, memo: PatternTableMemo | None = None
) -> tuple[list[Nested], list[int]]:
    """Materialise the pattern multisets of several trees into one list.

    The generator → array collection step of the batch pipeline: the
    per-tree generators are drained into a single flat list plus
    cumulative ``offsets`` (``offsets[t] .. offsets[t+1]`` are tree
    ``t``'s rows, ``len(offsets) == n_trees + 1``), which is exactly the
    shape :meth:`repro.core.batch.EncodedBatch.build` expects for its
    ``tree_offsets``.  Element order within each tree matches
    :func:`iter_pattern_multiset`, with or without the ``memo``.
    """
    patterns: list[Nested] = []
    offsets = [0]
    for tree in trees:
        patterns.extend(iter_pattern_multiset(tree, k, memo))
        offsets.append(len(patterns))
    return patterns, offsets


def node_table(label: str, child_tables: list[NodeTable], k: int) -> NodeTable:
    """Build ``P(node, 0..k)`` from the node's children's tables.

    ``child_tables`` must be in document (left-to-right) order and fully
    built — the bottom-up contract both the whole-tree and the SAX-style
    enumerators satisfy.
    """
    table: NodeTable = [[(label, ())]]
    for j in range(1, k + 1):
        table.append(_patterns_of_size(label, child_tables, j))
    return table


def _patterns_of_size(
    label: str, child_tables: list[NodeTable], j: int
) -> list[Nested]:
    """``P(i, j)`` for ``j >= 1`` given the children's finished tables."""
    out: list[Nested] = []
    fanout = len(child_tables)
    if fanout == 0:
        return out
    indices = range(fanout)
    for t in range(1, min(fanout, j) + 1):
        splits = _compositions_cached(j - t, t)
        for chosen in combinations(indices, t):
            for split in splits:
                _emit_products(label, chosen, split, child_tables, out)
    return out


def _emit_products(
    label: str,
    chosen: tuple[int, ...],
    split: tuple[int, ...],
    child_tables: list[NodeTable],
    out: list[Nested],
) -> None:
    """Append every pattern from one (child subset, composition) choice."""
    option_lists = []
    for child_index, size in zip(chosen, split):
        table = child_tables[child_index]
        if size >= len(table):
            return  # composition asks for more edges than the subtree has
        options = table[size]
        if not options:
            return  # the paper's P(.) = ∅ case: whole product is empty
        option_lists.append(options)
    n_lists = len(option_lists)
    if n_lists == 1:
        # The overwhelmingly common case (one chosen child): no product.
        # The stack below emits a single list back to front (LIFO), which
        # is part of the pinned emission order — keep it reversed.
        out.extend((label, (option,)) for option in reversed(option_lists[0]))
        return
    # Cartesian product, iteratively (child count is small).  The LIFO
    # stack order is part of the pinned emission order — do not "fix"
    # this to itertools.product.
    stack: list[tuple[int, tuple[Nested, ...]]] = [(0, ())]
    while stack:
        index, prefix = stack.pop()
        if index == n_lists:
            out.append((label, prefix))
            continue
        for option in option_lists[index]:
            stack.append((index + 1, prefix + (option,)))
