"""The memoised EnumTree algorithm (paper Algorithm 3).

Let ``P(i, j)`` be the list of ordered tree patterns rooted at node ``i``
with exactly ``j`` edges.  To build ``P(i, j)``, choose ``t`` of ``i``'s
child edges (``1 ≤ t ≤ min(fanout, j)``, preserving sibling order), then
distribute the remaining ``j − t`` edges over the chosen children with a
composition ``x_1 + … + x_t = j − t, x_m ≥ 0``, and take the cartesian
product ``P(c_1, x_1) × … × P(c_t, x_t)``.  ``P(c, 0)`` is the paper's
``⊥``: the child is present as a bare leaf.

Because trees are processed in postorder, every child's table is complete
before its parent's — the memoisation is an explicit bottom-up pass rather
than recursion, so deep trees cannot overflow the interpreter stack.  The
same bottom-up structure powers the event-driven (SAX-style) enumerator
in :mod:`repro.stream.sax`, which shares :func:`node_table`.

Patterns are emitted in canonical nested-tuple form
``(label, (child, …))``.  Sub-patterns are *shared* between the patterns
that contain them, keeping the memory footprint close to the output size.
The result is a multiset: each element is one pattern occurrence, which is
exactly what the sketch must count.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from repro.errors import ConfigError
from repro.trees.tree import LabeledTree, Nested

#: A node's table: ``table[j]`` lists the patterns rooted at the node
#: with exactly ``j`` edges (``table[0]`` is the single bare-leaf entry).
NodeTable = list  # list[list[Nested]]


def compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All tuples of ``parts`` non-negative integers summing to ``total``.

    >>> sorted(compositions(2, 2))
    [(0, 2), (1, 1), (2, 0)]
    """
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in compositions(total - first, parts - 1):
            yield (first,) + rest


def enumerate_patterns(tree: LabeledTree, k: int) -> list[Nested]:
    """Every ordered tree pattern occurrence in ``tree`` with 1..k edges.

    Returns a list (multiset) of nested-tuple patterns; duplicates mean
    multiple occurrences of the same pattern.  ``k = 0`` yields an empty
    list — the paper's patterns have at least one edge.
    """
    return list(iter_pattern_multiset(tree, k))


def iter_pattern_multiset(tree: LabeledTree, k: int) -> Iterator[Nested]:
    """Generator version of :func:`enumerate_patterns`.

    The per-node tables are still materialised (they are reused across
    parents), but the final union over nodes and sizes streams out lazily.
    """
    if k < 0:
        raise ConfigError(f"k must be >= 0, got {k}")
    if k == 0 or tree.n_nodes == 0:
        return
    tables: list[NodeTable] = []
    for num in range(1, tree.n_nodes + 1):  # postorder: children first
        child_tables = [tables[kid - 1] for kid in tree.children_of(num)]
        tables.append(node_table(tree.label_of(num), child_tables, k))
    for table in tables:
        for j in range(1, k + 1):
            yield from table[j]


def collect_forest_patterns(
    trees, k: int
) -> tuple[list[Nested], list[int]]:
    """Materialise the pattern multisets of several trees into one list.

    The generator → array collection step of the batch pipeline: the
    per-tree generators are drained into a single flat list plus
    cumulative ``offsets`` (``offsets[t] .. offsets[t+1]`` are tree
    ``t``'s rows, ``len(offsets) == n_trees + 1``), which is exactly the
    shape :meth:`repro.core.batch.EncodedBatch.build` expects for its
    ``tree_offsets``.  Element order within each tree matches
    :func:`iter_pattern_multiset`.
    """
    patterns: list[Nested] = []
    offsets = [0]
    for tree in trees:
        patterns.extend(iter_pattern_multiset(tree, k))
        offsets.append(len(patterns))
    return patterns, offsets


def node_table(label: str, child_tables: list[NodeTable], k: int) -> NodeTable:
    """Build ``P(node, 0..k)`` from the node's children's tables.

    ``child_tables`` must be in document (left-to-right) order and fully
    built — the bottom-up contract both the whole-tree and the SAX-style
    enumerators satisfy.
    """
    table: NodeTable = [[(label, ())]]
    for j in range(1, k + 1):
        table.append(_patterns_of_size(label, child_tables, j))
    return table


def _patterns_of_size(
    label: str, child_tables: list[NodeTable], j: int
) -> list[Nested]:
    """``P(i, j)`` for ``j >= 1`` given the children's finished tables."""
    out: list[Nested] = []
    fanout = len(child_tables)
    if fanout == 0:
        return out
    indices = range(fanout)
    for t in range(1, min(fanout, j) + 1):
        for chosen in combinations(indices, t):
            for split in compositions(j - t, t):
                _emit_products(label, chosen, split, child_tables, out)
    return out


def _emit_products(
    label: str,
    chosen: tuple[int, ...],
    split: tuple[int, ...],
    child_tables: list[NodeTable],
    out: list[Nested],
) -> None:
    """Append every pattern from one (child subset, composition) choice."""
    option_lists = []
    for child_index, size in zip(chosen, split):
        table = child_tables[child_index]
        if size >= len(table):
            return  # composition asks for more edges than the subtree has
        options = table[size]
        if not options:
            return  # the paper's P(.) = ∅ case: whole product is empty
        option_lists.append(options)
    # Cartesian product, iteratively (child count is small).
    stack: list[tuple[int, tuple[Nested, ...]]] = [(0, ())]
    while stack:
        index, prefix = stack.pop()
        if index == len(option_lists):
            out.append((label, prefix))
            continue
        for option in option_lists[index]:
            stack.append((index + 1, prefix + (option,)))
