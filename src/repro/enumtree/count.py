"""Occurrence counting with the EnumTree recursion, integers only.

Same bottom-up composition as :mod:`repro.enumtree.enumerate`, but the
per-node tables hold counts instead of pattern lists, making the total
number of pattern occurrences (Figure 9(b)'s y-axis) cheap to compute and
giving tests an independent check that enumeration emits exactly as many
patterns as the recursion predicts.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import ConfigError
from repro.enumtree.enumerate import compositions
from repro.trees.tree import LabeledTree


def count_patterns_by_size(tree: LabeledTree, k: int) -> list[int]:
    """``result[j]`` = number of pattern occurrences with exactly ``j``
    edges, for ``j = 0..k`` (``result[0]`` counts single nodes and is not
    part of the paper's pattern set; it is reported for completeness)."""
    if k < 0:
        raise ConfigError(f"k must be >= 0, got {k}")
    totals = [0] * (k + 1)
    if tree.n_nodes == 0:
        return totals
    # counts[i-1][j] = |P(i, j)|
    counts: list[list[int]] = []
    for num in range(1, tree.n_nodes + 1):  # postorder: children first
        kids = tree.children_of(num)
        row = [1] + [0] * k
        fanout = len(kids)
        for j in range(1, k + 1):
            total = 0
            for t in range(1, min(fanout, j) + 1):
                for chosen in combinations(kids, t):
                    for split in compositions(j - t, t):
                        product = 1
                        for child, size in zip(chosen, split):
                            product *= counts[child - 1][size]
                            if not product:
                                break
                        total += product
            row[j] = total
        counts.append(row)
        for j in range(k + 1):
            totals[j] += row[j]
    return totals


def count_patterns(tree: LabeledTree, k: int) -> int:
    """Total pattern occurrences with 1..k edges (Figure 9(b) per tree)."""
    return sum(count_patterns_by_size(tree, k)[1:])
