"""Brute-force pattern enumeration: the correctness oracle for EnumTree.

Enumerates every non-empty subset of at most ``k`` of the tree's edges
and keeps those whose edges form a single connected subtree.  Because the
edges come from a tree, a subset is connected iff it spans exactly
``|subset| + 1`` nodes when closed under the "parent is present" relation
— we check directly that every edge's parent endpoint is either the
subset's unique top node or a child endpoint of another edge.

Exponential in the number of edges; tests only apply it to small trees.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import ConfigError
from repro.trees.tree import LabeledTree, Nested


def enumerate_patterns_naive(tree: LabeledTree, k: int) -> list[Nested]:
    """All pattern occurrences with 1..k edges, by exhaustive search.

    Returns the same multiset (up to order) as
    :func:`repro.enumtree.enumerate_patterns`.
    """
    if k < 0:
        raise ConfigError(f"k must be >= 0, got {k}")
    edges = list(tree.iter_edges())
    out: list[Nested] = []
    for size in range(1, min(k, len(edges)) + 1):
        for subset in combinations(edges, size):
            pattern = _pattern_of_edges(tree, subset)
            if pattern is not None:
                out.append(pattern)
    return out


def _pattern_of_edges(
    tree: LabeledTree, subset: tuple[tuple[int, int], ...]
) -> Nested | None:
    """Nested form of the edge subset, or ``None`` if it is disconnected."""
    children_in = {child for _, child in subset}
    parents = {parent for parent, _ in subset}
    tops = parents - children_in
    if len(tops) != 1:
        return None  # more than one connected component
    # Connected iff every parent endpoint except the top is itself a child
    # endpoint (each edge hangs off the component containing the top).
    top = next(iter(tops))
    subset_children: dict[int, list[int]] = {}
    for parent, child in subset:
        subset_children.setdefault(parent, []).append(child)
    for node in subset_children:
        # Keep the original document order of children.
        subset_children[node].sort(
            key=lambda c: tree.children_of(node).index(c)
        )

    def build(node: int) -> Nested:
        kids = tuple(build(c) for c in subset_children.get(node, ()))
        return (tree.label_of(node), kids)

    pattern = build(top)
    # Count nodes to reject "forests hanging under a shared parent" shapes:
    # a valid connected subset has exactly len(subset) + 1 nodes.
    nodes = {top} | children_in | parents
    if len(nodes) != len(subset) + 1:
        return None
    return pattern
