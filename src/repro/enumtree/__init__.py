"""EnumTree: enumerating all ordered tree patterns with at most k edges.

Section 5.1 of the paper.  Given a data tree ``T`` and a bound ``k``,
EnumTree produces every *occurrence* of an ordered tree pattern in ``T``
with 1..k edges — i.e. every connected, root-preserving, sibling-order-
preserving edge subset — using memoised bottom-up composition.

* :func:`~repro.enumtree.enumerate.enumerate_patterns` — the memoised
  algorithm (Algorithm 3), returning patterns in canonical nested-tuple
  form with multiplicity (one per occurrence).
* :func:`~repro.enumtree.count.count_patterns` — the same recursion over
  integers only, for cheap occurrence counting.
* :func:`~repro.enumtree.naive.enumerate_patterns_naive` — a brute-force
  edge-subset enumerator used as the correctness oracle in tests.
"""

from repro.enumtree.count import count_patterns, count_patterns_by_size
from repro.enumtree.enumerate import (
    collect_forest_patterns,
    enumerate_patterns,
    iter_pattern_multiset,
)
from repro.enumtree.naive import enumerate_patterns_naive

__all__ = [
    "collect_forest_patterns",
    "count_patterns",
    "count_patterns_by_size",
    "enumerate_patterns",
    "enumerate_patterns_naive",
    "iter_pattern_multiset",
]
