"""Figure 12: accuracy of SUM and PRODUCT query estimation.

Sections 7.8.2 / 7.9.2 on the TREEBANK workloads of Figure 11: average
relative error per selectivity bucket, swept over the per-stream top-k
size for two values of ``s1``.

Qualitative claims the benches assert:

* errors fall as top-k grows and as ``s1`` grows (like Figure 10);
* PRODUCT errors exceed SUM errors at comparable settings — the product
  estimator's variance is larger (Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SketchTreeConfig
from repro.experiments import data as expdata
from repro.experiments.fig11 import composite_workload
from repro.experiments.harness import (
    BucketErrors,
    SynopsisFactory,
    averaged_over_runs,
    evaluate_product,
    evaluate_sum,
    run_seeds,
)
from repro.experiments.report import format_bucket, format_percent, format_table
from repro.experiments.scale import DEFAULT, ExperimentScale

#: PRODUCT estimation uses the X²/2! estimator whose variance analysis
#: needs 5-wise independent ξ (Appendix B); 6 is the generator's next
#: even step and also covers unbiasedness (2d = 4) with slack.
_PRODUCT_INDEPENDENCE = 6


@dataclass(frozen=True)
class Fig12Point:
    topk_size: int
    memory_bytes: int
    bucket_errors: tuple[BucketErrors, ...]


@dataclass(frozen=True)
class Fig12Result:
    kind: str
    s1: int
    points: tuple[Fig12Point, ...]

    def errors_for_bucket(self, index: int) -> list[float]:
        return [p.bucket_errors[index].mean_relative_error for p in self.points]

    def overall_mean_error(self) -> float:
        """Mean error across all points and buckets (for SUM-vs-PRODUCT
        comparisons)."""
        values = [
            b.mean_relative_error
            for p in self.points
            for b in p.bucket_errors
            if b.n_queries and b.mean_relative_error == b.mean_relative_error
        ]
        return sum(values) / len(values) if values else float("nan")


def run(
    kind: str = "sum",
    s1: int | None = None,
    scale: ExperimentScale = DEFAULT,
    s2: int = 7,
) -> Fig12Result:
    if s1 is None:
        s1 = scale.treebank_s1[1]
    prepared = expdata.prepared("treebank", scale)
    workload = composite_workload(kind, scale)
    independence = _PRODUCT_INDEPENDENCE if kind == "product" else 4
    base = SketchTreeConfig(
        s1=s1,
        s2=s2,
        max_pattern_edges=prepared.k,
        n_virtual_streams=scale.n_virtual_streams,
        independence=independence,
        seed=0,
        encoder_seed=42,
    )
    factory = SynopsisFactory(prepared.exact, base)
    seeds = run_seeds(scale.n_runs)
    evaluator = evaluate_product if kind == "product" else evaluate_sum
    points = []
    for topk in scale.topk_sizes:
        errors = averaged_over_runs(
            factory, workload, evaluator, seeds, topk_size=topk
        )
        memory = factory.build(seeds[0], topk_size=topk).memory_report()
        points.append(Fig12Point(topk, memory.provisioned_total, tuple(errors)))
    return Fig12Result(kind.upper(), s1, tuple(points))


def render(result: Fig12Result) -> str:
    buckets = [format_bucket(b.bucket) for b in result.points[0].bucket_errors]
    headers = ["Top-k", "Memory"] + buckets
    rows = []
    for point in result.points:
        rows.append(
            [point.topk_size, f"{point.memory_bytes / 1024:.0f} KB"]
            + [format_percent(b.mean_relative_error) for b in point.bucket_errors]
        )
    return format_table(
        headers,
        rows,
        title=f"Figure 12: {result.kind} Workload Error (TREEBANK, s1={result.s1})",
    )
