"""Figure 11: SUM and PRODUCT composite-query workload histograms.

Sections 7.8.1 / 7.9.1: SUM queries combine three distinct patterns from
the TREEBANK base workload; PRODUCT queries combine two.  Selectivity is
the combined actual (sum resp. product of counts) over the total number
of sequences processed.  Bucket boundaries are data-driven log-spaced
ranges (the paper's boundaries are tied to its corpora; see
:func:`repro.experiments.data.auto_buckets`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import data as expdata
from repro.experiments.report import format_bucket, format_table
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.workload.generator import (
    Workload,
    generate_product_workload,
    generate_sum_workload,
)

_KINDS = ("sum", "product")

_workload_cache: dict[tuple, Workload] = {}


def composite_workload(
    kind: str, scale: ExperimentScale, dataset: str = "treebank"
) -> Workload:
    """The (cached) SUM or PRODUCT workload for a dataset and scale."""
    if kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
    key = (kind, dataset, scale.name)
    cached = _workload_cache.get(key)
    if cached is not None:
        return cached
    prepared = expdata.prepared(dataset, scale)
    base = expdata.base_workload(dataset, scale)
    exact = prepared.exact
    total = exact.n_values
    # First pass with one huge bucket to learn the selectivity spread,
    # then re-bucket log-spaced (the paper used corpus-specific ranges).
    wide = ((0.0, float("inf")),)
    if kind == "sum":
        probe = generate_sum_workload(
            base, exact, wide, n_queries=scale.n_composite_queries, seed=23
        )
        buckets = expdata.auto_buckets(
            [q.selectivity for q in probe.all_queries()]
        )
        workload = generate_sum_workload(
            base, exact, buckets, n_queries=scale.n_composite_queries, seed=23
        )
    else:
        probe = generate_product_workload(
            base, exact, wide, n_queries=scale.n_composite_queries, seed=29
        )
        buckets = expdata.auto_buckets(
            [q.selectivity for q in probe.all_queries()]
        )
        workload = generate_product_workload(
            base, exact, buckets, n_queries=scale.n_composite_queries, seed=29
        )
    _workload_cache[key] = workload
    return workload


@dataclass(frozen=True)
class Fig11Result:
    kind: str
    dataset: str
    histogram: tuple[tuple[tuple[float, float], int], ...]

    @property
    def n_queries(self) -> int:
        return sum(count for _, count in self.histogram)


def run(kind: str = "sum", scale: ExperimentScale = DEFAULT) -> Fig11Result:
    workload = composite_workload(kind, scale)
    return Fig11Result(kind.upper(), "TREEBANK", tuple(workload.histogram()))


def render(result: Fig11Result) -> str:
    return format_table(
        ["Selectivity Range", "# Queries"],
        [(format_bucket(bucket), count) for bucket, count in result.histogram],
        title=f"Figure 11: {result.kind} Workload ({result.dataset})",
    )
