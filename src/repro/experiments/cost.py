"""Stream-processing cost ratios (the Sections 7.6/7.7 text claims).

The paper reports, for the faithful streaming path:

* doubling ``s1`` (25 → 50 on TREEBANK) multiplied processing time by
  ≈ 2.3; raising it 50 → 75 on DBLP by ≈ 1.6 — sketch updates dominate
  and scale with ``s1``;
* growing the top-k size barely moved processing time (≈ 4–10%).

We time :class:`~repro.stream.engine.StreamProcessor` runs over a slice
of the stream at both ``s1`` values and two top-k sizes, and report the
ratios.  Absolute times are host-dependent; the *ratios* are the claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SketchTreeConfig
from repro.core.sketchtree import SketchTree
from repro.experiments import data as expdata
from repro.experiments.report import format_table
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.stream.engine import StreamProcessor


@dataclass(frozen=True)
class CostPoint:
    s1: int
    topk_size: int
    seconds: float


@dataclass(frozen=True)
class CostResult:
    dataset: str
    n_trees: int
    points: tuple[CostPoint, ...]

    def seconds(self, s1: int, topk_size: int) -> float:
        for point in self.points:
            if point.s1 == s1 and point.topk_size == topk_size:
                return point.seconds
        raise KeyError((s1, topk_size))

    def s1_ratio(self, low_s1: int, high_s1: int, topk_size: int) -> float:
        """Processing-time ratio when s1 grows (paper: ≈2.3 for 25→50)."""
        return self.seconds(high_s1, topk_size) / self.seconds(low_s1, topk_size)

    def topk_ratio(self, s1: int, low_topk: int, high_topk: int) -> float:
        """Processing-time ratio when top-k grows (paper: ≈1.04–1.10)."""
        return self.seconds(s1, high_topk) / self.seconds(s1, low_topk)


def run(
    dataset: str = "treebank",
    scale: ExperimentScale = DEFAULT,
    n_trees: int = 150,
    topk_sizes: tuple[int, int] = (1, 8),
    topk_probability: float = 0.05,
) -> CostResult:
    """Time the faithful streaming path at both s1 values × two top-k sizes.

    ``topk_probability`` follows the paper's suggestion of invoking top-k
    processing probabilistically per pattern when per-pattern invocation
    is infeasible — which it is for a pure Python substrate.
    """
    prepared = expdata.prepared(dataset, scale)
    trees = prepared.trees[:n_trees]
    warmup = prepared.trees[n_trees : n_trees + 10] or trees[:10]
    s1_values = scale.treebank_s1 if dataset == "treebank" else scale.dblp_s1
    points = []
    for s1 in s1_values:
        for topk in topk_sizes:
            config = SketchTreeConfig(
                s1=s1,
                s2=7,
                max_pattern_edges=prepared.k,
                n_virtual_streams=scale.n_virtual_streams,
                topk_size=topk,
                topk_probability=topk_probability,
                seed=5,
            )
            synopsis = SketchTree(config)
            # Untimed warmup: fills the encoder cache and numpy's lazy
            # initialisation so the first configuration isn't penalised.
            for tree in warmup:
                synopsis.update(tree)
            stats = StreamProcessor([synopsis]).run(trees)
            points.append(CostPoint(s1, topk, stats.elapsed_seconds))
    return CostResult(dataset.upper(), len(trees), tuple(points))


def render(result: CostResult) -> str:
    table = format_table(
        ["s1", "Top-k", "Stream Time (s)"],
        [(p.s1, p.topk_size, p.seconds) for p in result.points],
        title=f"Stream Processing Cost ({result.dataset}, {result.n_trees} trees)",
    )
    s1_values = sorted({p.s1 for p in result.points})
    topk_values = sorted({p.topk_size for p in result.points})
    lines = [table, ""]
    lines.append(
        f"s1 {s1_values[0]} -> {s1_values[1]} ratio (topk={topk_values[0]}): "
        f"{result.s1_ratio(s1_values[0], s1_values[1], topk_values[0]):.2f}x "
        f"(paper: ~2.3x TREEBANK / ~1.6x DBLP)"
    )
    lines.append(
        f"topk {topk_values[0]} -> {topk_values[1]} ratio (s1={s1_values[0]}): "
        f"{result.topk_ratio(s1_values[0], topk_values[0], topk_values[1]):.2f}x "
        f"(paper: ~1.04-1.10x)"
    )
    return "\n".join(lines)
