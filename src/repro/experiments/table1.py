"""Table 1: dataset statistics.

Paper's columns: number of trees, maximum tree pattern size ``k``, and
the number of distinct ordered tree patterns (which is how many counters
the deterministic approach would need).  We add the forest shape metrics
that justify the synthetic substitution (deep/narrow vs shallow/bushy)
and the memory comparison the paper's Section 1 motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import data as expdata
from repro.experiments.report import format_table
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.trees.stats import ForestStatistics


@dataclass(frozen=True)
class Table1Row:
    dataset: str
    n_trees: int
    max_pattern_size: int
    n_distinct_patterns: int
    n_occurrences: int
    self_join_size: int
    exact_counter_bytes: int
    mean_depth: float
    mean_fanout: float


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]


def run(scale: ExperimentScale = DEFAULT) -> Table1Result:
    rows = []
    for name in expdata.DATASET_NAMES:
        prepared = expdata.prepared(name, scale)
        stats = ForestStatistics.of(prepared.trees)
        rows.append(
            Table1Row(
                dataset=name.upper(),
                n_trees=prepared.n_trees,
                max_pattern_size=prepared.k,
                n_distinct_patterns=prepared.exact.n_distinct_patterns,
                n_occurrences=prepared.exact.n_values,
                self_join_size=prepared.exact.self_join_size(),
                exact_counter_bytes=prepared.exact.memory_bytes(),
                mean_depth=stats.mean_depth,
                mean_fanout=stats.mean_fanout,
            )
        )
    return Table1Result(tuple(rows))


def render(result: Table1Result) -> str:
    return format_table(
        [
            "Dataset",
            "# of Trees",
            "Max Pattern Size (k)",
            "# Distinct Patterns",
            "Occurrences",
            "Self-Join Size",
            "Exact-Counter Bytes",
            "Mean Depth",
            "Mean Fanout",
        ],
        [
            (
                row.dataset,
                row.n_trees,
                row.max_pattern_size,
                row.n_distinct_patterns,
                row.n_occurrences,
                row.self_join_size,
                row.exact_counter_bytes,
                row.mean_depth,
                row.mean_fanout,
            )
            for row in result.rows
        ],
        title="Table 1: Dataset Statistics",
    )
