"""Plain-text rendering of experiment results (the "figures").

Every experiment renders to an aligned ASCII table whose rows/series
correspond one-to-one with the paper's plots, so paper-vs-measured
comparison (EXPERIMENTS.md) is a visual diff.
"""

from __future__ import annotations

from typing import Sequence


def format_bucket(bucket: tuple[float, float]) -> str:
    """``[1.0e-05, 2.0e-05)`` — the paper's selectivity-range captions."""
    low, high = bucket
    return f"[{low:.1e}, {high:.1e})"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Align a list of rows under headers; floats get 4 significant digits."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_percent(error: float) -> str:
    """Render a relative error the way the paper quotes it ("15%")."""
    if error != error:
        return "-"
    return f"{100 * error:.1f}%"
