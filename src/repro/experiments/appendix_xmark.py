"""Appendix experiment: SketchTree on an XMark-like third corpus.

The paper's two corpora occupy the extremes of the shape spectrum —
deep/narrow (TREEBANK) and shallow/bushy (DBLP).  This appendix runs the
Figure 10 protocol on an XMark-like auction-site stream whose shape sits
*between* them (moderate depth and fan-out, multi-modal record species,
recursive descriptions), checking that the paper's trends are properties
of the algorithm rather than artifacts of either extreme:

* error falls with the top-k size and with lower selectivity;
* the stream's structural statistics interpolate the two corpora.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SketchTreeConfig
from repro.experiments import data as expdata
from repro.experiments.fig10 import Fig10Point, Fig10Result
from repro.experiments.harness import (
    SynopsisFactory,
    averaged_over_runs,
    evaluate_single,
    run_seeds,
)
from repro.experiments.report import format_bucket, format_percent, format_table
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.trees.stats import ForestStatistics


@dataclass(frozen=True)
class XMarkShapeComparison:
    """Mean depth / fan-out of all three corpora (interpolation check)."""

    treebank_depth: float
    xmark_depth: float
    dblp_depth: float
    treebank_fanout: float
    xmark_fanout: float
    dblp_fanout: float

    def depth_interpolates(self) -> bool:
        return self.dblp_depth <= self.xmark_depth <= self.treebank_depth

    def fanout_interpolates(self) -> bool:
        return self.treebank_fanout <= self.xmark_fanout <= self.dblp_fanout


@dataclass(frozen=True)
class XMarkResult:
    accuracy: Fig10Result
    shapes: XMarkShapeComparison


def run(s1: int = 50, scale: ExperimentScale = DEFAULT, s2: int = 7) -> XMarkResult:
    prepared = expdata.prepared("xmark", scale)
    workload = expdata.base_workload("xmark", scale)
    base = SketchTreeConfig(
        s1=s1,
        s2=s2,
        max_pattern_edges=prepared.k,
        n_virtual_streams=scale.n_virtual_streams,
        seed=0,
        encoder_seed=42,
    )
    factory = SynopsisFactory(prepared.exact, base)
    seeds = run_seeds(scale.n_runs)
    points = []
    for topk in scale.topk_sizes:
        errors = averaged_over_runs(
            factory, workload, evaluate_single, seeds, topk_size=topk
        )
        memory = factory.build(seeds[0], topk_size=topk).memory_report()
        points.append(Fig10Point(topk, memory.provisioned_total, tuple(errors)))
    accuracy = Fig10Result("XMARK", s1, s2, scale.n_virtual_streams, tuple(points))

    shapes = _shape_comparison(scale)
    return XMarkResult(accuracy, shapes)


def _shape_comparison(scale: ExperimentScale) -> XMarkShapeComparison:
    stats = {
        name: ForestStatistics.of(expdata.prepared(name, scale).trees)
        for name in expdata.ALL_DATASETS
    }
    return XMarkShapeComparison(
        treebank_depth=stats["treebank"].mean_depth,
        xmark_depth=stats["xmark"].mean_depth,
        dblp_depth=stats["dblp"].mean_depth,
        treebank_fanout=stats["treebank"].mean_fanout,
        xmark_fanout=stats["xmark"].mean_fanout,
        dblp_fanout=stats["dblp"].mean_fanout,
    )


def render(result: XMarkResult) -> str:
    accuracy = result.accuracy
    buckets = [format_bucket(b.bucket) for b in accuracy.points[0].bucket_errors]
    rows = []
    for point in accuracy.points:
        rows.append(
            [point.topk_size, f"{point.memory_bytes / 1024:.0f} KB"]
            + [format_percent(b.mean_relative_error) for b in point.bucket_errors]
        )
    table = format_table(
        ["Top-k", "Memory"] + buckets,
        rows,
        title=f"Appendix: XMark-like Accuracy (s1={accuracy.s1}, s2={accuracy.s2})",
    )
    shapes = result.shapes
    shape_table = format_table(
        ["Corpus", "Mean Depth", "Mean Fanout"],
        [
            ("TREEBANK", shapes.treebank_depth, shapes.treebank_fanout),
            ("XMARK", shapes.xmark_depth, shapes.xmark_fanout),
            ("DBLP", shapes.dblp_depth, shapes.dblp_fanout),
        ],
        title="Shape interpolation",
    )
    return table + "\n\n" + shape_table
