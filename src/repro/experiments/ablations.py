"""Ablation studies for the design choices DESIGN.md calls out.

Each function isolates one mechanism of SketchTree and measures its
contribution on the single-pattern TREEBANK workload:

* :func:`run_virtual_streams` — error vs the number of virtual streams
  ``p`` (Section 5.3: more streams → smaller per-stream self-join size).
* :func:`run_countsketch` — AMS + virtual streams vs a CountSketch of
  equal memory (Section 2.2's alternative point estimator).
* :func:`run_mapping` — Rabin fingerprints vs exact pairing values
  (Section 6.1): collision counts and estimate agreement.
* :func:`run_sum_estimator` — Theorem 2's single combined estimator vs
  summing per-pattern estimates (Section 3.2's comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SketchTreeConfig
from repro.core.encoding import PatternEncoder
from repro.experiments import data as expdata
from repro.experiments.fig11 import composite_workload
from repro.experiments.harness import (
    SynopsisFactory,
    relative_error,
    run_seeds,
)
from repro.experiments.report import format_table
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.sketch.countsketch import CountSketch


# ----------------------------------------------------------------------
# Virtual streams
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VirtualStreamsPoint:
    n_streams: int
    mean_error: float


@dataclass(frozen=True)
class VirtualStreamsResult:
    s1: int
    points: tuple[VirtualStreamsPoint, ...]


def run_virtual_streams(
    scale: ExperimentScale = DEFAULT,
    stream_counts: tuple[int, ...] = (1, 31, 229),
    s1: int = 50,
) -> VirtualStreamsResult:
    """Mean workload error as the number of virtual streams grows."""
    prepared = expdata.prepared("treebank", scale)
    workload = expdata.base_workload("treebank", scale)
    seeds = run_seeds(scale.n_runs)
    points = []
    for p in stream_counts:
        base = SketchTreeConfig(
            s1=s1,
            s2=7,
            max_pattern_edges=prepared.k,
            n_virtual_streams=p,
            seed=0,
            encoder_seed=42,
        )
        factory = SynopsisFactory(prepared.exact, base)
        errors = []
        for seed in seeds:
            synopsis = factory.build(seed)
            for query in workload.all_queries():
                errors.append(
                    relative_error(
                        synopsis.estimate_ordered(query.pattern), query.actual
                    )
                )
        points.append(VirtualStreamsPoint(p, float(np.mean(errors))))
    return VirtualStreamsResult(s1, tuple(points))


def render_virtual_streams(result: VirtualStreamsResult) -> str:
    return format_table(
        ["# Virtual Streams (p)", "Mean Relative Error"],
        [(p.n_streams, p.mean_error) for p in result.points],
        title=f"Ablation: Virtual Streams (TREEBANK, s1={result.s1}, topk off)",
    )


# ----------------------------------------------------------------------
# AMS vs CountSketch
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CountSketchResult:
    ams_memory_bytes: int
    countsketch_memory_bytes: int
    ams_mean_error: float
    countsketch_mean_error: float


def run_countsketch(
    scale: ExperimentScale = DEFAULT, s1: int = 50, s2: int = 7
) -> CountSketchResult:
    """CountSketch with (at least) the AMS configuration's counter memory."""
    prepared = expdata.prepared("treebank", scale)
    workload = expdata.base_workload("treebank", scale)
    base = SketchTreeConfig(
        s1=s1,
        s2=s2,
        max_pattern_edges=prepared.k,
        n_virtual_streams=scale.n_virtual_streams,
        seed=0,
        encoder_seed=42,
    )
    factory = SynopsisFactory(prepared.exact, base)
    encoder = PatternEncoder(seed=42)
    value_counts: dict[int, int] = {}
    for pattern, count in prepared.exact.counts.items():
        value = encoder.encode(pattern)
        value_counts[value] = value_counts.get(value, 0) + count

    n_counters = s1 * s2 * scale.n_virtual_streams  # AMS total counters
    width = n_counters // s2
    seeds = run_seeds(scale.n_runs)
    ams_errors, cs_errors = [], []
    cs_memory = 0
    for seed in seeds:
        synopsis = factory.build(seed)
        sketch = CountSketch(width=width, depth=s2, seed=seed)
        sketch.update_counts(value_counts)
        cs_memory = sketch.memory_bytes()
        for query in workload.all_queries():
            value = encoder.encode(query.pattern)
            ams_errors.append(
                relative_error(synopsis.estimate_ordered(query.pattern), query.actual)
            )
            cs_errors.append(relative_error(sketch.estimate(value), query.actual))
    return CountSketchResult(
        ams_memory_bytes=n_counters * 8,
        countsketch_memory_bytes=cs_memory,
        ams_mean_error=float(np.mean(ams_errors)),
        countsketch_mean_error=float(np.mean(cs_errors)),
    )


def render_countsketch(result: CountSketchResult) -> str:
    return format_table(
        ["Estimator", "Counter Memory", "Mean Relative Error"],
        [
            ("AMS + virtual streams", f"{result.ams_memory_bytes // 1024} KB",
             result.ams_mean_error),
            ("CountSketch", f"{result.countsketch_memory_bytes // 1024} KB",
             result.countsketch_mean_error),
        ],
        title="Ablation: AMS vs CountSketch (TREEBANK, topk off)",
    )


# ----------------------------------------------------------------------
# Mapping function: Rabin vs pairing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MappingResult:
    n_distinct_patterns: int
    rabin_collisions: int
    pairing_collisions: int
    rabin_max_value_bits: int
    pairing_max_value_bits: int


def run_mapping(
    scale: ExperimentScale = DEFAULT, max_pairing_edges: int = 2
) -> MappingResult:
    """Collision behaviour of the two mapping functions (Section 6.1).

    Rabin residues are bounded 31-bit values; their collision count is
    measured over the *whole* distinct-pattern table and should be ~0.

    Exact pairing is injective by construction (0 collisions) but its
    values grow **doubly exponentially** in the sequence length — a
    k-edge pattern's extended Prüfer pair has up to ``4k + 2`` elements,
    and each fold roughly doubles the bit length, so a 6-edge pattern
    already needs a ~10⁹-bit integer.  We therefore evaluate pairing only
    on patterns with at most ``max_pairing_edges`` edges; even there the
    values overflow any machine word by orders of magnitude, which is
    precisely the paper's §6.1 motivation.
    """
    from repro.query.pattern import pattern_edges

    prepared = expdata.prepared("treebank", scale)
    patterns = list(prepared.exact.counts)
    rabin = PatternEncoder(mapping="rabin", seed=42)
    rabin_values = [rabin.encode(p) for p in patterns]
    small = [p for p in patterns if pattern_edges(p) <= max_pairing_edges]
    pairing = PatternEncoder(mapping="pairing")
    pairing_values = [pairing.encode(p) for p in small]
    return MappingResult(
        n_distinct_patterns=len(patterns),
        rabin_collisions=len(rabin_values) - len(set(rabin_values)),
        pairing_collisions=len(pairing_values) - len(set(pairing_values)),
        rabin_max_value_bits=max(v.bit_length() for v in rabin_values),
        pairing_max_value_bits=max(v.bit_length() for v in pairing_values),
    )


def render_mapping(result: MappingResult) -> str:
    return format_table(
        ["Mapping", "Collisions", "Max Value Bits"],
        [
            ("Rabin (degree 31), all patterns", result.rabin_collisions,
             result.rabin_max_value_bits),
            ("Pairing (exact), <=2-edge patterns", result.pairing_collisions,
             result.pairing_max_value_bits),
        ],
        title=(
            f"Ablation: Mapping Function "
            f"({result.n_distinct_patterns} distinct TREEBANK patterns; "
            f"pairing values grow doubly exponentially, so larger patterns "
            f"are computationally out of reach — the paper's point)"
        ),
    )


# ----------------------------------------------------------------------
# Xi family: polynomial hashing vs BCH parity-check matrices
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class XiFamilyResult:
    polynomial_mean_error: float
    bch_mean_error: float
    n_queries: int


def run_xi_family(scale: ExperimentScale = DEFAULT, s1: int = 50) -> XiFamilyResult:
    """Both four-wise constructions on the same workload.

    The paper generates ξ from BCH parity-check matrices; this library
    defaults to polynomial hashing.  Both are four-wise independent, so
    Theorem 1 applies identically — the ablation confirms the accuracy is
    statistically indistinguishable (the choice is an engineering one).
    """
    prepared = expdata.prepared("treebank", scale)
    workload = expdata.base_workload("treebank", scale)
    seeds = run_seeds(scale.n_runs)
    errors: dict[str, list[float]] = {"polynomial": [], "bch": []}
    n_queries = 0
    for family in ("polynomial", "bch"):
        base = SketchTreeConfig(
            s1=s1,
            s2=7,
            max_pattern_edges=prepared.k,
            n_virtual_streams=scale.n_virtual_streams,
            xi_family=family,
            seed=0,
            encoder_seed=42,
        )
        factory = SynopsisFactory(prepared.exact, base)
        for seed in seeds:
            synopsis = factory.build(seed)
            for query in workload.all_queries():
                n_queries += 1
                errors[family].append(
                    relative_error(
                        synopsis.estimate_ordered(query.pattern), query.actual
                    )
                )
    return XiFamilyResult(
        polynomial_mean_error=float(np.mean(errors["polynomial"])),
        bch_mean_error=float(np.mean(errors["bch"])),
        n_queries=n_queries,
    )


def render_xi_family(result: XiFamilyResult) -> str:
    return format_table(
        ["Xi Construction", "Mean Relative Error"],
        [
            ("Polynomial hashing (degree 3)", result.polynomial_mean_error),
            ("BCH parity-check (paper's)", result.bch_mean_error),
        ],
        title=f"Ablation: Xi Family ({result.n_queries} query evaluations)",
    )


# ----------------------------------------------------------------------
# Self-join size: what top-k and virtual streams actually remove
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelfJoinPoint:
    label: str
    true_residual_self_join: float
    sketch_estimated_self_join: float


@dataclass(frozen=True)
class SelfJoinResult:
    total_self_join: int
    points: tuple[SelfJoinPoint, ...]


def run_self_join(
    scale: ExperimentScale = DEFAULT, s1: int = 50, topk: int = 16
) -> SelfJoinResult:
    """Quantifies Section 5's mechanism directly.

    For top-k off/on, reports (a) the *true* residual self-join size
    (full table minus the mass the trackers deleted) and (b) the
    synopsis' own F2 estimate of it — validating both that top-k removes
    most of the mass under skew and that the self-reported error bars
    (:mod:`repro.core.intervals`) rest on an accurate SJ estimate.
    """
    prepared = expdata.prepared("treebank", scale)
    total_sj = prepared.exact.self_join_size()
    base = SketchTreeConfig(
        s1=s1,
        s2=7,
        max_pattern_edges=prepared.k,
        n_virtual_streams=scale.n_virtual_streams,
        seed=0,
        encoder_seed=42,
    )
    factory = SynopsisFactory(prepared.exact, base)
    points = []
    for label, size in (("top-k off", 0), (f"top-k {topk}/stream", topk)):
        synopsis = factory.build(seed=1, topk_size=size)
        deleted = 0
        for _, tracker in synopsis.streams.iter_trackers():
            deleted += tracker.deleted_self_join_mass()
        points.append(
            SelfJoinPoint(
                label=label,
                # Deleted mass approximates the removed Σf² (tracked
                # frequencies are estimates of the true ones).
                true_residual_self_join=float(total_sj - deleted),
                sketch_estimated_self_join=synopsis.estimate_self_join_size(),
            )
        )
    return SelfJoinResult(total_self_join=total_sj, points=tuple(points))


def render_self_join(result: SelfJoinResult) -> str:
    rows = [
        (p.label, p.true_residual_self_join, p.sketch_estimated_self_join)
        for p in result.points
    ]
    return format_table(
        ["Configuration", "Residual SJ (accounting)", "Residual SJ (F2 estimate)"],
        rows,
        title=f"Ablation: Self-Join Reduction (total SJ = {result.total_self_join})",
    )


# ----------------------------------------------------------------------
# Query size: error vs pattern edge count
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuerySizePoint:
    n_edges: int
    n_queries: int
    mean_actual: float
    mean_relative_error: float


@dataclass(frozen=True)
class QuerySizeResult:
    s1: int
    points: tuple[QuerySizePoint, ...]


def run_query_size(
    scale: ExperimentScale = DEFAULT, s1: int = 50, topk: int = 16,
    per_size: int = 30,
) -> QuerySizeResult:
    """Accuracy broken down by query pattern size (1..k edges).

    The paper's workloads mix sizes 1..6 inside selectivity buckets; this
    view separates the size axis.  Expectation from Theorem 1: larger
    patterns are typically *rarer* (smaller ``f_q``), so their relative
    error is larger at fixed memory — the size effect is really a
    frequency effect.
    """
    from repro.query.pattern import pattern_edges

    prepared = expdata.prepared("treebank", scale)
    exact = prepared.exact
    rng = np.random.default_rng(47)
    by_size: dict[int, list] = {size: [] for size in range(1, prepared.k + 1)}
    for pattern, count in exact.counts.items():
        if count >= 5:  # skip near-zero counts: relative error undefined-ish
            by_size[pattern_edges(pattern)].append((pattern, count))
    base = SketchTreeConfig(
        s1=s1,
        s2=7,
        max_pattern_edges=prepared.k,
        n_virtual_streams=scale.n_virtual_streams,
        seed=0,
        encoder_seed=42,
    )
    factory = SynopsisFactory(exact, base)
    seeds = run_seeds(scale.n_runs)
    synopses = [factory.build(seed, topk_size=topk) for seed in seeds]
    points = []
    for size in range(1, prepared.k + 1):
        pool = by_size[size]
        if not pool:
            continue
        chosen = [pool[i] for i in rng.choice(len(pool),
                                              size=min(per_size, len(pool)),
                                              replace=False)]
        errors, actuals = [], []
        for synopsis in synopses:
            for pattern, count in chosen:
                errors.append(
                    relative_error(synopsis.estimate_ordered(pattern), count)
                )
                actuals.append(count)
        points.append(
            QuerySizePoint(
                n_edges=size,
                n_queries=len(chosen),
                mean_actual=float(np.mean(actuals)),
                mean_relative_error=float(np.mean(errors)),
            )
        )
    return QuerySizeResult(s1, tuple(points))


def render_query_size(result: QuerySizeResult) -> str:
    return format_table(
        ["Query Edges", "# Queries", "Mean Actual Count", "Mean Relative Error"],
        [
            (p.n_edges, p.n_queries, p.mean_actual, p.mean_relative_error)
            for p in result.points
        ],
        title=f"Ablation: Error vs Query Size (TREEBANK, s1={result.s1})",
    )


# ----------------------------------------------------------------------
# Stream scaling: fixed memory, growing stream
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamScalingPoint:
    n_trees: int
    n_occurrences: int
    self_join_size: int
    mean_relative_error: float


@dataclass(frozen=True)
class StreamScalingResult:
    s1: int
    selectivity_bucket: tuple[float, float]
    points: tuple[StreamScalingPoint, ...]


def run_stream_scaling(
    scale: ExperimentScale = DEFAULT,
    s1: int = 50,
    fractions: tuple[float, ...] = (0.25, 0.5, 1.0),
    bucket: tuple[float, float] = (4e-5, 2e-4),
) -> StreamScalingResult:
    """Relative error for fixed-*selectivity* queries as the stream grows.

    Theorem 1 reading: with queries at a fixed selectivity ``σ`` we have
    ``f_q ≈ σ·m`` while ``SJ(S)`` grows at most like ``m²`` (and exactly
    like ``m²`` once the shape distribution stabilises), so the relative
    error ``~ √(SJ/s1)/f_q`` approaches a constant — a fixed-size synopsis
    keeps serving a growing stream at the same *relative* accuracy.  This
    ablation measures it directly by truncating the stream.
    """
    from repro.core.exact import ExactCounter
    from repro.workload.generator import generate_workload

    prepared = expdata.prepared("treebank", scale)
    seeds = run_seeds(scale.n_runs)
    points = []
    for fraction in fractions:
        n_trees = max(50, int(fraction * len(prepared.trees)))
        exact = ExactCounter(prepared.k).ingest(prepared.trees[:n_trees])
        workload = generate_workload(
            exact, (bucket,), max_per_bucket=scale.max_queries_per_bucket,
            seed=31,
        )
        base = SketchTreeConfig(
            s1=s1,
            s2=7,
            max_pattern_edges=prepared.k,
            n_virtual_streams=scale.n_virtual_streams,
            topk_size=8,
            seed=0,
            encoder_seed=42,
        )
        factory = SynopsisFactory(exact, base)
        errors = []
        for seed in seeds:
            synopsis = factory.build(seed)
            for query in workload.all_queries():
                errors.append(
                    relative_error(
                        synopsis.estimate_ordered(query.pattern), query.actual
                    )
                )
        points.append(
            StreamScalingPoint(
                n_trees=n_trees,
                n_occurrences=exact.n_values,
                self_join_size=exact.self_join_size(),
                mean_relative_error=float(np.mean(errors)) if errors else float("nan"),
            )
        )
    return StreamScalingResult(s1, bucket, tuple(points))


def render_stream_scaling(result: StreamScalingResult) -> str:
    from repro.experiments.report import format_bucket

    return format_table(
        ["# Trees", "Occurrences", "Self-Join Size", "Mean Relative Error"],
        [
            (p.n_trees, p.n_occurrences, p.self_join_size,
             p.mean_relative_error)
            for p in result.points
        ],
        title=(
            f"Ablation: Stream Scaling at Fixed Memory (TREEBANK, s1="
            f"{result.s1}, selectivity {format_bucket(result.selectivity_bucket)})"
        ),
    )


# ----------------------------------------------------------------------
# False positives: phantom patterns (Equation 10's Markov argument)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FalsePositiveResult:
    n_phantoms: int
    mean_absolute_estimate: float
    p95_absolute_estimate: float
    false_frequent_rate: float
    frequent_threshold: float


def run_false_positives(
    scale: ExperimentScale = DEFAULT,
    s1: int = 50,
    n_phantoms: int = 300,
    threshold_quantile: float = 0.999,
) -> FalsePositiveResult:
    """Estimates for patterns that never occurred in the stream.

    Equation 10 (Markov): the probability that a low-frequency value is
    estimated as frequent is small — the foundation of the top-k
    strategy.  We query syntactically valid patterns with true count 0
    and measure (a) the absolute estimate distribution and (b) how often
    a phantom's estimate exceeds the stream's ``threshold_quantile``
    frequency (the "incorrectly considered frequent" event).
    """
    prepared = expdata.prepared("treebank", scale)
    base = SketchTreeConfig(
        s1=s1,
        s2=7,
        max_pattern_edges=prepared.k,
        n_virtual_streams=scale.n_virtual_streams,
        seed=0,
        encoder_seed=42,
    )
    factory = SynopsisFactory(prepared.exact, base)
    synopsis = factory.build(seed=3)
    # Phantom patterns: labels that cannot occur in the tag set.
    phantoms = [
        (f"ZZ{i}", ((f"ZZ{i + 1}", ()),)) for i in range(n_phantoms)
    ]
    estimates = np.asarray(
        [abs(synopsis.estimate_ordered(p)) for p in phantoms]
    )
    frequencies = sorted(prepared.exact.counts.values())
    threshold = float(
        frequencies[int(threshold_quantile * (len(frequencies) - 1))]
    )
    return FalsePositiveResult(
        n_phantoms=n_phantoms,
        mean_absolute_estimate=float(estimates.mean()),
        p95_absolute_estimate=float(np.quantile(estimates, 0.95)),
        false_frequent_rate=float((estimates > threshold).mean()),
        frequent_threshold=threshold,
    )


def render_false_positives(result: FalsePositiveResult) -> str:
    return format_table(
        ["Metric", "Value"],
        [
            ("phantom queries (true count 0)", result.n_phantoms),
            ("mean |estimate|", result.mean_absolute_estimate),
            ("p95 |estimate|", result.p95_absolute_estimate),
            (
                f"rate estimated above the {result.frequent_threshold:.0f}-"
                f"count 'frequent' threshold",
                result.false_frequent_rate,
            ),
        ],
        title="Ablation: Phantom-Pattern Estimates (Equation 10)",
    )


# ----------------------------------------------------------------------
# Theorem 2 vs naive sum estimation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SumEstimatorResult:
    combined_mean_error: float
    naive_mean_error: float
    n_queries: int


def run_sum_estimator(
    scale: ExperimentScale = DEFAULT, s1: int = 50
) -> SumEstimatorResult:
    """Theorem 2's combined estimator vs summing per-pattern estimates.

    The theory: the combined estimator's variance bound is
    ``2(t−1)·SJ`` against the naive path's ``t²·SJ/min(f)²``-driven
    requirement, so at equal ``s1`` the combined form should not be worse
    on average.

    Run on a *single* stream (p = 1): with 229 virtual streams the
    patterns of a 3-pattern sum almost always land in different streams,
    where the per-stream refinement makes the two paths coincide — the
    single-stream setting is where Theorem 2's comparison is live.
    """
    prepared = expdata.prepared("treebank", scale)
    workload = composite_workload("sum", scale)
    base = SketchTreeConfig(
        s1=s1,
        s2=7,
        max_pattern_edges=prepared.k,
        n_virtual_streams=1,
        topk_size=32,  # keep the single stream's self-join size workable
        seed=0,
        encoder_seed=42,
    )
    factory = SynopsisFactory(prepared.exact, base)
    combined, naive = [], []
    n_queries = 0
    for seed in run_seeds(scale.n_runs):
        synopsis = factory.build(seed)
        for query in workload.all_queries():
            n_queries += 1
            combined.append(
                relative_error(synopsis.estimate_sum(query.patterns), query.actual)
            )
            per_pattern = sum(
                synopsis.estimate_ordered(p) for p in query.patterns
            )
            naive.append(relative_error(per_pattern, query.actual))
    return SumEstimatorResult(
        combined_mean_error=float(np.mean(combined)),
        naive_mean_error=float(np.mean(naive)),
        n_queries=n_queries,
    )


def render_sum_estimator(result: SumEstimatorResult) -> str:
    return format_table(
        ["Estimator", "Mean Relative Error"],
        [
            ("Theorem 2 combined (X Σξ)", result.combined_mean_error),
            ("Naive sum of estimates", result.naive_mean_error),
        ],
        title=f"Ablation: Sum Estimator ({result.n_queries} query evaluations)",
    )
