"""Figure 9: EnumTree evaluation — total time and pattern count vs k.

The paper's claim: "the time taken by EnumTree grows almost linearly with
the number of tree patterns that are generated".  For each ``k`` we time
the full per-tree pipeline the paper timed — pattern generation,
tree-to-sequence transformation, and the one-dimensional Rabin mapping —
over the whole stream, and record the total number of generated patterns.
The bench asserts the time/pattern ratio stays within a small factor
across k (the linearity claim).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.encoding import PatternEncoder
from repro.enumtree.enumerate import iter_pattern_multiset
from repro.experiments import data as expdata
from repro.experiments.report import format_table
from repro.experiments.scale import DEFAULT, ExperimentScale


@dataclass(frozen=True)
class Fig09Point:
    k: int
    total_seconds: float
    n_patterns: int

    @property
    def microseconds_per_pattern(self) -> float:
        if self.n_patterns == 0:
            return 0.0
        return 1e6 * self.total_seconds / self.n_patterns


@dataclass(frozen=True)
class Fig09Result:
    dataset: str
    points: tuple[Fig09Point, ...]


def run(dataset: str = "treebank", scale: ExperimentScale = DEFAULT) -> Fig09Result:
    prepared = expdata.prepared(dataset, scale)
    points = []
    for k in range(1, prepared.k + 1):
        encoder = PatternEncoder(seed=3)  # fresh cache: count full mapping cost
        n_patterns = 0
        start = time.perf_counter()
        for tree in prepared.trees:
            for pattern in iter_pattern_multiset(tree, k):
                encoder.encode(pattern)
                n_patterns += 1
        elapsed = time.perf_counter() - start
        points.append(Fig09Point(k, elapsed, n_patterns))
    return Fig09Result(dataset.upper(), tuple(points))


def render(result: Fig09Result) -> str:
    return format_table(
        ["k", "Total Time (s)", "# Patterns Generated", "us / pattern"],
        [
            (p.k, p.total_seconds, p.n_patterns, p.microseconds_per_pattern)
            for p in result.points
        ],
        title=f"Figure 9: EnumTree Evaluation ({result.dataset})",
    )
