"""Experiment harness: one module per paper table/figure.

====================  =====================================================
``table1``            dataset statistics (Table 1)
``fig08``             single-pattern workload histograms (Figure 8)
``fig09``             EnumTree cost and pattern counts vs k (Figure 9)
``fig10``             error vs top-k for two s1 values, both datasets
                      (Figure 10 a-d)
``fig11``             SUM / PRODUCT workload histograms (Figure 11)
``fig12``             SUM / PRODUCT estimation error (Figure 12 a-d)
``cost``              stream-processing cost ratios (Sections 7.6/7.7 text)
``ablations``         virtual streams, top-k, CountSketch-vs-AMS, mapping
                      function, Theorem-2-vs-naive sum estimator
====================  =====================================================

Every module exposes ``run(...) -> <Result dataclass>`` and
``render(result) -> str``; the benchmark suite calls ``run`` and asserts
the paper's qualitative claims on the result, and the CLI prints
``render``.  Scales are chosen via :mod:`repro.experiments.scale`
(synthetic streams; see DESIGN.md §3 for the substitution argument).
"""

from repro.experiments.scale import DEFAULT, PAPER, SMOKE, ExperimentScale

__all__ = ["DEFAULT", "PAPER", "SMOKE", "ExperimentScale"]
