"""Evaluation machinery: error metric, synopsis factory, bucket averaging.

The accuracy metric is the paper's (Section 7.5): standard relative error
``|approx − actual| / actual``, with the *sanity bound* ``approx =
0.1 × actual`` substituted whenever the sketch returns a non-positive
estimate.  Results are averaged per selectivity bucket over several
independent synopsis draws (the paper averaged 5 runs).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.config import SketchTreeConfig
from repro.core.encoding import PatternEncoder
from repro.core.exact import ExactCounter
from repro.core.expressions import Count, Expression
from repro.core.sketchtree import SketchTree
from repro.errors import ConfigError
from repro.workload.generator import (
    ProductQuery,
    SumQuery,
    Workload,
    WorkloadQuery,
)


def relative_error(approx: float, actual: float) -> float:
    """The paper's error metric with its sanity bound for non-positive
    estimates (Section 7.5)."""
    if actual <= 0:
        raise ConfigError(f"actual count must be positive, got {actual}")
    if approx <= 0:
        approx = 0.1 * actual
    return abs(approx - actual) / actual


class SynopsisFactory:
    """Stamps out synopses over one pre-encoded stream.

    Encodes the exact counter's pattern table once (with a pinned
    ``encoder_seed``), then :meth:`build` creates a fresh
    :class:`SketchTree` per (sketch seed, config override) and bulk-loads
    the values — so sweeping ``s1 × top-k × runs`` costs sketch time only,
    not enumeration or encoding time.
    """

    def __init__(self, exact: ExactCounter, base_config: SketchTreeConfig):
        if base_config.mapping != "rabin":
            # "pairing" assigns label ids by first-seen order, so two
            # encoder instances only agree when they see the same label
            # sequence — which pre-encoding here and querying there does
            # not guarantee.  Rabin encodings are order-independent.
            raise ConfigError(
                "SynopsisFactory requires mapping='rabin': pairing-mode "
                "label ids depend on observation order and would not line "
                "up between the factory's encoder and the synopses'"
            )
        self.base_config = base_config
        self._encoder_seed = (
            base_config.encoder_seed
            if base_config.encoder_seed is not None
            else base_config.seed
        )
        encoder = PatternEncoder(
            mapping=base_config.mapping,
            degree=base_config.fingerprint_degree,
            seed=self._encoder_seed,
        )
        self._value_counts: dict[int, int] = {}
        for pattern, count in exact.counts.items():
            value = encoder.encode(pattern)
            self._value_counts[value] = self._value_counts.get(value, 0) + count
        self._n_trees = exact.n_trees

    def build(self, seed: int, **overrides) -> SketchTree:
        """A loaded synopsis with the given sketch seed and overrides
        (e.g. ``s1=50, topk_size=8``)."""
        config = dataclasses.replace(
            self.base_config,
            seed=seed,
            encoder_seed=self._encoder_seed,
            **overrides,
        )
        synopsis = SketchTree(config)
        synopsis.ingest_value_counts(self._value_counts, n_trees=self._n_trees)
        return synopsis

    @property
    def n_distinct_values(self) -> int:
        return len(self._value_counts)


@dataclass(frozen=True)
class BucketErrors:
    """Mean relative error of the queries in one selectivity bucket."""

    bucket: tuple[float, float]
    n_queries: int
    mean_relative_error: float


def evaluate_single(synopsis: SketchTree, workload: Workload) -> list[BucketErrors]:
    """Per-bucket mean error of single-pattern ``COUNT_ord`` queries."""

    def estimate(query: WorkloadQuery) -> float:
        return synopsis.estimate_ordered(query.pattern)

    return _evaluate(workload, estimate)


def evaluate_sum(synopsis: SketchTree, workload: Workload) -> list[BucketErrors]:
    """Per-bucket mean error of SUM queries (Theorem 2 estimator)."""

    def estimate(query: SumQuery) -> float:
        return synopsis.estimate_sum(query.patterns)

    return _evaluate(workload, estimate)


def evaluate_product(synopsis: SketchTree, workload: Workload) -> list[BucketErrors]:
    """Per-bucket mean error of PRODUCT queries (Section 4 estimator)."""

    def estimate(query: ProductQuery) -> float:
        expression: Expression = Count(query.patterns[0])
        for pattern in query.patterns[1:]:
            expression = expression * Count(pattern)
        return synopsis.estimate_expression(expression)

    return _evaluate(workload, estimate)


def _evaluate(workload: Workload, estimate) -> list[BucketErrors]:
    out: list[BucketErrors] = []
    for bucket, queries in zip(workload.buckets, workload.queries_by_bucket):
        if not queries:
            out.append(BucketErrors(bucket, 0, float("nan")))
            continue
        total = sum(
            relative_error(estimate(query), query.actual) for query in queries
        )
        out.append(BucketErrors(bucket, len(queries), total / len(queries)))
    return out


def averaged_over_runs(
    factory: SynopsisFactory,
    workload: Workload,
    evaluator,
    seeds: Sequence[int],
    **build_overrides,
) -> list[BucketErrors]:
    """Average per-bucket errors over several independent synopsis draws.

    ``evaluator`` is one of :func:`evaluate_single` / :func:`evaluate_sum`
    / :func:`evaluate_product`.
    """
    if not seeds:
        raise ConfigError("at least one seed is required")
    accumulated: list[list[float]] = []
    counts: list[int] = []
    buckets: list[tuple[float, float]] = []
    for run, seed in enumerate(seeds):
        synopsis = factory.build(seed, **build_overrides)
        results = evaluator(synopsis, workload)
        if run == 0:
            buckets = [r.bucket for r in results]
            counts = [r.n_queries for r in results]
            accumulated = [[] for _ in results]
        for index, result in enumerate(results):
            if result.n_queries:
                accumulated[index].append(result.mean_relative_error)
    out: list[BucketErrors] = []
    for bucket, n, errors in zip(buckets, counts, accumulated):
        mean = sum(errors) / len(errors) if errors else float("nan")
        out.append(BucketErrors(bucket, n, mean))
    return out


def run_seeds(n_runs: int, base: int = 1000) -> tuple[int, ...]:
    """Deterministic, well-separated sketch seeds for ``n_runs`` draws."""
    return tuple(base + 7919 * i for i in range(n_runs))
