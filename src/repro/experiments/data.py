"""Shared, cached experiment inputs: streams, exact counts, workloads.

Dataset preparation (generation + EnumTree ground truth) dominates
experiment wall-clock, so everything here is memoised per (dataset,
scale) within the process; benches touching the same dataset reuse one
preparation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exact import ExactCounter
from repro.datasets.dblp import DblpGenerator
from repro.datasets.treebank import TreebankGenerator
from repro.errors import ConfigError
from repro.experiments.scale import ExperimentScale
from repro.trees.tree import LabeledTree
from repro.workload.generator import Workload, generate_workload

#: The paper's Figure 8(a) selectivity buckets for TREEBANK.
TREEBANK_BUCKETS = (
    (1e-5, 2e-5),
    (2e-5, 4e-5),
    (4e-5, 8e-5),
    (8e-5, 2e-4),
)

#: The paper's Figure 8(b) selectivity buckets for DBLP.
DBLP_BUCKETS = (
    (5e-6, 2.5e-5),
    (2.5e-5, 5e-5),
    (5e-5, 7.5e-5),
    (7.5e-5, 1e-4),
)

#: The paper's two corpora (Table 1).
DATASET_NAMES = ("treebank", "dblp")

#: Paper corpora plus the XMark-like appendix dataset.
ALL_DATASETS = ("treebank", "dblp", "xmark")

#: Selectivity buckets for the XMark-like appendix experiments (same
#: style as Figure 8's; XMark-like streams sit between the two corpora).
XMARK_BUCKETS = (
    (1e-5, 2.5e-5),
    (2.5e-5, 5e-5),
    (5e-5, 1e-4),
    (1e-4, 3e-4),
)


@dataclass
class PreparedDataset:
    """A generated stream with its exact ground truth."""

    name: str
    trees: list[LabeledTree]
    k: int
    exact: ExactCounter

    @property
    def n_trees(self) -> int:
        return len(self.trees)


_dataset_cache: dict[tuple, PreparedDataset] = {}
_workload_cache: dict[tuple, Workload] = {}


def dataset_spec(name: str, scale: ExperimentScale) -> tuple[int, int]:
    """(n_trees, k) for a dataset under a scale."""
    if name == "treebank":
        return scale.treebank_trees, scale.treebank_k
    if name == "dblp":
        return scale.dblp_trees, scale.dblp_k
    if name == "xmark":
        # Mixed shape: DBLP-like stream length at k = 4.
        return scale.dblp_trees, 4
    raise ConfigError(f"unknown dataset {name!r}; choose from {ALL_DATASETS}")


def generator_for(name: str, seed: int = 1):
    """The stream generator for a dataset name."""
    if name == "treebank":
        return TreebankGenerator(seed=seed)
    if name == "dblp":
        return DblpGenerator(seed=seed)
    if name == "xmark":
        from repro.datasets.xmark import XMarkGenerator

        return XMarkGenerator(seed=seed)
    raise ConfigError(f"unknown dataset {name!r}; choose from {ALL_DATASETS}")


def buckets_for(name: str) -> tuple[tuple[float, float], ...]:
    """The single-pattern selectivity buckets per dataset."""
    if name == "treebank":
        return TREEBANK_BUCKETS
    if name == "dblp":
        return DBLP_BUCKETS
    if name == "xmark":
        return XMARK_BUCKETS
    raise ConfigError(f"unknown dataset {name!r}; choose from {ALL_DATASETS}")


def prepared(name: str, scale: ExperimentScale) -> PreparedDataset:
    """Generate (or fetch cached) stream + exact ground truth."""
    n_trees, k = dataset_spec(name, scale)
    key = (name, n_trees, k)
    cached = _dataset_cache.get(key)
    if cached is None:
        trees = list(generator_for(name).generate(n_trees))
        exact = ExactCounter(k).ingest(trees)
        cached = _dataset_cache[key] = PreparedDataset(name, trees, k, exact)
    return cached


def base_workload(name: str, scale: ExperimentScale) -> Workload:
    """The Figure 8-style single-pattern workload for a dataset."""
    data = prepared(name, scale)
    key = (name, data.n_trees, data.k, scale.max_queries_per_bucket)
    cached = _workload_cache.get(key)
    if cached is None:
        cached = _workload_cache[key] = generate_workload(
            data.exact,
            buckets_for(name),
            max_per_bucket=scale.max_queries_per_bucket,
            seed=17,
        )
    return cached


def export_xml(name: str, path, scale: ExperimentScale) -> int:
    """Write a dataset's stream as an XML forest file; returns tree count.

    Useful for replaying the exact synthetic streams through external
    tools, or archiving the corpus an experiment ran on.  The file
    round-trips through :func:`repro.trees.parse_forest`.
    """
    from repro.trees.xml import to_xml

    data = prepared(name, scale)
    with open(path, "w", encoding="utf-8") as sink:
        for tree in data.trees:
            sink.write(to_xml(tree))
            sink.write("\n")
    return data.n_trees


def clear_caches() -> None:
    """Drop every memoised dataset/workload (tests use this)."""
    _dataset_cache.clear()
    _workload_cache.clear()


def auto_buckets(
    selectivities, n_buckets: int = 4
) -> tuple[tuple[float, float], ...]:
    """Log-spaced selectivity buckets covering observed values.

    The paper's SUM/PRODUCT bucket boundaries are tied to its corpora;
    composite workloads over synthetic data use data-driven boundaries
    with the same log-spaced style instead.
    """
    values = sorted(s for s in selectivities if s > 0)
    if not values:
        raise ConfigError("no positive selectivities to bucket")
    low, high = values[0], values[-1] * 1.0000001
    if low >= high:
        high = low * 10
    ratio = (high / low) ** (1.0 / n_buckets)
    edges = [low * ratio**i for i in range(n_buckets + 1)]
    return tuple((edges[i], edges[i + 1]) for i in range(n_buckets))
