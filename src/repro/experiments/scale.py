"""Experiment scale presets.

The paper processed 28,699 (TREEBANK) and 98,061 (DBLP) trees with
7M / 11M distinct patterns on a 2.4 GHz Pentium IV C++ build.  A pure
Python substrate replays the identical algorithms at reduced stream
length; sketch and top-k sizes scale with the stream so the error/memory
trade-off curves keep their shape.  ``PAPER`` approaches the original
scale and is practical for an unattended run; ``DEFAULT`` drives the
benchmark suite; ``SMOKE`` keeps CI fast.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Stream sizes and sweep parameters for one experiment campaign."""

    name: str
    treebank_trees: int
    dblp_trees: int
    treebank_k: int
    dblp_k: int
    n_runs: int
    #: per-virtual-stream top-k capacities swept in Figures 10/12 (0 = off)
    topk_sizes: tuple[int, ...]
    #: the two s1 values per dataset, paper Figure 10: (25, 50) TREEBANK,
    #: (50, 75) DBLP
    treebank_s1: tuple[int, int]
    dblp_s1: tuple[int, int]
    n_virtual_streams: int
    max_queries_per_bucket: int
    n_composite_queries: int


SMOKE = ExperimentScale(
    name="smoke",
    treebank_trees=200,
    dblp_trees=250,
    treebank_k=4,
    dblp_k=3,
    n_runs=2,
    topk_sizes=(0, 2, 8),
    treebank_s1=(25, 50),
    dblp_s1=(50, 75),
    n_virtual_streams=31,
    max_queries_per_bucket=20,
    n_composite_queries=60,
)

DEFAULT = ExperimentScale(
    name="default",
    treebank_trees=1200,
    dblp_trees=1600,
    treebank_k=6,
    dblp_k=4,
    n_runs=3,
    topk_sizes=(0, 2, 8, 32, 64),
    treebank_s1=(25, 50),
    dblp_s1=(50, 75),
    n_virtual_streams=229,
    max_queries_per_bucket=40,
    n_composite_queries=200,
)

PAPER = ExperimentScale(
    name="paper",
    treebank_trees=28699,
    dblp_trees=98061,
    treebank_k=6,
    dblp_k=4,
    n_runs=5,
    topk_sizes=(0, 50, 100, 150, 200, 250, 300),
    treebank_s1=(25, 50),
    dblp_s1=(50, 75),
    n_virtual_streams=229,
    max_queries_per_bucket=60,
    n_composite_queries=10000,
)

_BY_NAME = {scale.name: scale for scale in (SMOKE, DEFAULT, PAPER)}


def by_name(name: str) -> ExperimentScale:
    """Look up a preset (``smoke`` / ``default`` / ``paper``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
