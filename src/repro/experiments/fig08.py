"""Figure 8: single-pattern query workload histograms.

Per dataset: the number of sampled queries in each selectivity range,
plus the min/max actual counts (the paper reports TREEBANK counts in
[872, 18256] and DBLP in [206, 4547]; scaled streams scale the counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import data as expdata
from repro.experiments.report import format_bucket, format_table
from repro.experiments.scale import DEFAULT, ExperimentScale


@dataclass(frozen=True)
class Fig08Bucket:
    bucket: tuple[float, float]
    n_queries: int
    min_count: int
    max_count: int


@dataclass(frozen=True)
class Fig08Result:
    dataset: str
    buckets: tuple[Fig08Bucket, ...]

    @property
    def n_queries(self) -> int:
        return sum(b.n_queries for b in self.buckets)


def run(dataset: str = "treebank", scale: ExperimentScale = DEFAULT) -> Fig08Result:
    workload = expdata.base_workload(dataset, scale)
    buckets = []
    for bucket, queries in zip(workload.buckets, workload.queries_by_bucket):
        counts = [q.actual for q in queries]
        buckets.append(
            Fig08Bucket(
                bucket=bucket,
                n_queries=len(queries),
                min_count=min(counts) if counts else 0,
                max_count=max(counts) if counts else 0,
            )
        )
    return Fig08Result(dataset.upper(), tuple(buckets))


def render(result: Fig08Result) -> str:
    return format_table(
        ["Selectivity Range", "# Queries", "Min Count", "Max Count"],
        [
            (format_bucket(b.bucket), b.n_queries, b.min_count, b.max_count)
            for b in result.buckets
        ],
        title=f"Figure 8: Query Workload ({result.dataset})",
    )
