"""Figure 10: estimation accuracy vs top-k size and s1, per dataset.

For a fixed ``s1`` (the paper sweeps 25/50 on TREEBANK and 50/75 on
DBLP, with ``s2 = 7`` and 229 virtual streams), the average relative
error of the single-pattern workload is reported per selectivity bucket
while the per-stream top-k capacity grows, alongside the paper-style
total synopsis memory.

Qualitative claims the benches assert:

* error decreases (on average) as top-k grows — frequent-value deletion
  shrinks the self-join size;
* less selective buckets estimate better (Theorem 1);
* doubling ``s1`` reduces error at equal top-k;
* DBLP improves much more sharply at small top-k than TREEBANK (skew).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SketchTreeConfig
from repro.experiments import data as expdata
from repro.experiments.harness import (
    BucketErrors,
    SynopsisFactory,
    averaged_over_runs,
    evaluate_single,
    run_seeds,
)
from repro.experiments.report import format_bucket, format_percent, format_table
from repro.experiments.scale import DEFAULT, ExperimentScale


@dataclass(frozen=True)
class Fig10Point:
    topk_size: int
    memory_bytes: int
    bucket_errors: tuple[BucketErrors, ...]


@dataclass(frozen=True)
class Fig10Result:
    dataset: str
    s1: int
    s2: int
    n_virtual_streams: int
    points: tuple[Fig10Point, ...]

    def errors_for_bucket(self, index: int) -> list[float]:
        """Error series over the top-k sweep for one bucket (a plot line)."""
        return [p.bucket_errors[index].mean_relative_error for p in self.points]


def run(
    dataset: str = "treebank",
    s1: int | None = None,
    scale: ExperimentScale = DEFAULT,
    s2: int = 7,
) -> Fig10Result:
    if s1 is None:
        s1 = (scale.treebank_s1 if dataset == "treebank" else scale.dblp_s1)[0]
    prepared = expdata.prepared(dataset, scale)
    workload = expdata.base_workload(dataset, scale)
    base = SketchTreeConfig(
        s1=s1,
        s2=s2,
        max_pattern_edges=prepared.k,
        n_virtual_streams=scale.n_virtual_streams,
        seed=0,
        encoder_seed=42,
    )
    factory = SynopsisFactory(prepared.exact, base)
    seeds = run_seeds(scale.n_runs)
    points = []
    for topk in scale.topk_sizes:
        errors = averaged_over_runs(
            factory, workload, evaluate_single, seeds, topk_size=topk
        )
        memory = factory.build(seeds[0], topk_size=topk).memory_report()
        points.append(
            Fig10Point(topk, memory.provisioned_total, tuple(errors))
        )
    return Fig10Result(
        dataset.upper(), s1, s2, scale.n_virtual_streams, tuple(points)
    )


def render(result: Fig10Result) -> str:
    buckets = [format_bucket(b.bucket) for b in result.points[0].bucket_errors]
    headers = ["Top-k", "Memory"] + buckets
    rows = []
    for point in result.points:
        rows.append(
            [point.topk_size, f"{point.memory_bytes / 1024:.0f} KB"]
            + [format_percent(b.mean_relative_error) for b in point.bucket_errors]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Figure 10: Avg Relative Error ({result.dataset}, s1={result.s1}, "
            f"s2={result.s2}, p={result.n_virtual_streams})"
        ),
    )
