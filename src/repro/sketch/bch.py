"""Four-wise independent ±1 variables from BCH parity-check matrices.

The paper (and AMS [3]) generate their ξ families "by constructing
parity check matrices of the binary BCH codes".  Concretely: the dual of
the extended double-error-correcting BCH code over ``GF(2^m)`` yields an
*exactly* four-wise independent bit family of size ``2^m`` from a
``2m + 1``-bit seed ``(s0, s1, s2)``:

    bit(i) = s0 ⊕ ⟨s1, i⟩ ⊕ ⟨s2, i³⟩,        ξ(i) = 2·bit(i) − 1

where ``i³`` is computed in ``GF(2^m)`` (polynomial arithmetic modulo an
irreducible polynomial of degree ``m``) and ``⟨a, b⟩`` is the GF(2)
inner product — the parity of ``a & b``.

This is the faithful counterpart to the polynomial-hash family in
:mod:`repro.sketch.xi`; both are four-wise independent, and the test
suite verifies this construction's independence *exhaustively* for small
``m``.  It plugs into :class:`~repro.sketch.ams.SketchMatrix` unchanged
(the matrix only needs ``xi`` / ``xi_batch`` / ``independence``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.hashing.gf2 import gf2_mulmod, random_irreducible
from repro.hashing.rng import default_generator


class BchXiGenerator:
    """A family of BCH-derived four-wise independent ξ mappings.

    Parameters
    ----------
    n_instances:
        Independent seeds drawn, one ξ mapping per sketch instance.
    m:
        Field degree: the domain is ``[0, 2^m)``.  31 matches the Rabin
        fingerprint residues used throughout (values < 2^31).
    seed:
        Seed for the ``(s0, s1, s2)`` draws and the field polynomial.
    """

    #: This construction is exactly four-wise independent — no more.
    independence = 4

    def __init__(self, n_instances: int, m: int = 31, seed: int = 0):
        if n_instances < 1:
            raise ConfigError(f"n_instances must be >= 1, got {n_instances}")
        if not 2 <= m <= 62:
            raise ConfigError(f"m must be in [2, 62], got {m}")
        self.n_instances = n_instances
        self.m = m
        self.seed = seed
        rng = default_generator(seed)
        self._poly = random_irreducible(m, rng)
        bound = 1 << m
        self._s0 = rng.integers(0, 2, size=n_instances, dtype=np.int64)
        self._s1 = rng.integers(0, bound, size=n_instances, dtype=np.int64)
        self._s2 = rng.integers(0, bound, size=n_instances, dtype=np.int64)
        self._cube_cache: dict[int, int] = {}

    def _cube(self, value: int) -> int:
        """``value³`` in GF(2^m) (memoised; queries repeat values)."""
        cached = self._cube_cache.get(value)
        if cached is None:
            square = gf2_mulmod(value, value, self._poly)
            cached = gf2_mulmod(square, value, self._poly)
            self._cube_cache[value] = cached
        return cached

    def xi(self, value: int) -> np.ndarray:
        """ξ(value) for every instance: ±1 int64 array, shape (n,)."""
        return self.xi_values([value])[:, 0]

    def xi_batch(self, values: np.ndarray) -> np.ndarray:
        """ξ for an int64 value batch: ±1 int64 array, (n_instances, m).

        Values are reduced into the field domain ``[0, 2^m)`` first, so
        any non-negative 63-bit input is accepted (mirroring
        :class:`~repro.sketch.xi.XiGenerator`).
        """
        mask = (1 << self.m) - 1
        reduced = np.asarray(values, dtype=np.int64) & mask
        cubes = np.fromiter(
            (self._cube(int(v)) for v in reduced),
            dtype=np.int64,
            count=len(reduced),
        )
        bits = (
            np.bitwise_count(self._s1[:, None] & reduced[None, :])
            + np.bitwise_count(self._s2[:, None] & cubes[None, :])
            + self._s0[:, None]
        ) & 1
        return bits.astype(np.int64) * 2 - 1

    def to_field(self, values, count: int = -1) -> np.ndarray:
        """Canonical value → field-domain conversion (``[0, 2^m)``).

        The BCH counterpart of :meth:`XiGenerator.to_field`: masking in
        Python accepts arbitrary-precision values and agrees with the
        reduction :meth:`xi_batch` applies to int64 batches.
        """
        mask = (1 << self.m) - 1
        return np.fromiter(
            (int(v) & mask for v in values), dtype=np.int64, count=count
        )

    def to_field_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_field` for int64 value arrays (``& mask``)."""
        mask = (1 << self.m) - 1
        return np.asarray(values, dtype=np.int64) & mask

    def xi_values(self, values) -> np.ndarray:
        """ξ for an iterable of Python ints (convenience wrapper)."""
        return self.xi_batch(self.to_field(values))

    def __repr__(self) -> str:
        return (
            f"BchXiGenerator(n_instances={self.n_instances}, m={self.m}, "
            f"seed={self.seed})"
        )
