"""COUNT sketch (Charikar, Chen & Farach-Colton 2002).

The paper cites COUNT sketches as the other off-the-shelf point estimator
its reduction could plug into (Section 2.2), and its virtual-streams idea
is explicitly "similar to using a set of buckets in COUNT SKETCHES".  We
implement it both as a baseline for the ablation benches and to validate
that SketchTree's reduction is estimator-agnostic.

Structure: ``depth`` rows × ``width`` buckets.  Row ``r`` hashes a value
to bucket ``h_r(v)`` (pairwise-independent) and adds ``s_r(v) ∈ {−1, +1}``
(four-wise independent).  The estimate of ``f_v`` is the median over rows
of ``s_r(v) · C[r, h_r(v)]``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sketch.xi import MERSENNE_31, XiGenerator

_CHUNK = 4096


class CountSketch:
    """A COUNT sketch supporting updates, deletions and point estimates."""

    def __init__(self, width: int, depth: int, seed: int = 0):
        if width < 1 or depth < 1:
            raise ConfigError(f"width and depth must be >= 1, got {width}, {depth}")
        self.width = width
        self.depth = depth
        self.counters = np.zeros((depth, width), dtype=np.int64)
        rng = np.random.default_rng(seed)
        # Pairwise-independent bucket hash per row: (a*v + b) mod p mod width.
        self._bucket_a = rng.integers(1, MERSENNE_31, size=depth, dtype=np.int64)
        self._bucket_b = rng.integers(0, MERSENNE_31, size=depth, dtype=np.int64)
        # Four-wise independent signs per row.
        self._sign = XiGenerator(depth, independence=4, seed=int(rng.integers(2**31)))

    def _buckets(self, values: np.ndarray) -> np.ndarray:
        """Bucket index per (row, value): shape (depth, m)."""
        v = values % MERSENNE_31
        h = (self._bucket_a[:, None] * v[None, :] + self._bucket_b[:, None]) % MERSENNE_31
        return h % self.width

    def update(self, value: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``value`` (negative = delete)."""
        self.update_batch(np.asarray([int(value) % MERSENNE_31], dtype=np.int64),
                          np.asarray([count], dtype=np.int64))

    def update_batch(self, values: np.ndarray, counts: np.ndarray | None = None) -> None:
        """Vectorised batch update."""
        values = np.asarray(values, dtype=np.int64)
        if counts is None:
            counts = np.ones(len(values), dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        rows = np.arange(self.depth)
        for start in range(0, len(values), _CHUNK):
            vs = values[start : start + _CHUNK]
            cs = counts[start : start + _CHUNK]
            buckets = self._buckets(vs)  # (depth, chunk)
            signs = self._sign.xi_batch(vs)  # (depth, chunk)
            for r in rows:  # scatter-add per row (buckets may repeat)
                np.add.at(self.counters[r], buckets[r], signs[r] * cs)

    def update_counts(self, counts_by_value: dict[int, int]) -> None:
        """Add a whole frequency table at once."""
        if not counts_by_value:
            return
        values = np.fromiter(
            (v % MERSENNE_31 for v in counts_by_value), dtype=np.int64,
            count=len(counts_by_value),
        )
        counts = np.fromiter(
            counts_by_value.values(), dtype=np.int64, count=len(counts_by_value)
        )
        self.update_batch(values, counts)

    def estimate(self, value: int) -> float:
        """Median-over-rows point estimate of the frequency of ``value``.

        ``value`` may be an arbitrary-precision pairing code; it is reduced
        mod p *before* entering the int64 domain, matching ``update_counts``.
        """
        v = np.asarray([int(value) % MERSENNE_31], dtype=np.int64)
        buckets = self._buckets(v)[:, 0]
        signs = self._sign.xi_batch(v)[:, 0]
        rows = np.arange(self.depth)
        return float(np.median(signs * self.counters[rows, buckets]))

    def memory_bytes(self) -> int:
        """Bytes held by the counter table."""
        return self.counters.nbytes

    def __repr__(self) -> str:
        return f"CountSketch(width={self.width}, depth={self.depth})"
