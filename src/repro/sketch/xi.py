"""k-wise independent ±1 random variables, one family per sketch instance.

AMS sketches need, for every sketch instance, a mapping
``ξ : dom(S) → {−1, +1}`` that is four-wise independent (or k-wise for the
generalised query expressions of Section 4).  The paper generates them
from parity-check matrices of BCH codes; the textbook-equivalent
construction used here evaluates a uniformly random polynomial of degree
``k − 1`` over the prime field ``GF(2^31 − 1)`` and takes the low bit:

    h_a(t) = a_{k−1} t^{k−1} + … + a_1 t + a_0  (mod p),    ξ(t) = 2·(h & 1) − 1

A random degree-``<k`` polynomial over a field gives exactly k-wise
independent, uniformly distributed values; taking a parity bit of a value
uniform on ``[0, p)`` with odd ``p`` introduces a bias of ``1/p ≈ 4.7e-10``,
negligible against the estimator variance at any realistic sketch size.

Everything is vectorised across the whole family of sketch instances: one
call evaluates ξ for all ``s1 × s2`` instances, for a batch of values, in
a handful of numpy operations — the trick that makes a pure-Python
SketchTree fast enough to replay the paper's experiments.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError

#: The Mersenne prime ``2^31 − 1`` — field size for the polynomial hash.
#: Chosen so every Horner step ``h * t + a`` fits comfortably in int64.
MERSENNE_31 = (1 << 31) - 1


class XiGenerator:
    """A family of ``n_instances`` independent k-wise independent ξ mappings.

    Parameters
    ----------
    n_instances:
        Number of sketch instances (``s1 × s2`` for a sketch matrix); one
        independent polynomial is drawn per instance.
    independence:
        ``k``: the independence degree.  4 suffices for point and sum
        queries (Theorems 1 and 2); product expressions need more (see
        :mod:`repro.core.expressions`).
    seed:
        Seed for the coefficient draw.  The generator is the *only* state
        AMS needs besides the counters, matching the paper's observation
        that ξ is recomputed from the random seed at query time rather
        than stored.
    """

    def __init__(self, n_instances: int, independence: int = 4, seed: int = 0):
        if n_instances < 1:
            raise ConfigError(f"n_instances must be >= 1, got {n_instances}")
        if independence < 2:
            raise ConfigError(f"independence must be >= 2, got {independence}")
        self.n_instances = n_instances
        self.independence = independence
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Shape (k, n_instances): coefficient j of every instance, laid out
        # so Horner's rule broadcasts cleanly against a batch of values.
        self._coeffs = rng.integers(
            0, MERSENNE_31, size=(independence, n_instances), dtype=np.int64
        )

    def xi(self, value: int) -> np.ndarray:
        """ξ(value) for every instance: an int64 array of ±1, shape (n,).

        Dedicated scalar path (no broadcast/copy): the top-k tracker
        calls this once per Algorithm 4 invocation.
        """
        t = int(value) % MERSENNE_31
        coeffs = self._coeffs
        h = coeffs[-1]
        for j in range(self.independence - 2, -1, -1):
            h = (h * t + coeffs[j]) % MERSENNE_31
        return (h & 1) * 2 - 1

    def xi_batch(self, values: np.ndarray) -> np.ndarray:
        """ξ for a batch of values: ±1 int64 array, shape (n_instances, m).

        ``values`` must be an int64 array; entries are reduced modulo the
        field size, so any non-negative 63-bit representation works.
        """
        t = np.asarray(values, dtype=np.int64) % MERSENNE_31  # (m,)
        coeffs = self._coeffs
        h = np.broadcast_to(coeffs[-1][:, None], (self.n_instances, t.shape[0])).copy()
        for j in range(self.independence - 2, -1, -1):
            # h, t < 2^31 so h * t < 2^62 never overflows int64.
            h *= t[None, :]
            h += coeffs[j][:, None]
            h %= MERSENNE_31
        return (h & 1) * 2 - 1

    def to_field(self, values: Iterable[int], count: int = -1) -> np.ndarray:
        """The canonical value → field-element conversion, as int64 array.

        Every path that turns Python-int stream values into a numpy array
        for this family goes through here — the *single* reduction point
        into ``GF(2^31 − 1)``.  Reducing in Python keeps pairing-mode
        values (arbitrary-precision ints, Section 2.2) from overflowing
        the int64 conversion; ξ is invariant under the reduction, so
        estimates are unchanged.
        """
        return np.fromiter(
            (int(v) % MERSENNE_31 for v in values), dtype=np.int64, count=count
        )

    def to_field_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_field` for values already held as int64.

        The batch pipeline's fast path: when every raw value fits int64
        (Rabin-mode encodings), the reduction is one numpy modulo instead
        of a per-value Python loop.  Agrees with :meth:`to_field`
        exactly — numpy's ``%`` matches Python's for non-negative
        operands.
        """
        return np.asarray(values, dtype=np.int64) % MERSENNE_31

    def xi_values(self, values: Iterable[int]) -> np.ndarray:
        """ξ for an iterable of Python ints (convenience wrapper)."""
        return self.xi_batch(self.to_field(values))

    def spawn(self, seed_offset: int) -> "XiGenerator":
        """An independent generator with a derived seed (for extra runs)."""
        return XiGenerator(self.n_instances, self.independence, self.seed + seed_offset)

    def __repr__(self) -> str:
        return (
            f"XiGenerator(n_instances={self.n_instances}, "
            f"independence={self.independence}, seed={self.seed})"
        )
