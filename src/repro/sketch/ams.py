"""AMS (tug-of-war) sketches with median-of-means boosting.

An AMS sketch of a stream ``S`` of integer values is the randomized linear
projection ``X = Σ_i f_i ξ_i`` of the stream's frequency vector, where the
``ξ_i ∈ {−1, +1}`` are four-wise independent (Alon, Matias & Szegedy).
``ξ_q · X`` is then an unbiased estimator of the frequency ``f_q`` with
variance at most the stream's self-join size, and accuracy/confidence are
boosted by averaging ``s1`` independent instances and taking the median of
``s2`` such averages (Section 3 of the paper).

Two classes:

* :class:`AmsSketch` — a single counter; the textbook object, used in unit
  tests and documentation examples.
* :class:`SketchMatrix` — ``s2 × s1`` instances updated in lock-step with
  vectorised numpy arithmetic; this is what SketchTree deploys.  Because a
  linear projection is additive, updates commute, deletions are negative
  updates, and two matrices built with the *same* ξ family can be merged
  by adding counters — the properties the paper's top-k strategy
  (Section 5.2) and virtual streams (Section 5.3) rely on.
"""

from __future__ import annotations

from math import factorial
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError
from repro.sketch.xi import XiGenerator

if TYPE_CHECKING:
    from repro.core.batch import EncodedBatch

#: Batch size for chunked ξ evaluation; bounds peak memory of an update to
#: roughly ``n_instances × _CHUNK`` int64 cells.
_CHUNK = 4096


class AmsSketch:
    """A single AMS counter — one randomized linear projection.

    Mostly pedagogical; SketchTree itself uses :class:`SketchMatrix`.
    """

    def __init__(self, independence: int = 4, seed: int = 0):
        self._xi = XiGenerator(1, independence=independence, seed=seed)
        self.counter = 0

    def update(self, value: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``value`` (negative = delete)."""
        self.counter += count * int(self._xi.xi(value)[0])

    def estimate(self, value: int) -> float:
        """Unbiased estimate of the frequency of ``value``."""
        return float(self._xi.xi(value)[0] * self.counter)


class SketchMatrix:  # sketchlint: single-writer
    """``s2`` groups of ``s1`` AMS instances sharing one value domain.

    Single-writer: counters are mutated by exactly one thread at a time —
    the ingest thread of the owning synopsis, or the constructing thread
    of a fresh merge/refold copy that no other thread can reach yet.
    Readers see racy-but-benign int64 sums (docs/concurrency.md).

    Parameters
    ----------
    s1:
        Instances per group; controls estimation *accuracy* (Theorem 1).
    s2:
        Number of groups; controls estimation *confidence*.
    independence:
        k-wise independence of the ξ families (ignored when ``xi`` given).
    seed:
        Seed for the ξ coefficient draw (ignored when ``xi`` given).
    xi:
        An externally shared :class:`XiGenerator`.  Virtual streams pass
        the same generator to every per-stream matrix so their counters
        can be added together (Section 5.3: "the sketches can share the
        same random seed").
    """

    def __init__(
        self,
        s1: int,
        s2: int,
        independence: int = 4,
        seed: int = 0,
        xi: XiGenerator | None = None,
    ):
        if s1 < 1 or s2 < 1:
            raise ConfigError(f"s1 and s2 must be >= 1, got s1={s1}, s2={s2}")
        self.s1 = s1
        self.s2 = s2
        if xi is None:
            xi = XiGenerator(s1 * s2, independence=independence, seed=seed)
        elif xi.n_instances != s1 * s2:
            raise ConfigError(
                f"shared XiGenerator has {xi.n_instances} instances, "
                f"need s1*s2 = {s1 * s2}"
            )
        self.xi = xi
        self.counters = np.zeros(s1 * s2, dtype=np.int64)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, value: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``value`` to every instance."""
        self.counters += count * self.xi.xi(value)

    def delete(self, value: int, count: int = 1) -> None:
        """Remove ``count`` occurrences — the AMS deletability property."""
        self.update(value, -count)

    def update_batch(
        self,
        values: "np.ndarray | EncodedBatch",
        counts: np.ndarray | None = None,
    ) -> None:
        """Add a batch of (value, count) pairs in vectorised chunks.

        Equivalent to calling :meth:`update` per pair; the chunking keeps
        peak memory bounded while amortising numpy call overhead, which is
        what makes streaming whole trees cheap.

        ``values`` may be a plain int64 array (with optional ``counts``)
        or an :class:`~repro.core.batch.EncodedBatch`, whose ``values``
        and ``counts`` columns are used directly; the batch's residue
        column is ignored — every row updates *this* matrix, so callers
        routing across virtual streams must group first
        (:meth:`~repro.core.virtual.VirtualStreams.update_batch`).

        Memory bound: each chunk materialises one ``(n_instances,
        _CHUNK)`` int64 ξ sign block, so peak extra memory is
        ``s1 · s2 · _CHUNK · 8`` bytes — ≈ 11 MiB at the defaults
        (``s1=50, s2=7, _CHUNK=4096``) — independent of batch length.
        """
        if not isinstance(values, np.ndarray) and hasattr(values, "residues"):
            # An EncodedBatch carrier (duck-typed to avoid a circular
            # import of repro.core.batch on the hot path).
            if counts is not None:
                raise ConfigError(
                    "pass counts inside the EncodedBatch, not separately"
                )
            values, counts = values.values, values.counts
        values = np.asarray(values, dtype=np.int64)
        if counts is None:
            counts = np.ones(len(values), dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        if len(values) != len(counts):
            raise ConfigError("values and counts must have equal length")
        for start in range(0, len(values), _CHUNK):
            vs = values[start : start + _CHUNK]
            cs = counts[start : start + _CHUNK]
            signs = self.xi.xi_batch(vs)  # (n_instances, chunk)
            self.counters += signs @ cs

    def update_counts(self, counts_by_value: dict[int, int]) -> None:
        """Add a whole frequency table at once (order-independent)."""
        if not counts_by_value:
            return
        values = self.xi.to_field(counts_by_value, count=len(counts_by_value))
        counts = np.fromiter(
            counts_by_value.values(), dtype=np.int64, count=len(counts_by_value)
        )
        self.update_batch(values, counts)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _boost(self, per_instance: np.ndarray) -> float:
        """Median over ``s2`` groups of the mean over ``s1`` instances.

        Sort-based median: ``s2`` is a handful of groups, and sorting a
        tiny vector avoids :func:`numpy.median`'s per-call overhead on
        the top-k hot path.
        """
        groups = per_instance.reshape(self.s2, self.s1).mean(axis=1)
        groups.sort()
        middle = self.s2 >> 1
        if self.s2 & 1:
            return float(groups[middle])
        return float((groups[middle - 1] + groups[middle]) / 2.0)

    def estimate(self, value: int, adjust: np.ndarray | None = None) -> float:
        """Boosted estimate of the frequency of ``value``.

        ``adjust`` is an optional per-instance additive correction to the
        counters, used by the top-k strategy to temporarily "add back"
        deleted frequent values at query time (Section 5.2).
        """
        counters = self.counters if adjust is None else self.counters + adjust
        return self._boost(self.xi.xi(value) * counters)

    def estimate_batch(
        self, values: np.ndarray, adjust: np.ndarray | None = None
    ) -> np.ndarray:
        """Boosted estimates for many values at once: float64 array (m,).

        Equivalent to calling :meth:`estimate` per value; used by bulk
        top-k construction and by analyses that rank the whole domain.
        """
        values = np.asarray(values, dtype=np.int64)
        counters = self.counters if adjust is None else self.counters + adjust
        out = np.empty(len(values), dtype=np.float64)
        for start in range(0, len(values), _CHUNK):
            vs = values[start : start + _CHUNK]
            z = self.xi.xi_batch(vs) * counters[:, None]  # (S, chunk)
            grouped = z.reshape(self.s2, self.s1, -1).mean(axis=1)
            out[start : start + len(vs)] = np.median(grouped, axis=0)
        return out

    def estimate_sum(self, values, adjust: np.ndarray | None = None) -> float:
        """Boosted estimate of ``Σ_j f_{values[j]}`` for *distinct* values.

        Implements the Section 3.2 estimator ``X · Σ_j ξ_{q_j}``, whose
        variance bound ``2(t−1)·SJ(S)`` (Theorem 2) beats estimating each
        value separately and summing.
        """
        xi_sum = self.xi.xi_values(values).sum(axis=1)
        counters = self.counters if adjust is None else self.counters + adjust
        return self._boost(xi_sum * counters)

    def estimate_product(self, values, adjust: np.ndarray | None = None) -> float:
        """Boosted estimate of ``Π_j f_{values[j]}`` for *distinct* values.

        Implements the Section 4 estimator ``(X^d / d!) · Π_j ξ_{q_j}``.
        Unbiasedness requires the ξ families to be at least ``2d``-wise
        independent (Appendix C: each surviving expansion term touches up
        to ``2d`` distinct ξ variables); a :class:`~repro.errors.ConfigError`
        is raised when the generator's independence is insufficient.
        """
        values = list(values)
        degree = len(values)
        if self.xi.independence < 2 * degree:
            raise ConfigError(
                f"product of {degree} counts needs >= {2 * degree}-wise "
                f"independent xi, generator has {self.xi.independence}-wise"
            )
        xi_prod = self.xi.xi_values(values).prod(axis=1)
        counters = self.counters if adjust is None else self.counters + adjust
        x_pow = counters.astype(np.float64) ** degree
        return self._boost(x_pow / float(factorial(degree)) * xi_prod)

    def estimate_self_join_size(self, adjust: np.ndarray | None = None) -> float:
        """Boosted estimate of the sketched stream's self-join size.

        This is the estimator AMS sketches were originally built for
        (the second frequency moment ``F2 = Σ f_i²``): ``E[X²] = F2``
        for four-wise independent ξ, boosted by the same median-of-means
        scheme.  SketchTree uses it to report its *own* error bars —
        Theorem 1's bound depends on ``SJ(S)``, which the synopsis can
        thus estimate without any extra state.
        """
        counters = self.counters if adjust is None else self.counters + adjust
        squared = counters.astype(np.float64) ** 2
        return self._boost(squared)

    def per_instance(self, adjust: np.ndarray | None = None) -> np.ndarray:
        """Raw counters (plus optional adjustment) — for expression
        estimators that combine powers of X themselves."""
        return self.counters if adjust is None else self.counters + adjust

    def boost(self, per_instance: np.ndarray) -> float:
        """Public median-of-means reducer for externally built Z arrays."""
        return self._boost(np.asarray(per_instance, dtype=np.float64))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def merge(self, other: "SketchMatrix") -> "SketchMatrix":
        """Return a new matrix sketching the union of the two streams.

        Requires both matrices to share the same ξ family (same generator
        object), which is how virtual streams are combined for queries.
        """
        if other.xi is not self.xi:
            raise ConfigError("can only merge sketches sharing one XiGenerator")
        merged = SketchMatrix(self.s1, self.s2, xi=self.xi)
        merged.counters = self.counters + other.counters
        return merged

    def copy(self) -> "SketchMatrix":
        """Deep copy (counters copied, ξ family shared)."""
        clone = SketchMatrix(self.s1, self.s2, xi=self.xi)
        clone.counters = self.counters.copy()
        return clone

    @property
    def n_instances(self) -> int:
        return self.s1 * self.s2

    def memory_bytes(self) -> int:
        """Bytes held by the counters (the paper's sketch-memory unit)."""
        return self.counters.nbytes

    def __repr__(self) -> str:
        return f"SketchMatrix(s1={self.s1}, s2={self.s2})"
