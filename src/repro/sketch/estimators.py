"""Sizing formulas and variance bounds from the paper's analysis.

These functions turn the theorems of Section 3 (and the appendices) into
executable form so that experiments can size sketches from target error
``ε`` and confidence ``1 − δ``, and so that tests can check the empirical
estimator variance against the proven bounds.

All bounds are in terms of the *self-join size* ``SJ(S) = Σ_i f_i²`` of
the one-dimensional stream; :class:`SelfJoinTracker` maintains it exactly
from a frequency table (an analysis-side tool — the whole point of the
paper is that the synopsis itself never stores the table).
"""

from __future__ import annotations

from math import ceil, log2

from repro.errors import ConfigError


def s2_for_confidence(delta: float) -> int:
    """Theorem 1's ``s2 = 2·lg(1/δ)`` groups for confidence ``1 − δ``."""
    if not 0 < delta < 1:
        raise ConfigError(f"delta must be in (0, 1), got {delta}")
    return max(1, ceil(2 * log2(1 / delta)))


def s1_for_point_query(self_join_size: float, frequency: float, epsilon: float) -> int:
    """Theorem 1's ``s1 = 8·SJ(S) / (ε² f_q²)`` instances per group."""
    _check(self_join_size, frequency, epsilon)
    return max(1, ceil(8 * self_join_size / (epsilon**2 * frequency**2)))


def s1_for_sum_query(
    self_join_size: float, total_frequency: float, n_patterns: int, epsilon: float
) -> int:
    """Theorem 2's ``s1 = 16(t−1)·SJ(S) / (ε² (Σf)²)`` for a t-pattern sum."""
    _check(self_join_size, total_frequency, epsilon)
    if n_patterns < 1:
        raise ConfigError(f"n_patterns must be >= 1, got {n_patterns}")
    if n_patterns == 1:
        return s1_for_point_query(self_join_size, total_frequency, epsilon)
    return max(
        1,
        ceil(
            16 * (n_patterns - 1) * self_join_size
            / (epsilon**2 * total_frequency**2)
        ),
    )


def s1_for_sum_query_naive(
    self_join_size: float, min_frequency: float, n_patterns: int, epsilon: float
) -> int:
    """The per-pattern alternative the paper compares Theorem 2 against:
    ``s1 = 8 t²·SJ(S) / (ε² min(f)²)`` — always at least as large."""
    _check(self_join_size, min_frequency, epsilon)
    if n_patterns < 1:
        raise ConfigError(f"n_patterns must be >= 1, got {n_patterns}")
    return max(
        1,
        ceil(8 * n_patterns**2 * self_join_size / (epsilon**2 * min_frequency**2)),
    )


def variance_bound_point(self_join_size: float) -> float:
    """``Var[ξ_q X] ≤ SJ(S)`` (Equation 2)."""
    return float(self_join_size)


def variance_bound_sum(self_join_size: float, n_patterns: int) -> float:
    """``Var[X Σξ] ≤ 2(t−1)·SJ(S)`` (Equation 7)."""
    if n_patterns < 1:
        raise ConfigError(f"n_patterns must be >= 1, got {n_patterns}")
    return 2 * (n_patterns - 1) * float(self_join_size)


def variance_bound_product2(self_join_size: float, domain_size: int) -> float:
    """``Var[(X²/2!)ξξ] ≤ (1 + 2n)/4 · SJ(S)²`` (Appendix B, Eq. 17)."""
    if domain_size < 1:
        raise ConfigError(f"domain_size must be >= 1, got {domain_size}")
    return (1 + 2 * domain_size) / 4 * float(self_join_size) ** 2


def _check(self_join_size: float, frequency: float, epsilon: float) -> None:
    if self_join_size < 0:
        raise ConfigError(f"self-join size must be >= 0, got {self_join_size}")
    if frequency <= 0:
        raise ConfigError(f"frequency must be > 0, got {frequency}")
    if epsilon <= 0:
        raise ConfigError(f"epsilon must be > 0, got {epsilon}")


class SelfJoinTracker:
    """Exact online self-join size ``Σ f_i²`` of a stream of values.

    Used by analyses and tests (e.g. verifying that top-k deletion and
    virtual streams reduce the self-join size as claimed in Section 5);
    it keeps the full frequency table so it is *not* part of the
    limited-memory synopsis.
    """

    def __init__(self):
        self._counts: dict[int, int] = {}
        self._sj = 0
        self._length = 0

    def add(self, value: int, count: int = 1) -> None:
        """Account for ``count`` more occurrences (negative to remove)."""
        old = self._counts.get(value, 0)
        new = old + count
        if new < 0:
            raise ConfigError(
                f"cannot remove {-count} of value {value}: only {old} present"
            )
        self._sj += new * new - old * old
        self._length += count
        if new:
            self._counts[value] = new
        else:
            self._counts.pop(value, None)

    def add_counts(self, counts_by_value: dict[int, int]) -> None:
        for value, count in counts_by_value.items():
            self.add(value, count)

    @property
    def self_join_size(self) -> int:
        """Current ``Σ f_i²``."""
        return self._sj

    @property
    def stream_length(self) -> int:
        """Current ``Σ f_i``."""
        return self._length

    @property
    def n_distinct(self) -> int:
        return len(self._counts)

    def frequency(self, value: int) -> int:
        return self._counts.get(value, 0)

    def top(self, k: int) -> list[tuple[int, int]]:
        """The ``k`` most frequent ``(value, frequency)`` pairs."""
        import heapq

        return heapq.nlargest(k, self._counts.items(), key=lambda kv: kv[1])
