"""Exception hierarchy for the SketchTree reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish malformed input (:class:`TreeError`,
:class:`XmlParseError`, :class:`PatternError`) from misconfiguration
(:class:`ConfigError`) and unsupported queries (:class:`QueryError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TreeError(ReproError):
    """A labeled tree was malformed or an operation on it was invalid."""


class XmlParseError(TreeError):
    """The XML text could not be parsed into a labeled tree."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class CorpusParseError(TreeError):
    """A corpus file could not be parsed into labeled trees.

    Raised by the :mod:`repro.corpora` readers; carries the source
    location (``path``, 1-based ``line``, 1-based ``column``) so a bad
    line in a multi-thousand-file treebank is findable.
    """

    def __init__(
        self,
        message: str,
        path: str | None = None,
        line: int | None = None,
        column: int | None = None,
    ):
        where = []
        if path is not None:
            where.append(str(path))
        if line is not None:
            where.append(f"line {line}")
        if column is not None:
            where.append(f"column {column}")
        if where:
            message = f"{message} ({', '.join(where)})"
        super().__init__(message)
        self.path = path
        self.line = line
        self.column = column


class PatternError(ReproError):
    """A query pattern was malformed or violated a size constraint."""


class QueryError(ReproError):
    """A query could not be answered (e.g. pattern larger than ``k``)."""


class ConfigError(ReproError):
    """A configuration value was invalid or inconsistent."""


class HashingError(ReproError):
    """An integer-mapping (pairing / fingerprint) operation failed."""


class SnapshotError(ReproError):
    """A synopsis snapshot could not be written or restored.

    Restoring garbage into a synopsis silently produces wrong counts, so
    every defect a loader can detect is a refusal, not a best-effort
    repair.  The subclasses distinguish *what* is wrong so callers can
    react differently (retry an older checkpoint on corruption, upgrade
    on a version gap, reconfigure on a config mismatch).
    """


class SnapshotFormatError(SnapshotError):
    """The blob is not a snapshot, or its header/payload is malformed."""


class SnapshotVersionError(SnapshotError):
    """The snapshot's format version is not supported by this loader."""


class SnapshotIntegrityError(SnapshotError):
    """The snapshot is truncated or fails its checksum — do not trust it."""


class SnapshotConfigError(SnapshotError):
    """The snapshot's configuration does not match the expected one."""
