"""Online node-label → integer mapping.

Section 2.2 assumes ``hash(X)`` returns a unique number per label;
Section 6.1 lifts the assumption by fingerprinting the label's bit string
with the same irreducible-polynomial machinery.  Two modes are provided:

* ``"rabin"`` (default) — stateless Rabin fingerprint of the UTF-8 bytes.
  Collisions are possible but their probability is tiny for degree 31 and
  realistic label lengths; this is the paper's experimental configuration.
* ``"enumerate"`` — assign consecutive integers on first sight.  Exactly
  collision-free (matching the Section 2.2 assumption) but stateful; used
  with the exact pairing-function pipeline in tests.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hashing.rabin import RabinFingerprint

_MODES = ("rabin", "enumerate")


class LabelHasher:  # sketchlint: thread-confined
    """Maps label strings to non-negative integers, deterministically.

    Thread-confined: the enumeration cache mutates only under the owning
    encoder's critical section (see docs/concurrency.md).

    Parameters
    ----------
    mode:
        ``"rabin"`` or ``"enumerate"`` (see module docstring).
    fingerprint:
        The :class:`RabinFingerprint` to use in ``"rabin"`` mode.  When
        omitted one is constructed from ``seed``.
    seed:
        Seed for the fingerprint polynomial draw.
    """

    def __init__(
        self,
        mode: str = "rabin",
        fingerprint: RabinFingerprint | None = None,
        seed: int | None = 0,
    ):
        if mode not in _MODES:
            raise ConfigError(f"unknown label hashing mode {mode!r}; expected {_MODES}")
        self.mode = mode
        if mode == "rabin":
            self._fingerprint = fingerprint or RabinFingerprint(seed=seed)
        else:
            self._fingerprint = None
        self._cache: dict[str, int] = {}

    def __call__(self, label: str) -> int:
        """Integer for ``label`` (cached; stable for the hasher's lifetime)."""
        value = self._cache.get(label)
        if value is None:
            if self.mode == "rabin":
                value = self._fingerprint.of_str(label)
            else:
                value = len(self._cache)
            self._cache[label] = value
        return value

    @property
    def n_labels_seen(self) -> int:
        """How many distinct labels have been hashed so far."""
        return len(self._cache)

    def __repr__(self) -> str:
        return f"LabelHasher(mode={self.mode!r}, seen={len(self._cache)})"
