"""Polynomial arithmetic over GF(2), polynomials encoded as Python ints.

Bit ``i`` of the integer is the coefficient of ``x^i``; e.g. ``0b1011``
is ``x^3 + x + 1``.  These primitives back Rabin fingerprinting
(:mod:`repro.hashing.rabin`): random irreducible polynomial generation and
the irreducibility test (Rabin's criterion).
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashingError
from repro.hashing.rng import default_generator, random_bits


def gf2_degree(poly: int) -> int:
    """Degree of the polynomial; ``-1`` for the zero polynomial."""
    return poly.bit_length() - 1


def gf2_mul(a: int, b: int) -> int:
    """Carry-less (GF(2)) product of two polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def gf2_mod(a: int, m: int) -> int:
    """Remainder of ``a`` modulo ``m`` over GF(2)."""
    if m == 0:
        raise HashingError("division by the zero polynomial")
    deg_m = gf2_degree(m)
    deg_a = gf2_degree(a)
    while deg_a >= deg_m:
        a ^= m << (deg_a - deg_m)
        deg_a = gf2_degree(a)
    return a


def gf2_mulmod(a: int, b: int, m: int) -> int:
    """``(a * b) mod m`` over GF(2), reducing as it goes."""
    deg_m = gf2_degree(m)
    a = gf2_mod(a, m)
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if gf2_degree(a) >= deg_m:
            a ^= m
    return result


def gf2_gcd(a: int, b: int) -> int:
    """Greatest common divisor over GF(2) (Euclid's algorithm)."""
    while b:
        a, b = b, gf2_mod(a, b)
    return a


def _x_pow_pow2(exponent_log: int, m: int) -> int:
    """Compute ``x^(2^exponent_log) mod m`` by repeated squaring."""
    value = gf2_mod(0b10, m)  # the polynomial x
    for _ in range(exponent_log):
        value = gf2_mulmod(value, value, m)
    return value


def _prime_factors(n: int) -> list[int]:
    factors: list[int] = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(poly: int) -> bool:
    """Rabin's irreducibility test over GF(2).

    ``f`` of degree ``n`` is irreducible iff ``x^(2^n) ≡ x (mod f)`` and
    for every prime divisor ``q`` of ``n``,
    ``gcd(x^(2^(n/q)) − x, f) = 1``.
    """
    n = gf2_degree(poly)
    if n <= 0:
        return False
    if n == 1:
        return True  # x and x+1
    x = 0b10
    if _x_pow_pow2(n, poly) != gf2_mod(x, poly):
        return False
    for q in _prime_factors(n):
        h = _x_pow_pow2(n // q, poly) ^ x
        if gf2_gcd(poly, gf2_mod(h, poly)) != 1:
            return False
    return True


def random_irreducible(
    degree: int, rng: np.random.Generator | int | None = None
) -> int:
    """Draw a uniformly random irreducible polynomial of the given degree.

    As in Rabin's fingerprinting scheme: candidates of the exact degree
    (with non-zero constant term, a cheap necessary condition for
    ``degree >= 1``) are sampled until one passes the irreducibility test.
    Roughly one in ``degree`` monic polynomials is irreducible, so this
    terminates quickly.

    ``rng`` is an injectable seeded :class:`numpy.random.Generator`; an
    int is taken as a seed, and ``None`` falls back to the repository-wide
    :data:`~repro.core.config.DEFAULT_SEED` so the draw is reproducible
    run-to-run either way.
    """
    if degree < 1:
        raise HashingError(f"degree must be >= 1, got {degree}")
    if not isinstance(rng, np.random.Generator):
        rng = default_generator(rng)
    high_bit = 1 << degree
    while True:
        candidate = high_bit | random_bits(rng, degree) | 1
        if is_irreducible(candidate):
            return candidate
