"""Integer-mapping substrate: pairing functions and Rabin fingerprints.

SketchTree reduces tree-pattern counting to point-frequency estimation by
mapping each (LPS, NPS) pair to a single integer.  Two mapping functions
are provided, matching Sections 2.2 and 6.1 of the paper:

* :mod:`repro.hashing.pairing` — the exact (lossless) Cantor pairing
  function family ``PF(·)`` with inverses.  Values grow rapidly with
  sequence length; suitable for small patterns and for correctness tests.
* :mod:`repro.hashing.rabin` — Rabin fingerprints modulo a random
  irreducible polynomial over GF(2) (degree 31 by default, as in the
  paper's experiments).  Constant-size outputs with a provably small
  collision probability.

:mod:`repro.hashing.labels` maps node-label strings to integers online.
"""

from repro.hashing.gf2 import (
    gf2_degree,
    gf2_gcd,
    gf2_mod,
    gf2_mul,
    gf2_mulmod,
    is_irreducible,
    random_irreducible,
)
from repro.hashing.labels import LabelHasher
from repro.hashing.pairing import (
    pair2,
    pair_sequence,
    unpair2,
    unpair_sequence,
)
from repro.hashing.rabin import RabinFingerprint

__all__ = [
    "LabelHasher",
    "RabinFingerprint",
    "gf2_degree",
    "gf2_gcd",
    "gf2_mod",
    "gf2_mul",
    "gf2_mulmod",
    "is_irreducible",
    "pair2",
    "pair_sequence",
    "random_irreducible",
    "unpair2",
    "unpair_sequence",
]
