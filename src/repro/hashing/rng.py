"""Seeded randomness for the hashing layer.

Every random draw behind the fingerprinting machinery (irreducible
polynomials above all) must be reproducible run-to-run: the paper's
collision and accuracy guarantees are statements about a *fixed* random
choice, and a synopsis can only answer queries about a stream if both
sides drew the same polynomial.  This module is the single place the
hashing layer obtains randomness: an explicitly seeded
:class:`numpy.random.Generator`, defaulting to
:data:`repro.core.config.DEFAULT_SEED`.
"""

from __future__ import annotations

import numpy as np


def default_generator(seed: int | None = None) -> np.random.Generator:
    """A seeded :class:`numpy.random.Generator`.

    ``None`` falls back to :data:`repro.core.config.DEFAULT_SEED` rather
    than OS entropy — an unseeded draw here would silently break
    run-to-run reproducibility of every fingerprint in the system.
    """
    if seed is None:
        # Imported lazily: repro.core.__init__ pulls in the sketch stack,
        # which imports this package — a module-level import would cycle.
        from repro.core.config import DEFAULT_SEED

        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def random_bits(rng: np.random.Generator, n_bits: int) -> int:
    """A uniformly random ``n_bits``-bit integer from ``rng``.

    Assembled from 32-bit draws so the result is exact for widths beyond
    what a single ``integers`` call can return.
    """
    value = 0
    for _ in range((n_bits + 31) // 32):
        value = (value << 32) | int(rng.integers(0, 1 << 32, dtype=np.uint64))
    return value & ((1 << n_bits) - 1)
