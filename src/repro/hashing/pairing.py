"""Cantor pairing functions: lossless tuple → integer mappings.

The paper (Section 2.2) uses the pairing function

.. math::

    PF_2(x, y) = \\tfrac{1}{2}(x^2 + 2xy + y^2 + 3x + y)

extended to ``k``-tuples by left-folding: ``PF_3(x, y, z) =
PF_2(PF_2(x, y), z)``.  We implement exactly that formula (which equals the
classic Cantor pairing with its arguments swapped) together with its
inverse, so the one-to-one property can be verified directly in tests.

The paper pads variable-length tuples to a common length to keep the
mapping injective across lengths; we instead pair the tuple length in as a
final step (``PF_2(fold, k)``), which provides the same injectivity
guarantee without choosing a padding symbol.  Values grow roughly doubly
exponentially with tuple length, which is precisely why the paper switches
to Rabin fingerprints (Section 6.1) for real workloads; Python's big
integers let us keep the exact version around for validation.
"""

from __future__ import annotations

from math import isqrt
from typing import Iterable, Sequence

from repro.errors import HashingError


def pair2(x: int, y: int) -> int:
    """The paper's ``PF_2``: a bijection ``N × N → N``.

    >>> pair2(0, 0), pair2(1, 0), pair2(0, 1)
    (0, 2, 1)
    """
    if x < 0 or y < 0:
        raise HashingError(f"pairing requires non-negative integers, got ({x}, {y})")
    s = x + y
    return (s * s + 3 * x + y) // 2


def unpair2(z: int) -> tuple[int, int]:
    """Inverse of :func:`pair2`.

    With ``s = x + y``, ``pair2(x, y) = s(s+1)/2 + x``; recover ``s`` as the
    largest integer with ``s(s+1)/2 <= z``.
    """
    if z < 0:
        raise HashingError(f"cannot unpair negative value {z}")
    s = (isqrt(8 * z + 1) - 1) // 2
    x = z - s * (s + 1) // 2
    y = s - x
    if x < 0 or y < 0 or pair2(x, y) != z:
        raise HashingError(f"unpairing failed for {z}")  # pragma: no cover
    return x, y


#: Abort pairing once the accumulator exceeds this many bits.  Pairing
#: values roughly double in bit length per element, so without a guard a
#: ~20-element tuple silently demands gigabit integers (the Section 6.1
#: motivation for Rabin fingerprints) — fail fast and say so instead.
MAX_PAIRING_BITS = 1 << 20


def pair_sequence(values: Sequence[int]) -> int:
    """Map a non-empty tuple of non-negative integers to a single integer.

    Left-folds :func:`pair2` over the values and finally pairs in the
    length, making the mapping injective across tuples of *different*
    lengths as well (the role the paper assigns to padding).

    Raises :class:`~repro.errors.HashingError` when the exact value would
    exceed :data:`MAX_PAIRING_BITS` bits — use Rabin fingerprints
    (:mod:`repro.hashing.rabin`) for long sequences, as the paper does.
    """
    if not values:
        raise HashingError("cannot pair an empty sequence")
    acc = values[0]
    if acc < 0:
        raise HashingError(f"pairing requires non-negative integers, got {acc}")
    for value in values[1:]:
        acc = pair2(acc, value)
        if acc.bit_length() > MAX_PAIRING_BITS:
            raise HashingError(
                f"pairing value exceeded {MAX_PAIRING_BITS} bits after "
                f"{len(values)}-element fold; pairing grows doubly "
                f"exponentially — use Rabin fingerprints for sequences "
                f"this long (paper Section 6.1)"
            )
    return pair2(acc, len(values))


def pair_sequences(sequences: Iterable[Sequence[int]]) -> list[int]:
    """Batched :func:`pair_sequence`: one Python-int result per sequence.

    Pairing values are arbitrary-precision by design (they grow doubly
    exponentially), so there is no dtype-narrowed fast path here — the
    batch form exists so the encoder's batch pipeline has a single call
    per mapping.  Callers that need a numpy column must reduce each
    value into their target field *first* (``xi.to_field`` /
    :func:`fold_to_width`) and only then narrow to a fixed dtype;
    narrowing unreduced pairing values silently truncates (SKL101).
    """
    return [pair_sequence(values) for values in sequences]


def unpair_sequence(code: int) -> tuple[int, ...]:
    """Inverse of :func:`pair_sequence`."""
    acc, length = unpair2(code)
    if length < 1:
        raise HashingError(f"invalid sequence code {code}: length {length}")
    out: list[int] = []
    for _ in range(length - 1):
        acc, value = unpair2(acc)
        out.append(value)
    out.append(acc)
    out.reverse()
    return tuple(out)


def fold_to_width(value: int, bits: int = 61) -> int:
    """Reduce an arbitrarily large pairing value into ``bits`` bits.

    Exact pairing values can exceed any fixed word size; sketches need
    bounded integers.  This reduction (modulo the Mersenne prime
    ``2^61 − 1`` by default) may collide — which is exactly the paper's
    motivation for Rabin fingerprints — but keeps the pairing-function
    pipeline usable end to end for comparison experiments.
    """
    if bits == 61:
        modulus = (1 << 61) - 1
    elif bits == 31:
        modulus = (1 << 31) - 1
    else:
        modulus = (1 << bits) - 1
    return value % modulus
