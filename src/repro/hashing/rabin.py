"""Rabin fingerprints: bounded-size mappings for long sequences.

Section 6.1 of the paper: when the pairing-function value of a long
(LPS, NPS) tuple no longer fits a machine word, SketchTree instead treats
the concatenated sequence as a bit string — the coefficient vector of a
polynomial over GF(2) — and takes its residue modulo a random irreducible
polynomial ``p_irr`` of degree 31.  The residue fits a 32-bit word and two
distinct sequences collide with probability at most roughly
``len_bits / 2^degree`` (Broder 1993).

:class:`RabinFingerprint` implements this with a byte-fed, table-driven
reduction (the classic CRC trick), plus helpers for integer sequences and
label strings.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import HashingError
from repro.hashing.gf2 import gf2_degree, gf2_mod, is_irreducible, random_irreducible

#: Default degree used in all the paper's experiments.
DEFAULT_DEGREE = 31


class RabinFingerprint:  # sketchlint: thread-confined
    """Fingerprints of byte strings / integer sequences modulo ``p_irr``.

    Thread-confined: the lazily grown position tables are serialised by
    the owning :class:`~repro.core.encoding.PatternEncoder`'s lock; a
    fingerprint is never shared across encoders.

    Parameters
    ----------
    poly:
        An irreducible polynomial over GF(2), encoded as an int with its
        top bit at position ``degree``.  When omitted, a random irreducible
        polynomial of ``degree`` is drawn from ``seed``.
    degree:
        Degree of the modulus when ``poly`` is omitted (default 31, as in
        the paper).
    seed:
        Seed for the random polynomial draw; fingerprints are fully
        deterministic given ``(poly)`` or ``(degree, seed)``.  ``None``
        falls back to :data:`repro.core.config.DEFAULT_SEED` — there is
        deliberately no irreproducible path.
    rng:
        Alternatively, an already-seeded :class:`numpy.random.Generator`
        to draw the polynomial from (takes precedence over ``seed``).
    """

    def __init__(
        self,
        poly: int | None = None,
        degree: int = DEFAULT_DEGREE,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        if poly is None:
            poly = random_irreducible(degree, rng if rng is not None else seed)
        elif not is_irreducible(poly):
            raise HashingError(f"polynomial {poly:#x} is not irreducible")
        self.poly = poly
        self.degree = gf2_degree(poly)
        if self.degree < 8:
            raise HashingError("fingerprint degree must be at least 8")
        self._mask = (1 << self.degree) - 1
        # table[t] = (t << degree) mod poly, for the byte-at-a-time feed:
        # state' = ((state << 8) | byte) mod poly
        #        = ((state & mask_low) << 8 | byte) XOR table[state >> (degree-8)]
        self._table = tuple(gf2_mod(t << self.degree, poly) for t in range(256))
        # Lazily grown (n_shifts, 256) table for the vectorised batch
        # path: _pos_tables[s][b] = (b << 8s) mod poly.
        self._pos_tables: np.ndarray | None = None

    # -- core feeds ------------------------------------------------------
    def feed_byte(self, state: int, byte: int) -> int:
        """Advance the fingerprint state by one byte."""
        top = state >> (self.degree - 8)
        return (((state << 8) | byte) & self._mask) ^ self._table[top]

    def of_bytes(self, data: bytes, state: int = 0) -> int:
        """Fingerprint of a byte string (optionally continuing ``state``)."""
        feed = self.feed_byte
        for byte in data:
            state = feed(state, byte)
        return state

    def of_ints(self, values: Iterable[int], state: int = 0) -> int:
        """Fingerprint of a sequence of integers in ``[0, 2^32)``.

        Each value is fed as 4 big-endian bytes, so the mapping is
        prefix-free per element; callers concerned about whole-sequence
        extension attacks should use :meth:`of_sequence`, which prefixes
        the length.
        """
        feed = self.feed_byte
        for value in values:
            if not 0 <= value < (1 << 32):
                raise HashingError(f"sequence element {value} outside [0, 2^32)")
            state = feed(state, (value >> 24) & 0xFF)
            state = feed(state, (value >> 16) & 0xFF)
            state = feed(state, (value >> 8) & 0xFF)
            state = feed(state, value & 0xFF)
        return state

    def of_sequence(self, values: Sequence[int]) -> int:
        """Length-prefixed fingerprint of an integer sequence.

        This is the mapping SketchTree applies to the concatenated
        ``LPS.NPS`` encoding: the sequence length is fed first so that a
        sequence and any proper extension of it cannot share a state by
        construction alone.
        """
        state = self.of_ints((len(values),))
        return self.of_ints(values, state)

    # -- vectorised batch feed -------------------------------------------
    def _position_tables(self, n_shifts: int) -> np.ndarray:
        """``(n_shifts, 256)`` int64 table with ``T[s][b] = (b << 8s) mod p``.

        Grown on demand and cached; row ``s`` is derived from row
        ``s − 1`` by feeding one zero byte (``(v << 8) mod p``), so each
        new level costs 256 table-driven reductions.
        """
        tables = self._pos_tables
        have = 0 if tables is None else tables.shape[0]
        if have >= n_shifts:
            return tables
        grown = np.empty((n_shifts, 256), dtype=np.int64)
        if have:
            grown[:have] = tables
        else:
            # degree >= 8, so every byte is already reduced.
            grown[0] = np.arange(256, dtype=np.int64)
            have = 1
        feed = self.feed_byte
        for s in range(have, n_shifts):
            previous = grown[s - 1]
            grown[s] = [feed(int(v), 0) for v in previous]
        self._pos_tables = grown
        return grown

    def of_sequences(self, sequences: Sequence[Sequence[int]]) -> np.ndarray:
        """Length-prefixed fingerprints of many integer sequences at once.

        The vectorised counterpart of :meth:`of_sequence`: bit-identical
        results (tested), one int64 array out.  Rabin fingerprints are
        GF(2)-linear in the message, so the fingerprint of an ``L``-byte
        message is the XOR of per-byte contributions
        ``(byte_j << 8(L−1−j)) mod p``; sequences are grouped by length
        and each group resolved with ``L`` table gathers instead of
        ``4L`` Python-level byte feeds per sequence.
        """
        out = np.zeros(len(sequences), dtype=np.int64)
        if not len(sequences):
            return out
        by_length: dict[int, list[int]] = {}
        for index, seq in enumerate(sequences):
            by_length.setdefault(len(seq), []).append(index)
        for length, indices in by_length.items():
            rows = np.empty((len(indices), length + 1), dtype=np.int64)
            rows[:, 0] = length  # the of_sequence length prefix
            try:
                for r, index in enumerate(indices):
                    rows[r, 1:] = sequences[index]
            except OverflowError as exc:
                raise HashingError(
                    f"sequence element outside [0, 2^32): {exc}"
                ) from exc
            if rows.size and (rows.min() < 0 or rows.max() >= (1 << 32)):
                bad = rows[(rows < 0) | (rows >= (1 << 32))][0]
                raise HashingError(
                    f"sequence element {int(bad)} outside [0, 2^32)"
                )
            data = rows.astype(">u4").view(np.uint8)  # (m, 4·(length+1))
            n_bytes = data.shape[1]
            tables = self._position_tables(n_bytes)
            acc = np.zeros(len(indices), dtype=np.int64)
            for j in range(n_bytes):
                acc ^= tables[n_bytes - 1 - j][data[:, j]]
            out[np.asarray(indices)] = acc
        return out

    def of_str(self, text: str) -> int:
        """Fingerprint of a UTF-8 encoded string (used for node labels)."""
        return self.of_bytes(text.encode("utf-8"))

    def __repr__(self) -> str:
        return f"RabinFingerprint(degree={self.degree}, poly={self.poly:#x})"
