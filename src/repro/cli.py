"""Command-line entry point: paper experiments and snapshot operations.

Usage::

    sketchtree-experiments table1 --scale default
    sketchtree-experiments fig10 --dataset dblp --s1 75 --scale smoke
    sketchtree-experiments all --scale smoke
    sketchtree-experiments snapshot save out.sktsnap --dataset dblp --n-trees 300
    sketchtree-experiments snapshot load out.sktsnap --query "(article (author))"
    sketchtree-experiments snapshot resume ckpts/ --dataset dblp --n-trees 600
    sketchtree-experiments stats --dataset dblp --n-trees 200 --format prom
    sketchtree-experiments table1 --scale smoke --metrics-out metrics.json
    sketchtree-experiments serve --shards 4 --port 8080
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablations,
    appendix_xmark,
    cost,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    table1,
)
from repro.experiments.scale import by_name

_EXPERIMENTS = (
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "cost",
    "ablations",
    "xmark",
    "export",
    "all",
)

_DATASETS = ("treebank", "dblp", "xmark")


def _add_experiment_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="default",
        choices=("smoke", "default", "paper"),
        help="stream sizes and sweep widths (default: default)",
    )
    parser.add_argument(
        "--dataset",
        default=None,
        choices=_DATASETS,
        help="restrict dataset-parameterised experiments (default: the "
        "paper's two corpora; 'xmark' selects the appendix dataset)",
    )
    parser.add_argument(
        "--s1",
        type=int,
        default=None,
        help="override the s1 sweep with a single value (fig10/fig12)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also append all rendered tables to FILE; for the 'export' "
        "experiment, the XML output path (default <dataset>.xml)",
    )
    _add_metrics_option(parser)


def _add_metrics_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="enable runtime metrics for this run and dump the registry "
        "to FILE as JSON when it finishes (see docs/observability.md)",
    )


def _add_synopsis_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("synopsis configuration")
    group.add_argument("--s1", type=int, default=50, help="AMS instances per group")
    group.add_argument("--s2", type=int, default=7, help="median-of-means groups")
    group.add_argument("--k", type=int, default=3, help="max pattern edges")
    group.add_argument(
        "--streams", type=int, default=229, help="virtual streams (prime)"
    )
    group.add_argument(
        "--topk", type=int, default=0, help="top-k tracked per stream (0 = off)"
    )
    group.add_argument(
        "--summary",
        action="store_true",
        help="maintain the structural summary (enables * and // queries)",
    )
    group.add_argument("--seed", type=int, default=0, help="master seed")


def _add_stream_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("input stream")
    group.add_argument(
        "--dataset", default="dblp", choices=_DATASETS, help="synthetic corpus"
    )
    group.add_argument(
        "--n-trees", type=int, default=200, help="trees to stream"
    )
    group.add_argument(
        "--data-seed", type=int, default=0, help="corpus generator seed"
    )
    corpus = parser.add_argument_group(
        "real corpus input (overrides --dataset; see docs/corpora.md)"
    )
    corpus.add_argument(
        "--corpus",
        nargs="+",
        default=None,
        metavar="GLOB",
        help="stream real corpus files/globs instead of a synthetic --dataset",
    )
    corpus.add_argument(
        "--corpus-format",
        default="ptb",
        choices=("ptb", "export", "dblp-xml"),
        help="Penn-Treebank brackets, Negra export, or DBLP-style XML",
    )
    corpus.add_argument(
        "--corpus-encoding", default="utf-8", help="corpus file encoding"
    )
    corpus.add_argument(
        "--strip-functions",
        action="store_true",
        help="strip grammatical-function suffixes (NP-SBJ -> NP)",
    )
    corpus.add_argument(
        "--drop-punct",
        action="store_true",
        help="drop punctuation preterminals",
    )
    corpus.add_argument(
        "--remove-empty",
        action="store_true",
        help="drop -NONE- trace preterminals and emptied ancestors",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sketchtree-experiments",
        description="Regenerate the SketchTree paper's tables and figures "
        "on synthetic streams (see DESIGN.md for the substitutions), and "
        "save/load/resume synopsis snapshots.",
    )
    commands = parser.add_subparsers(
        dest="experiment", required=True, metavar="experiment"
    )
    for name in _EXPERIMENTS:
        _add_experiment_options(commands.add_parser(name))

    snapshot = commands.add_parser(
        "snapshot",
        help="versioned synopsis persistence (save / load / resume)",
    )
    actions = snapshot.add_subparsers(
        dest="snapshot_command", required=True, metavar="action"
    )

    save = actions.add_parser(
        "save", help="stream a corpus into a synopsis and snapshot it"
    )
    save.add_argument("path", help="snapshot file to write")
    _add_stream_options(save)
    _add_synopsis_options(save)
    _add_metrics_option(save)

    load = actions.add_parser(
        "load", help="validate a snapshot and describe (or query) it"
    )
    load.add_argument("path", help="snapshot file to read")
    load.add_argument(
        "--query",
        default=None,
        metavar="SEXPR",
        help="also estimate this ordered pattern, e.g. \"(article (author))\"",
    )

    resume = actions.add_parser(
        "resume",
        help="continue a checkpointed streaming run from its last checkpoint",
    )
    resume.add_argument("directory", help="checkpoint directory")
    resume.add_argument(
        "--every", type=int, default=100, help="checkpoint every N trees"
    )
    resume.add_argument(
        "--keep", type=int, default=3, help="checkpoints retained (keep-last-N)"
    )
    resume.add_argument(
        "--query", default=None, metavar="SEXPR", help="estimate after the run"
    )
    _add_stream_options(resume)
    _add_synopsis_options(resume)
    _add_metrics_option(resume)

    stats = commands.add_parser(
        "stats",
        help="stream a corpus with runtime metrics enabled and report the "
        "registry (Prometheus text or JSON)",
    )
    _add_stream_options(stats)
    _add_synopsis_options(stats)
    stats.add_argument(
        "--batch-trees",
        type=int,
        default=32,
        help="cross-tree micro-batch size (default 32)",
    )
    stats.add_argument(
        "--format",
        default="prom",
        choices=("prom", "json"),
        help="report format: Prometheus text exposition or JSON (default prom)",
    )
    stats.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )

    from repro.serve.app import add_serve_arguments

    serve = commands.add_parser(
        "serve",
        help="run the sharded always-on serving tier over HTTP "
        "(see docs/serving.md)",
    )
    add_serve_arguments(serve)
    return parser


# ---------------------------------------------------------------------------
# Snapshot subcommands
# ---------------------------------------------------------------------------

def _synopsis_config(args: argparse.Namespace):
    from repro.core.config import SketchTreeConfig

    return SketchTreeConfig(
        s1=args.s1,
        s2=args.s2,
        max_pattern_edges=args.k,
        n_virtual_streams=args.streams,
        topk_size=args.topk,
        maintain_summary=args.summary,
        seed=args.seed,
    )


def _dataset_stream(args: argparse.Namespace):
    if getattr(args, "corpus", None):
        from itertools import islice

        from repro.corpora import CorpusReader

        reader = CorpusReader(
            args.corpus,
            format=args.corpus_format,
            encoding=args.corpus_encoding,
            functions="remove" if args.strip_functions else None,
            punct="remove" if args.drop_punct else None,
            remove_empty=args.remove_empty,
        )
        # --n-trees caps real corpora too (0 or negative = the whole corpus).
        if args.n_trees > 0:
            return islice(reader.itertrees(), args.n_trees)
        return reader.itertrees()
    from repro.datasets import DblpGenerator, TreebankGenerator, XMarkGenerator

    generator_cls = {
        "treebank": TreebankGenerator,
        "dblp": DblpGenerator,
        "xmark": XMarkGenerator,
    }[args.dataset]
    return generator_cls(seed=args.data_seed).generate(args.n_trees)


def _describe(synopsis) -> None:
    from repro.core.snapshot import FORMAT_VERSION, config_fingerprint

    config = synopsis.config
    print(f"format version:  {FORMAT_VERSION}")
    print(f"fingerprint:     {config_fingerprint(config)[:16]}…")
    print(
        f"config:          s1={config.s1} s2={config.s2} "
        f"k={config.max_pattern_edges} streams={config.n_virtual_streams} "
        f"topk={config.topk_size} summary={config.maintain_summary} "
        f"seed={config.seed}"
    )
    print(f"trees:           {synopsis.n_trees}")
    print(f"occurrences:     {synopsis.n_values}")
    print(f"streams in use:  {synopsis.streams.n_allocated}")
    if synopsis.summary is not None:
        print(f"summary paths:   {synopsis.summary.n_paths}")


def _run_snapshot(args: argparse.Namespace) -> int:
    import time

    from repro.core.sketchtree import SketchTree
    from repro.core.snapshot import (
        CheckpointManager,
        load_snapshot,
        save_snapshot,
    )
    from repro.errors import ReproError
    from repro.obs import MetricsRegistry, write_json
    from repro.obs.registry import BYTE_BUCKETS
    from repro.stream.engine import StreamProcessor

    metrics_out = getattr(args, "metrics_out", None)
    registry = MetricsRegistry() if metrics_out else None
    try:
        if args.snapshot_command == "save":
            synopsis = SketchTree(_synopsis_config(args), metrics=registry)
            processor = StreamProcessor([synopsis], metrics=registry)
            processor.run(_dataset_stream(args))
            start = time.perf_counter()
            path = save_snapshot(synopsis, args.path)
            if registry is not None:
                registry.histogram("snapshot_save_seconds").observe(
                    time.perf_counter() - start
                )
                registry.histogram(
                    "snapshot_save_bytes", buckets=BYTE_BUCKETS
                ).observe(path.stat().st_size)
            print(f"wrote {path}")
            _describe(synopsis)
        elif args.snapshot_command == "load":
            synopsis = load_snapshot(args.path)
            print(f"loaded {args.path}")
            _describe(synopsis)
            if args.query:
                estimate = synopsis.estimate_ordered(args.query)
                print(f"estimate:        {args.query} -> {estimate:.1f}")
        else:  # resume
            manager = CheckpointManager(
                args.directory, keep_last=args.keep, metrics=registry
            )
            processor = StreamProcessor(
                [SketchTree(_synopsis_config(args), metrics=registry)],
                snapshot_every=args.every,
                checkpoints=manager,
                metrics=registry,
            )
            stats = processor.resume(_dataset_stream(args))
            synopsis = processor.consumers[0]
            if registry is not None:
                synopsis.set_metrics(registry)  # re-attach after restore
            processor.snapshot_now()
            print(
                f"resumed from {stats.resumed_from} checkpointed trees; "
                f"processed {stats.n_trees} more "
                f"({len(stats.snapshot_paths) + 1} checkpoints written)"
            )
            _describe(synopsis)
            if args.query:
                estimate = synopsis.estimate_ordered(args.query)
                print(f"estimate:        {args.query} -> {estimate:.1f}")
        if registry is not None:
            print(f"wrote metrics to {write_json(registry, metrics_out)}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.core.sketchtree import SketchTree
    from repro.errors import ReproError
    from repro.obs import MetricsRegistry, to_json_dict, to_prometheus_text
    from repro.stream.engine import StreamProcessor

    registry = MetricsRegistry()
    try:
        synopsis = SketchTree(_synopsis_config(args), metrics=registry)
        processor = StreamProcessor(
            [synopsis], batch_trees=args.batch_trees, metrics=registry
        )
        stats = processor.run(_dataset_stream(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "prom":
        report = to_prometheus_text(registry)
    else:
        report = json.dumps(to_json_dict(registry), indent=2, sort_keys=True) + "\n"
    print(
        f"processed {stats.n_trees} trees "
        f"({stats.trees_per_second:.1f} trees/s)",
        file=sys.stderr,
    )
    if args.out:
        Path(args.out).write_text(report)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(report, end="")
    return 0


# ---------------------------------------------------------------------------
# Experiment dispatch
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "serve":
        from repro.serve.app import run_from_args

        return run_from_args(args)
    if args.experiment == "stats":
        return _run_stats(args)
    if args.experiment == "snapshot":
        return _run_snapshot(args)
    scale = by_name(args.scale)
    datasets = (args.dataset,) if args.dataset else ("treebank", "dblp")
    sink = open(args.out, "a") if args.out else None

    registry = previous = None
    if args.metrics_out:
        from repro.obs import MetricsRegistry, set_default_registry

        # Experiments build their synopses internally; installing a process
        # default is how metrics reach them without threading a parameter
        # through every experiment module.
        registry = MetricsRegistry()
        previous = set_default_registry(registry)

    def emit(text: str = "") -> None:
        print(text)
        if sink is not None:
            sink.write(text + "\n")

    def run_one(name: str) -> None:
        if name == "table1":
            emit(table1.render(table1.run(scale)))
        elif name == "fig8":
            for dataset in datasets:
                emit(fig08.render(fig08.run(dataset, scale)))
                emit("")
        elif name == "fig9":
            for dataset in datasets:
                emit(fig09.render(fig09.run(dataset, scale)))
                emit("")
        elif name == "fig10":
            for dataset in datasets:
                s1_values = (
                    (args.s1,)
                    if args.s1
                    else (scale.treebank_s1 if dataset == "treebank" else scale.dblp_s1)
                )
                for s1 in s1_values:
                    emit(fig10.render(fig10.run(dataset, s1=s1, scale=scale)))
                    emit("")
        elif name == "fig11":
            for kind in ("sum", "product"):
                emit(fig11.render(fig11.run(kind, scale)))
                emit("")
        elif name == "fig12":
            for kind in ("sum", "product"):
                s1_values = (args.s1,) if args.s1 else scale.treebank_s1
                for s1 in s1_values:
                    emit(fig12.render(fig12.run(kind, s1=s1, scale=scale)))
                    emit("")
        elif name == "cost":
            for dataset in datasets:
                emit(cost.render(cost.run(dataset, scale)))
                emit("")
        elif name == "ablations":
            emit(ablations.render_virtual_streams(ablations.run_virtual_streams(scale)))
            emit("")
            emit(ablations.render_countsketch(ablations.run_countsketch(scale)))
            emit("")
            emit(ablations.render_mapping(ablations.run_mapping(scale)))
            emit("")
            emit(ablations.render_sum_estimator(ablations.run_sum_estimator(scale)))
            emit("")
            emit(ablations.render_xi_family(ablations.run_xi_family(scale)))
            emit("")
            emit(ablations.render_self_join(ablations.run_self_join(scale)))
            emit("")
            emit(
                ablations.render_false_positives(
                    ablations.run_false_positives(scale)
                )
            )
            emit("")
            emit(
                ablations.render_stream_scaling(
                    ablations.run_stream_scaling(scale)
                )
            )
            emit("")
            emit(ablations.render_query_size(ablations.run_query_size(scale)))
        elif name == "xmark":
            emit(appendix_xmark.render(appendix_xmark.run(scale=scale)))
        elif name == "export":
            from repro.experiments.data import export_xml

            for dataset in datasets:
                path = args.out or f"{dataset}.xml"
                count = export_xml(dataset, path, scale)
                print(f"wrote {count} trees to {path}")

    try:
        if args.experiment == "all":
            # 'export' writes XML files rather than tables; not part of 'all'.
            for name in _EXPERIMENTS[:-2]:
                run_one(name)
                emit("")
        else:
            run_one(args.experiment)
    finally:
        if registry is not None:
            from repro.obs import set_default_registry, write_json

            set_default_registry(previous)
            print(f"wrote metrics to {write_json(registry, args.metrics_out)}")
        if sink is not None:
            sink.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
