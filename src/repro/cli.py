"""Command-line entry point: regenerate any paper table or figure.

Usage::

    sketchtree-experiments table1 --scale default
    sketchtree-experiments fig10 --dataset dblp --s1 75 --scale smoke
    sketchtree-experiments all --scale smoke
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablations,
    appendix_xmark,
    cost,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    table1,
)
from repro.experiments.scale import by_name

_EXPERIMENTS = (
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "cost",
    "ablations",
    "xmark",
    "export",
    "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sketchtree-experiments",
        description="Regenerate the SketchTree paper's tables and figures "
        "on synthetic streams (see DESIGN.md for the substitutions).",
    )
    parser.add_argument("experiment", choices=_EXPERIMENTS)
    parser.add_argument(
        "--scale",
        default="default",
        choices=("smoke", "default", "paper"),
        help="stream sizes and sweep widths (default: default)",
    )
    parser.add_argument(
        "--dataset",
        default=None,
        choices=("treebank", "dblp", "xmark"),
        help="restrict dataset-parameterised experiments (default: the "
        "paper's two corpora; 'xmark' selects the appendix dataset)",
    )
    parser.add_argument(
        "--s1",
        type=int,
        default=None,
        help="override the s1 sweep with a single value (fig10/fig12)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also append all rendered tables to FILE; for the 'export' "
        "experiment, the XML output path (default <dataset>.xml)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = by_name(args.scale)
    datasets = (args.dataset,) if args.dataset else ("treebank", "dblp")
    sink = open(args.out, "a") if args.out else None

    def emit(text: str = "") -> None:
        print(text)
        if sink is not None:
            sink.write(text + "\n")

    def run_one(name: str) -> None:
        if name == "table1":
            emit(table1.render(table1.run(scale)))
        elif name == "fig8":
            for dataset in datasets:
                emit(fig08.render(fig08.run(dataset, scale)))
                emit("")
        elif name == "fig9":
            for dataset in datasets:
                emit(fig09.render(fig09.run(dataset, scale)))
                emit("")
        elif name == "fig10":
            for dataset in datasets:
                s1_values = (
                    (args.s1,)
                    if args.s1
                    else (scale.treebank_s1 if dataset == "treebank" else scale.dblp_s1)
                )
                for s1 in s1_values:
                    emit(fig10.render(fig10.run(dataset, s1=s1, scale=scale)))
                    emit("")
        elif name == "fig11":
            for kind in ("sum", "product"):
                emit(fig11.render(fig11.run(kind, scale)))
                emit("")
        elif name == "fig12":
            for kind in ("sum", "product"):
                s1_values = (args.s1,) if args.s1 else scale.treebank_s1
                for s1 in s1_values:
                    emit(fig12.render(fig12.run(kind, s1=s1, scale=scale)))
                    emit("")
        elif name == "cost":
            for dataset in datasets:
                emit(cost.render(cost.run(dataset, scale)))
                emit("")
        elif name == "ablations":
            emit(ablations.render_virtual_streams(ablations.run_virtual_streams(scale)))
            emit("")
            emit(ablations.render_countsketch(ablations.run_countsketch(scale)))
            emit("")
            emit(ablations.render_mapping(ablations.run_mapping(scale)))
            emit("")
            emit(ablations.render_sum_estimator(ablations.run_sum_estimator(scale)))
            emit("")
            emit(ablations.render_xi_family(ablations.run_xi_family(scale)))
            emit("")
            emit(ablations.render_self_join(ablations.run_self_join(scale)))
            emit("")
            emit(
                ablations.render_false_positives(
                    ablations.run_false_positives(scale)
                )
            )
            emit("")
            emit(
                ablations.render_stream_scaling(
                    ablations.run_stream_scaling(scale)
                )
            )
            emit("")
            emit(ablations.render_query_size(ablations.run_query_size(scale)))
        elif name == "xmark":
            emit(appendix_xmark.render(appendix_xmark.run(scale=scale)))
        elif name == "export":
            from repro.experiments.data import export_xml

            for dataset in datasets:
                path = args.out or f"{dataset}.xml"
                count = export_xml(dataset, path, scale)
                print(f"wrote {count} trees to {path}")

    try:
        if args.experiment == "all":
            # 'export' writes XML files rather than tables; not part of 'all'.
            for name in _EXPERIMENTS[:-2]:
                run_one(name)
                emit("")
        else:
            run_one(args.experiment)
    finally:
        if sink is not None:
            sink.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
