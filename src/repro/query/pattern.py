"""Helpers over nested-tuple query patterns.

A query pattern is an ordered labeled tree in the canonical nested-tuple
form ``(label, (child, …))`` — the same form EnumTree emits, so a query
matches the stream exactly when the identical tuple was enumerated.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable

from repro.errors import PatternError
from repro.trees.builders import from_sexpr
from repro.trees.tree import Nested


def validate_pattern(pattern: Nested) -> None:
    """Raise :class:`~repro.errors.PatternError` unless ``pattern`` is a
    well-formed nested tuple with non-empty string labels."""
    stack = [pattern]
    while stack:
        node = stack.pop()
        ok = (
            isinstance(node, tuple)
            and len(node) == 2
            and isinstance(node[0], str)
            and node[0]
            and isinstance(node[1], tuple)
        )
        if not ok:
            raise PatternError(f"malformed pattern node: {node!r}")
        stack.extend(node[1])


def pattern_nodes(pattern: Nested) -> int:
    """Number of nodes in the pattern."""
    count = 0
    stack = [pattern]
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(node[1])
    return count


def pattern_edges(pattern: Nested) -> int:
    """Number of edges in the pattern (``nodes − 1``)."""
    return pattern_nodes(pattern) - 1


def pattern_from_sexpr(text: str) -> Nested:
    """Parse ``"(A (B) (C))"`` into a nested-tuple pattern."""
    return from_sexpr(text).to_nested()


def arrangements(pattern: Nested, limit: int | None = 10_000) -> set[Nested]:
    """All *distinct* ordered arrangements of an unordered pattern.

    Section 3.3: ``COUNT(Q)`` is the sum of ``COUNT_ord`` over the
    distinct ordered tree patterns obtained by permuting children at every
    node.  Identical sibling subtrees make some permutations coincide;
    returning a set deduplicates them, which is what keeps the Theorem 2
    estimator applicable (it requires *distinct* patterns).

    The result size is bounded by the product of factorials of fanouts,
    so bushy asymmetric patterns explode combinatorially; ``limit``
    (default 10,000) raises :class:`~repro.errors.PatternError` instead
    of silently consuming memory.  Pass ``limit=None`` to disable.
    """
    validate_pattern(pattern)
    out = _arrangements(pattern, limit)
    return out


def _arrangements(pattern: Nested, limit: int | None) -> set[Nested]:
    label, children = pattern
    if not children:
        return {pattern}
    child_sets = [_arrangements(child, limit) for child in children]
    out: set[Nested] = set()
    for order in permutations(range(len(children))):
        _combine(label, [child_sets[i] for i in order], (), out)
        if limit is not None and len(out) > limit:
            raise PatternError(
                f"unordered pattern has more than {limit} distinct ordered "
                f"arrangements; estimate them in batches or raise the limit"
            )
    return out


def _combine(
    label: str, option_sets: list[set[Nested]], prefix: tuple, out: set[Nested]
) -> None:
    if not option_sets:
        out.add((label, prefix))
        return
    for option in option_sets[0]:
        _combine(label, option_sets[1:], prefix + (option,), out)


#: Separator for OR predicates in labels, as in the paper's ``VBD|VBP|VBZ``.
OR_SEPARATOR = "|"


def expand_or_labels(pattern: Nested) -> list[Nested]:
    """Expand OR predicates into a list of distinct plain patterns.

    Example 5 of the paper: a node labeled ``"VBD|VBP|VBZ"`` stands for
    three queries, one per operand; the count of the OR query is the sum
    of the counts of the expanded queries.  Expansion is cartesian across
    all OR nodes.  Duplicate operands within one label are deduplicated so
    the result patterns stay distinct (a Theorem 2 requirement).
    """
    validate_pattern(pattern)
    return list(_expand(pattern))


def _expand(pattern: Nested) -> list[Nested]:
    label, children = pattern
    labels = list(dict.fromkeys(label.split(OR_SEPARATOR)))  # dedup, keep order
    if any(not part for part in labels):
        raise PatternError(f"empty OR operand in label {label!r}")
    child_options = [_expand(child) for child in children]
    out: list[Nested] = []
    for lab in labels:
        _combine_lists(lab, child_options, (), out)
    # Cartesian expansion of distinct operands cannot produce duplicates,
    # but guard anyway so downstream sum estimators stay sound.
    return list(dict.fromkeys(out))


def _combine_lists(
    label: str, option_lists: list[list[Nested]], prefix: tuple, out: list[Nested]
) -> None:
    if not option_lists:
        out.append((label, prefix))
        return
    for option in option_lists[0]:
        _combine_lists(label, option_lists[1:], prefix + (option,), out)
