"""Exact tree-pattern embedding counts on a single tree.

The ground-truth oracle: ``COUNT_ord(Q)`` over a stream equals the sum of
:func:`count_ordered` over its trees, and (by construction) also equals
the multiplicity of ``Q`` in the EnumTree output — the test suite checks
both identities against each other.

Semantics (Section 2.1 of the paper): every edge of ``Q`` is a
parent-child constraint; an *ordered* embedding maps the children of each
query node to distinct children of the image, preserving sibling order; an
*unordered* count sums the ordered counts of all distinct arrangements of
``Q`` (Section 3.3).  These are occurrence counts of the whole pattern,
deliberately different from XPath's target-node counts.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

from repro.query.pattern import arrangements, validate_pattern
from repro.trees.tree import LabeledTree, Nested


def count_ordered(tree: LabeledTree, pattern: Nested) -> int:
    """Number of ordered embeddings of ``pattern`` in ``tree``.

    Dynamic program: ``emb(q, v)`` is the number of embeddings of the
    query subtree at ``q`` that map ``q`` to data node ``v``; the children
    of ``q`` must map, in order, to a (not necessarily contiguous)
    increasing subsequence of ``v``'s children, counted with the classic
    sequence-alignment recurrence.  ``COUNT_ord`` sums ``emb(root, v)``
    over all data nodes ``v``.
    """
    validate_pattern(pattern)

    @lru_cache(maxsize=None)
    def emb(q: Nested, v: int) -> int:
        q_label, q_children = q
        if tree.label_of(v) != q_label:
            return 0
        if not q_children:
            return 1
        v_children = tree.children_of(v)
        m, f = len(q_children), len(v_children)
        if m > f:
            return 0
        # ways[i][j]: ways to map the first i query children into the
        # first j data children (order preserved).
        ways = [[0] * (f + 1) for _ in range(m + 1)]
        ways[0] = [1] * (f + 1)
        for i in range(1, m + 1):
            row, prev = ways[i], ways[i - 1]
            qc = q_children[i - 1]
            for j in range(i, f + 1):
                row[j] = row[j - 1] + prev[j - 1] * emb(qc, v_children[j - 1])
        return ways[m][f]

    total = sum(emb(pattern, v) for v in tree.iter_postorder())
    emb.cache_clear()
    return total


def count_unordered(tree: LabeledTree, pattern: Nested) -> int:
    """Number of unordered matches: ``Σ count_ordered`` over the distinct
    ordered arrangements of ``pattern`` (the paper's Section 3.3
    definition of ``COUNT(Q)``)."""
    return sum(count_ordered(tree, arrangement) for arrangement in arrangements(pattern))


def iter_ordered_embeddings(tree: LabeledTree, pattern: Nested):
    """Yield every ordered embedding as a query→data node mapping.

    Each embedding is a tuple of data postorder numbers listed in the
    *preorder* of the query pattern (root first); its length equals the
    pattern's node count.  ``len(list(...)) == count_ordered(...)`` by
    construction — the enumerative counterpart of the counting DP, used
    for debugging, result explanation, and as another oracle in tests.
    """
    validate_pattern(pattern)

    def assignments(q: Nested, v: int):
        """Yield tuples of data nodes covering the query subtree at q→v."""
        q_label, q_children = q
        if tree.label_of(v) != q_label:
            return
        if not q_children:
            yield (v,)
            return
        v_children = tree.children_of(v)

        def choose(q_index: int, v_index: int):
            if q_index == len(q_children):
                yield ()
                return
            # Map query child q_index to some data child >= v_index.
            for position in range(v_index, len(v_children)):
                child = v_children[position]
                for head in assignments(q_children[q_index], child):
                    for tail in choose(q_index + 1, position + 1):
                        yield head + tail

        for body in choose(0, 0):
            yield (v,) + body

    for v in tree.iter_postorder():
        yield from assignments(pattern, v)


def count_ordered_in_stream(trees: Iterable[LabeledTree], pattern: Nested) -> int:
    """``COUNT_ord`` accumulated over an iterable of trees."""
    return sum(count_ordered(tree, pattern) for tree in trees)


def count_unordered_in_stream(trees: Iterable[LabeledTree], pattern: Nested) -> int:
    """``COUNT`` accumulated over an iterable of trees."""
    arrs = arrangements(pattern)
    return sum(count_ordered(tree, arr) for tree in trees for arr in arrs)
