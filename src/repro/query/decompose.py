"""Bounding counts of patterns larger than the enumeration limit ``k``.

The paper's stated future work: "counting tree patterns of size larger
than k".  While an unbiased estimate is impossible from a k-bounded
synopsis (the information is simply not sketched), a *sound upper bound*
is: every occurrence of a pattern ``Q`` contains an occurrence of each
connected sub-pattern of ``Q``, so

    COUNT_ord(Q)  ≤  min over sub-patterns Q' of Q with ≤ k edges
                     of COUNT_ord(Q')

and the tightest such bound uses every maximal (exactly-k-edge, when
possible) sub-pattern.  :func:`subpatterns` enumerates the distinct
connected sub-patterns of a query (EnumTree applied to the *query*
itself — the machinery is already here), and
:func:`estimate_upper_bound` takes the minimum of their estimates.

Caveats, stated plainly:

* the bound is one-sided; it certifies "Q occurs at most ~N times" and
  in particular "Q (almost) does not occur" when some sub-pattern is
  rare, but says nothing tight when all sub-patterns are common;
* sub-pattern estimates are themselves approximate, so the bound holds
  up to the estimator's error; using ``max(0, estimate)`` keeps it
  non-negative.
"""

from __future__ import annotations

from repro.enumtree.enumerate import enumerate_patterns
from repro.errors import QueryError
from repro.query.pattern import pattern_edges, validate_pattern
from repro.trees.builders import from_nested
from repro.trees.tree import Nested


def subpatterns(pattern: Nested, k: int, only_maximal: bool = True) -> list[Nested]:
    """Distinct connected sub-patterns of ``pattern`` with 1..k edges.

    With ``only_maximal`` (default), only sub-patterns with exactly
    ``min(k, |pattern|)`` edges are returned — smaller ones can only
    give looser bounds, since every occurrence of a larger sub-pattern
    is also one of its own sub-patterns.
    """
    validate_pattern(pattern)
    edges = pattern_edges(pattern)
    if edges < 1:
        raise QueryError("single-node patterns have no sub-patterns")
    size = min(k, edges)
    tree = from_nested(pattern)
    found = enumerate_patterns(tree, size)
    if only_maximal:
        found = [p for p in found if pattern_edges(p) == size]
    return list(dict.fromkeys(found))


def estimate_upper_bound(synopsis, pattern: Nested) -> float:
    """Sound (one-sided) bound on ``COUNT_ord`` of an oversized pattern.

    ``synopsis`` is a :class:`~repro.core.sketchtree.SketchTree`; the
    pattern may exceed its ``max_pattern_edges``.  For patterns within
    ``k`` this degrades gracefully to the plain estimate (the unique
    maximal sub-pattern of a within-k pattern is the pattern itself).
    """
    k = synopsis.config.max_pattern_edges
    candidates = subpatterns(pattern, k)
    assert candidates  # a >=1-edge pattern always has k-edge sub-patterns
    return min(
        max(0.0, synopsis.estimate_ordered(candidate))
        for candidate in candidates
    )
