"""Online structural summary and ``*`` / ``//`` query resolution.

Section 6.2 of the paper: SketchTree itself only counts parent-child
patterns, but when a structural summary of the data can be maintained in
limited space, queries with wildcard nodes (``*``) and ancestor-descendant
edges (``//``) can be *resolved* into a set of distinct parent-child-only
patterns whose total frequency equals the original query's frequency —
which Theorem 2 already knows how to estimate.

The summary here is a dataguide-style trie: one node per distinct
root-to-node *label path* occurring in the stream, built incrementally as
trees arrive.  Its size is bounded by the number of distinct label paths,
which for real XML is tiny compared to the data (the usual dataguide
argument).

Queries are expressed with :class:`QueryNode`: a label (``"*"`` allowed),
children, and per-child edge kind (``"child"`` or ``"descendant"``).
Resolution walks the summary, materialising the concrete labels along
every possible descendant path, exactly as the paper's Figure 7 resolves
``A//C`` into ``A/C`` and ``A/B/C``.

Caveat (inherited from the paper): for patterns with *multiple* branches
under a ``//``, occurrences in which branches share interior nodes are
counted per resolved pattern; the paper's "sum of frequencies" identity is
exact for the single-branch resolutions it presents, and we keep the same
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import PatternError, QueryError
from repro.trees.tree import LabeledTree, Nested

WILDCARD = "*"

_EDGE_KINDS = ("child", "descendant")


@dataclass(frozen=True)
class QueryNode:
    """One node of an extended query (``*`` labels, ``//`` edges).

    ``edge`` describes the edge *above* this node: ``"child"`` (``/``) or
    ``"descendant"`` (``//``).  The root's ``edge`` is ignored.
    """

    label: str
    children: tuple["QueryNode", ...] = ()
    edge: str = "child"

    def __post_init__(self):
        if not self.label:
            raise PatternError("query node label must be non-empty")
        if self.edge not in _EDGE_KINDS:
            raise PatternError(f"unknown edge kind {self.edge!r}")

    @classmethod
    def from_sexpr(cls, text: str) -> "QueryNode":
        """Parse ``"(A (//B (*)) (C))"``: a ``//`` prefix on a label marks
        a descendant edge; a bare ``*`` is a wildcard node."""
        from repro.trees.builders import from_sexpr

        tree = from_sexpr(text)

        def convert(num: int) -> "QueryNode":
            label = tree.label_of(num)
            edge = "child"
            if label.startswith("//"):
                label, edge = label[2:], "descendant"
                if not label:
                    raise PatternError("'//' must prefix a label or '*'")
            kids = tuple(convert(c) for c in tree.children_of(num))
            return cls(label, kids, edge)

        return convert(tree.root)

    def to_xpath(self) -> str:
        """Render back into the XPath subset of :mod:`repro.query.xpath`.

        The first child continues the path (``/`` or ``//``); remaining
        children become predicates.  ``parse_xpath(node.to_xpath())``
        reproduces an equivalent query (round-trip property in tests) up
        to the representation choice of path-vs-predicate for the first
        child.
        """
        return self._render(top=True)

    def _render(self, top: bool) -> str:
        out = self.label
        children = self.children
        if not children:
            return out
        # All but the last child render as predicates; the last continues
        # the path, matching how the parser builds chains.
        for child in children[:-1]:
            prefix = "//" if child.edge == "descendant" else ""
            out += f"[{prefix}{child._render(top=False)}]"
        last = children[-1]
        axis = "//" if last.edge == "descendant" else "/"
        return out + axis + last._render(top=False)

    def is_plain(self) -> bool:
        """True when the query uses no wildcards and no descendant edges."""
        if self.label == WILDCARD:
            return False
        return all(c.edge == "child" and c.is_plain() for c in self.children)

    def to_pattern(self) -> Nested:
        """Convert a plain query to a nested-tuple pattern."""
        if self.label == WILDCARD:
            raise QueryError("wildcard query cannot become a plain pattern")
        kids = []
        for child in self.children:
            if child.edge != "child":
                raise QueryError("descendant edge cannot become a plain pattern")
            kids.append(child.to_pattern())
        return (self.label, tuple(kids))


class _TrieNode:
    __slots__ = ("label", "children")

    def __init__(self, label: str):
        self.label = label
        self.children: dict[str, _TrieNode] = {}


class StructuralSummary:  # sketchlint: single-writer
    """A dataguide: the trie of distinct root-to-node label paths.

    Build it online with :meth:`add_tree` as the stream flows, then call
    :meth:`resolve` to turn an extended query into the set of distinct
    parent-child patterns whose counts sum to the query's count.

    Single-writer: the ingest thread owns all trie mutation; query
    threads only read resolved paths (see docs/concurrency.md).
    """

    def __init__(self):
        self._roots: dict[str, _TrieNode] = {}
        self._n_paths = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_tree(self, tree: LabeledTree) -> None:
        """Fold one tree's label paths into the summary."""
        root_label = tree.label_of(tree.root)
        node = self._roots.get(root_label)
        if node is None:
            node = self._roots[root_label] = _TrieNode(root_label)
            self._n_paths += 1
        # Walk the tree top-down, tracking the matching trie node.
        stack = [(tree.root, node)]
        while stack:
            data_num, trie = stack.pop()
            for kid in tree.children_of(data_num):
                label = tree.label_of(kid)
                child = trie.children.get(label)
                if child is None:
                    child = trie.children[label] = _TrieNode(label)
                    self._n_paths += 1
                stack.append((kid, child))

    def add_trees(self, trees: Iterable[LabeledTree]) -> None:
        for tree in trees:
            self.add_tree(tree)

    @property
    def n_paths(self) -> int:
        """Number of distinct label paths recorded (the summary's size)."""
        return self._n_paths

    # ------------------------------------------------------------------
    # Persistence and merging
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, dict]:
        """JSON-serialisable form: nested label → children mappings.

        Each trie node becomes the dict of its children keyed by label
        (the node's own label is its key in the parent); the result maps
        root labels to their subtrees.  Round-trips via :meth:`from_dict`.
        """
        out: dict[str, dict] = {}
        stack: list[tuple[_TrieNode, dict[str, dict]]] = []
        for label, node in self._roots.items():
            packed: dict[str, dict] = {}
            out[label] = packed
            stack.append((node, packed))
        while stack:
            node, packed = stack.pop()
            for label, child in node.children.items():
                child_packed: dict[str, dict] = {}
                packed[label] = child_packed
                stack.append((child, child_packed))
        return out

    @classmethod
    def from_dict(cls, data: dict[str, dict]) -> "StructuralSummary":
        """Rebuild a summary serialised with :meth:`to_dict`.

        Raises :class:`~repro.errors.PatternError` when the mapping is
        not of the nested ``{label: {label: ...}}`` shape.
        """
        summary = cls()
        if not isinstance(data, dict):
            raise PatternError(
                f"summary must be a mapping, got {type(data).__name__}"
            )
        stack: list[tuple[dict[str, _TrieNode], dict]] = [(summary._roots, data)]
        while stack:
            children, packed = stack.pop()
            for label, sub in packed.items():
                if not isinstance(label, str) or not label:
                    raise PatternError(
                        f"summary labels must be non-empty strings, got {label!r}"
                    )
                if not isinstance(sub, dict):
                    raise PatternError(
                        f"summary subtree for {label!r} must be a mapping, "
                        f"got {type(sub).__name__}"
                    )
                node = children[label] = _TrieNode(label)
                summary._n_paths += 1
                stack.append((node.children, sub))
        return summary

    def update(self, other: "StructuralSummary") -> None:
        """Fold every label path of ``other`` into this summary in place.

        The dataguide of a union of streams is the union of the tries, so
        after updating, this summary resolves queries exactly as if it
        had seen both streams' trees — the merge the distributed-ingest
        scenario needs.
        """
        stack: list[tuple[dict[str, _TrieNode], _TrieNode]] = []
        for label, theirs in other._roots.items():
            mine = self._roots.get(label)
            if mine is None:
                mine = self._roots[label] = _TrieNode(label)
                self._n_paths += 1
            stack.append((mine.children, theirs))
        while stack:
            children, theirs = stack.pop()
            for label, their_child in theirs.children.items():
                my_child = children.get(label)
                if my_child is None:
                    my_child = children[label] = _TrieNode(label)
                    self._n_paths += 1
                stack.append((my_child.children, their_child))

    def merge(self, other: "StructuralSummary") -> "StructuralSummary":
        """A new summary holding the union of both tries (inputs unchanged)."""
        merged = StructuralSummary.from_dict(self.to_dict())
        merged.update(other)
        return merged

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self, query: QueryNode, max_edges: int | None = None
    ) -> set[Nested]:
        """Resolve a ``*`` / ``//`` query into distinct plain patterns.

        Every returned pattern uses only parent-child edges and concrete
        labels, and is consistent with the summary (so patterns the data
        cannot contain are never produced).  ``max_edges`` rejects
        resolutions that exceed SketchTree's enumeration bound ``k`` —
        the paper's stated applicability condition — by raising
        :class:`~repro.errors.QueryError`.
        """
        out: set[Nested] = set()
        starts: list[_TrieNode] = []
        seen: set[int] = set()
        for root in self._roots.values():
            for node in self._iter_trie(root):
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if query.label == WILDCARD or node.label == query.label:
                    starts.append(node)
        for start in starts:
            out.update(self._expand(query, start))
        if max_edges is not None:
            from repro.query.pattern import pattern_edges

            oversize = [p for p in out if pattern_edges(p) > max_edges]
            if oversize:
                raise QueryError(
                    f"query resolves to {len(oversize)} pattern(s) larger than "
                    f"k={max_edges}; the paper's simple-sum technique does not "
                    f"apply (Section 6.2)"
                )
        return out

    @staticmethod
    def _iter_trie(root: _TrieNode):
        stack = [root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def _expand(self, query: QueryNode, trie: _TrieNode) -> set[Nested]:
        """Concrete patterns for ``query`` anchored at summary node ``trie``."""
        label = trie.label  # wildcard resolved to the concrete label
        child_option_sets: list[set[Nested]] = []
        for q_child in query.children:
            options: set[Nested] = set()
            if q_child.edge == "child":
                for t_child in trie.children.values():
                    if q_child.label in (WILDCARD, t_child.label):
                        options.update(self._expand(q_child, t_child))
            else:  # descendant: materialise every interior label chain
                for chain, t_node in self._descendants(trie):
                    if q_child.label in (WILDCARD, t_node.label):
                        for sub in self._expand(q_child, t_node):
                            options.add(_wrap_chain(chain, sub))
            if not options:
                return set()  # this branch cannot occur in the data
            child_option_sets.append(options)
        out: set[Nested] = set()
        _product(label, child_option_sets, (), out)
        return out

    def _descendants(self, trie: _TrieNode):
        """Yield ``(interior_label_chain, node)`` for each proper descendant.

        The chain holds the labels strictly between ``trie`` and ``node``
        (empty for a direct child), which the resolution must materialise
        as real pattern nodes.
        """
        stack: list[tuple[tuple[str, ...], _TrieNode]] = [
            ((), child) for child in trie.children.values()
        ]
        while stack:
            chain, node = stack.pop()
            yield chain, node
            for child in node.children.values():
                stack.append((chain + (node.label,), child))


def _wrap_chain(chain: tuple[str, ...], pattern: Nested) -> Nested:
    """Wrap ``pattern`` in a chain of single-child interior nodes."""
    for label in reversed(chain):
        pattern = (label, (pattern,))
    return pattern


def _product(
    label: str, option_sets: list[set[Nested]], prefix: tuple, out: set[Nested]
) -> None:
    if not option_sets:
        out.add((label, prefix))
        return
    for option in option_sets[0]:
        _product(label, option_sets[1:], prefix + (option,), out)
