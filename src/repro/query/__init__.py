"""Query patterns, exact matching, and the structural-summary extension.

* :mod:`repro.query.pattern` — helpers over nested-tuple query patterns:
  size/validation, the distinct ordered arrangements of an unordered
  pattern (Section 3.3), OR-predicate expansion (Example 5), and parsing
  from s-expressions.
* :mod:`repro.query.matching` — exact ordered/unordered embedding counts
  on a single tree, used as the ground-truth oracle for every experiment.
* :mod:`repro.query.summary` — an online dataguide-style structural
  summary and the resolution of ``*`` and ``//`` queries into sets of
  parent-child-only patterns (Section 6.2).
"""

from repro.query.decompose import estimate_upper_bound, subpatterns
from repro.query.matching import (
    count_ordered,
    count_unordered,
    iter_ordered_embeddings,
)
from repro.query.pattern import (
    arrangements,
    expand_or_labels,
    pattern_edges,
    pattern_from_sexpr,
    pattern_nodes,
    validate_pattern,
)
from repro.query.summary import QueryNode, StructuralSummary
from repro.query.xpath import parse_xpath

__all__ = [
    "QueryNode",
    "StructuralSummary",
    "parse_xpath",
    "arrangements",
    "count_ordered",
    "count_unordered",
    "estimate_upper_bound",
    "expand_or_labels",
    "iter_ordered_embeddings",
    "subpatterns",
    "pattern_edges",
    "pattern_from_sexpr",
    "pattern_nodes",
    "validate_pattern",
]
