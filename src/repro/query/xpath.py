"""A small XPath-subset front end for SketchTree queries.

The paper positions its query semantics relative to XPath (Section 2.1:
``COUNT(//A[B]/C)`` vs the pattern count of ``A(B, C)``), and its
Section 6.2 extension mirrors XPath's ``*`` and ``//``.  This module
parses the corresponding XPath fragment into the library's
:class:`~repro.query.summary.QueryNode` form:

* location steps separated by ``/`` (child) and ``//`` (descendant);
* name tests, ``*`` wildcards, and ``text()=``-free value tests written
  as plain names (values are just labels in this model);
* predicates ``[...]`` holding a relative path, possibly with ``|``
  OR-alternatives over names (paper Example 5's ``VBD|VBP|VBZ``);
* a leading ``/`` or ``//`` (absolute vs anywhere; SketchTree patterns
  match anywhere, so a leading ``/`` restricts nothing and a leading
  ``//`` is the default — both are accepted and ignored, documented).

Important semantic note (Section 2.1): SketchTree counts *pattern
occurrences*, XPath counts *target nodes*.  ``parse_xpath`` converts the
syntax only; the count returned for the converted query is SketchTree's
occurrence count, e.g. ``COUNT(Q) = 5`` vs XPath's 4 in the paper's
Figure 1 discussion.

Grammar (EBNF)::

    query      = ["/" | "//"] step { ("/" | "//") step }
    step       = name-test { predicate }
    name-test  = NAME ("|" NAME)* | "*"
    predicate  = "[" query "]"
"""

from __future__ import annotations

from repro.errors import PatternError
from repro.query.summary import QueryNode

_AXIS_TOKENS = ("//", "/")


def parse_xpath(text: str) -> QueryNode:
    """Parse an XPath-subset expression into a :class:`QueryNode`.

    >>> q = parse_xpath("A[B]/C")
    >>> q.label, [c.label for c in q.children]
    ('A', ['B', 'C'])
    >>> parse_xpath("A//C").children[0].edge
    'descendant'
    """
    parser = _XPathParser(text)
    query = parser.parse_query()
    parser.expect_end()
    return query


class _XPathParser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- helpers ---------------------------------------------------------
    def _peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise PatternError("unexpected end of XPath expression")
        self.pos += 1
        return token

    def expect_end(self) -> None:
        if self._peek() is not None:
            raise PatternError(
                f"trailing tokens in XPath expression: {self.tokens[self.pos:]!r}"
            )

    # -- grammar ----------------------------------------------------------
    def parse_query(self, in_predicate: bool = False) -> QueryNode:
        first_edge = "child"
        if self._peek() in _AXIS_TOKENS:
            axis = self._take()
            if in_predicate:
                # A[//B]: B is a descendant of the context node A.  A
                # root-anchored A[/B] has no meaning in this model.
                if axis == "/":
                    raise PatternError(
                        "absolute paths inside predicates are not supported"
                    )
                first_edge = "descendant"
            # At the top level a leading / or // anchors nothing extra:
            # SketchTree patterns match anywhere.
        root = self._parse_step(first_edge)
        current = root
        while self._peek() in _AXIS_TOKENS:
            axis = self._take()
            child_edge = "descendant" if axis == "//" else "child"
            child = self._parse_step(child_edge)
            current.children.append(child)
            current = child
        return _rebuild(root)

    def _parse_step(self, edge: str) -> "_MutableStep":
        token = self._take()
        if token in ("/", "//", "[", "]", "|"):
            raise PatternError(f"expected a name test, got {token!r}")
        label = token
        while self._peek() == "|":
            self._take()
            label += "|" + self._take()
        step = _MutableStep(label, edge)
        while self._peek() == "[":
            self._take()
            predicate = self.parse_query(in_predicate=True)
            if self._peek() != "]":
                raise PatternError("unterminated predicate: missing ']'")
            self._take()
            step.children.append(_as_mutable(predicate))
        return step


class _MutableStep:
    """Builder node: QueryNode is frozen, so assemble mutably first."""

    __slots__ = ("label", "edge", "children")

    def __init__(self, label: str, edge: str):
        self.label = label
        self.edge = edge
        self.children: list[_MutableStep] = []


def _as_mutable(node: QueryNode) -> _MutableStep:
    step = _MutableStep(node.label, node.edge)
    step.children = [_as_mutable(child) for child in node.children]
    return step


def _rebuild(step: _MutableStep) -> QueryNode:
    return QueryNode(
        step.label,
        tuple(_rebuild(child) for child in step.children),
        step.edge,
    )


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif text.startswith("//", i):
            tokens.append("//")
            i += 2
        elif ch in "/[]|":
            tokens.append(ch)
            i += 1
        else:
            j = i
            while j < len(text) and not text[j].isspace() and text[j] not in "/[]|":
                j += 1
            tokens.append(text[i:j])
            i = j
    if not tokens:
        raise PatternError("empty XPath expression")
    return tokens
