"""SketchTree: approximate tree pattern counts over streaming labeled trees.

A complete reproduction of Rao & Moon's SketchTree system (ICDE 2006):
an online synopsis that, in a single pass over a stream of labeled trees
(e.g. XML documents) and using a limited amount of memory, supports
approximate counting of *any* ordered or unordered tree pattern, sums and
arithmetic expressions of pattern counts, with the paper's probabilistic
error guarantees.

Quickstart
----------

>>> from repro import SketchTree, SketchTreeConfig
>>> from repro.trees import from_sexpr
>>> st = SketchTree(SketchTreeConfig(s1=30, s2=5, max_pattern_edges=3,
...                                  n_virtual_streams=31, seed=7))
>>> st.update(from_sexpr("(A (B) (C))"))
>>> st.update(from_sexpr("(A (C) (B))"))
>>> round(st.estimate_ordered("(A (B) (C))"))   # ordered: only the first
1
>>> round(st.estimate_unordered("(A (B) (C))"))  # unordered: both
2

Package map
-----------

======================  ====================================================
``repro.core``          SketchTree itself, top-k, virtual streams,
                        expressions, the exact-counting baseline
``repro.trees``         ordered labeled trees + XML parsing
``repro.prufer``        extended Prüfer sequence encoding (PRIX-style)
``repro.hashing``       pairing functions, GF(2) / Rabin fingerprints
``repro.sketch``        AMS sketches, CountSketch, k-wise ξ generators,
                        Theorem 1/2 sizing formulas
``repro.enumtree``      EnumTree pattern enumeration (Algorithm 3)
``repro.query``         pattern helpers, exact matching oracle,
                        structural summary for ``*`` / ``//`` queries
``repro.datasets``      synthetic TREEBANK-like / DBLP-like streams
``repro.corpora``       streaming readers for real corpus formats
                        (Penn Treebank brackets, Negra export, DBLP XML)
``repro.workload``      selectivity-bucketed query workload generation
``repro.stream``        stream-processing engine with timing
``repro.experiments``   one module per paper table/figure
======================  ====================================================
"""

from repro.core.config import SketchTreeConfig
from repro.core.exact import ExactCounter
from repro.core.expressions import Count, Expression
from repro.core.sketchtree import SketchTree
from repro.errors import (
    ConfigError,
    CorpusParseError,
    HashingError,
    PatternError,
    QueryError,
    ReproError,
    SnapshotConfigError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
    TreeError,
    XmlParseError,
)
from repro.query.summary import QueryNode, StructuralSummary

__version__ = "1.0.0"

__all__ = [
    "ConfigError",
    "CorpusParseError",
    "Count",
    "ExactCounter",
    "Expression",
    "HashingError",
    "PatternError",
    "QueryError",
    "QueryNode",
    "ReproError",
    "SketchTree",
    "SketchTreeConfig",
    "SnapshotConfigError",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "SnapshotVersionError",
    "StructuralSummary",
    "TreeError",
    "XmlParseError",
    "__version__",
]
