"""Prüfer sequence encoding of ordered labeled trees (PRIX-style).

SketchTree identifies every tree pattern by the pair of its *extended*
Labeled Prüfer Sequence (LPS) and Numbered Prüfer Sequence (NPS); this
subpackage implements the encoding and its inverse.

See :mod:`repro.prufer.sequences` for the algorithmic details.
"""

from repro.prufer.sequences import (
    PruferSequences,
    prufer_of_nested,
    prufer_of_tree,
    tree_from_prufer,
)

__all__ = [
    "PruferSequences",
    "prufer_of_nested",
    "prufer_of_tree",
    "tree_from_prufer",
]
