"""Extended Prüfer sequences: the tree ↔ sequence bijection SketchTree uses.

Construction (Section 2.3 of the paper, following the PRIX system):

1. *Extend* the tree by adding one dummy child to every leaf of the
   original tree, so the original leaf labels survive into the sequence.
2. Number all nodes of the extended tree in postorder (1-based; the root
   of an ``n``-node extended tree gets number ``n``).
3. Repeatedly delete the leaf with the smallest number, noting its parent,
   until one node remains.  The noted postorder numbers form the **NPS**;
   replacing each number by its node's label gives the **LPS**.

With postorder numbering the deletion order is exactly ``1, 2, …, n−1``
(when nodes ``1..i−1`` are gone, node ``i`` has lost all of its descendants
and is the smallest remaining leaf), so the sequences reduce to the parent
array read in postorder::

    NPS[i−1] = parent(i)           for i = 1 .. n−1
    LPS[i−1] = label(parent(i))

which makes construction linear in the tree size, as the paper notes.

Together, LPS and NPS determine the original tree uniquely;
:func:`tree_from_prufer` implements the inverse, which the test suite uses
as a round-trip property.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TreeError
from repro.trees.tree import LabeledTree, Nested


@dataclass(frozen=True, slots=True)
class PruferSequences:
    """The (LPS, NPS) pair uniquely identifying an ordered labeled tree.

    ``lps[i]`` is the label of the node whose postorder number is
    ``nps[i]``; both sequences have length ``n_extended − 1``.  Slotted:
    one instance is built per encoded pattern occurrence, so per-instance
    ``__dict__`` overhead would dominate at stream scale.
    """

    lps: tuple[str, ...]
    nps: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lps) != len(self.nps):
            raise TreeError(
                f"LPS length {len(self.lps)} != NPS length {len(self.nps)}"
            )

    def __len__(self) -> int:
        return len(self.lps)

    def interleaved(self) -> tuple:
        """``(lps[0], nps[0], lps[1], nps[1], …)`` — handy for hashing."""
        out: list = []
        for label, number in zip(self.lps, self.nps):
            out.append(label)
            out.append(number)
        return tuple(out)


def prufer_of_nested(pattern: Nested) -> PruferSequences:
    """Extended Prüfer sequences of a pattern in nested-tuple form.

    This is the hot path: patterns produced by EnumTree are nested tuples
    and never need to become full :class:`LabeledTree` objects.
    """
    labels, parents = _extended_postorder(pattern)
    n = len(labels)
    lps: list[str] = []
    nps: list[int] = []
    for i in range(n - 1):
        p = parents[i]
        nps.append(p)
        lps.append(labels[p - 1])
    return PruferSequences(tuple(lps), tuple(nps))


def prufer_of_tree(tree: LabeledTree) -> PruferSequences:
    """Extended Prüfer sequences of a :class:`LabeledTree`."""
    return prufer_of_nested(tree.to_nested())


_DUMMY = None  # label placeholder for dummy children; never enters the LPS


def _extended_postorder(pattern: Nested) -> tuple[list[str | None], list[int]]:
    """Postorder labels and parent numbers of the extended tree.

    Returns ``(labels, parents)`` where index ``i`` describes the node with
    postorder number ``i + 1``; dummy nodes carry the label ``None``.
    Iterative so arbitrarily deep patterns cannot overflow the recursion
    stack.

    Implementation: one *reverse-postorder* pass (root first, children
    right-to-left) that records each node's label and its parent's visit
    index, then one flip.  A node visited at reverse index ``r`` of an
    ``n``-node extended tree has postorder number ``n − r``, so the parent
    array falls out arithmetically — no per-node frame lists or
    child-number relays, which dominated the encode stage at stream scale.
    """
    if not (isinstance(pattern, tuple) and len(pattern) == 2):
        raise TreeError(f"not a nested tree form: {pattern!r}")
    rev_labels: list[str | None] = []
    rev_parent: list[int] = []  # parent's reverse index; -1 for the root
    stack: list[tuple[Nested, int]] = [(pattern, -1)]
    while stack:
        node, parent_rev = stack.pop()
        if not (isinstance(node, tuple) and len(node) == 2):
            raise TreeError(f"not a nested tree form: {node!r}")
        label, children = node
        my_rev = len(rev_labels)
        rev_labels.append(label)
        rev_parent.append(parent_rev)
        if children:
            # Document order pushed, so popping visits children
            # right-to-left — exactly reverse postorder.
            for child in children:
                stack.append((child, my_rev))
        else:
            # Original leaf: its dummy child is the next node in reverse
            # postorder (it finishes just before the leaf in postorder).
            rev_labels.append(_DUMMY)
            rev_parent.append(my_rev)
    n = len(rev_labels)
    rev_labels.reverse()
    parents = [0] * n
    for r in range(1, n):
        parents[n - 1 - r] = n - rev_parent[r]
    return rev_labels, parents


def tree_from_prufer(sequences: PruferSequences) -> LabeledTree:
    """Reconstruct the original tree from its extended (LPS, NPS) pair.

    The extended tree's parent array is exactly the NPS; nodes that never
    appear in the NPS are the dummies, which are dropped.  Raises
    :class:`~repro.errors.TreeError` when the sequences are inconsistent
    (not a valid postorder parent array, or conflicting labels for one
    node).
    """
    nps = sequences.nps
    lps = sequences.lps
    if not nps:
        raise TreeError("empty Prüfer sequences do not encode a tree")
    n_ext = len(nps) + 1
    parent = [0] * (n_ext + 1)  # 1-based
    label: list[str | None] = [None] * (n_ext + 1)
    for i, (p, lab) in enumerate(zip(nps, lps), start=1):
        if not i < p <= n_ext:
            raise TreeError(
                f"NPS[{i - 1}] = {p} is not a valid postorder parent of node {i}"
            )
        parent[i] = p
        if label[p] is None:
            label[p] = lab
        elif label[p] != lab:
            raise TreeError(
                f"conflicting labels {label[p]!r} and {lab!r} for node {p}"
            )
    children: list[list[int]] = [[] for _ in range(n_ext + 1)]
    for i in range(1, n_ext):
        children[parent[i]].append(i)  # ascending i == document order
    internal = set(nps)
    if n_ext not in internal:
        raise TreeError("the root never appears in the NPS; sequences invalid")

    # Rebuild only the original (non-dummy) nodes.  A dummy is an extended
    # leaf; original leaves are exactly the internal nodes whose every child
    # is a dummy.
    from repro.trees.node import TreeNode  # local import avoids a cycle

    nodes: dict[int, TreeNode] = {}
    for num in range(1, n_ext + 1):  # postorder: children built before parents
        if num not in internal:
            continue  # dummy
        lab = label[num]
        assert lab is not None  # guaranteed: num appeared in the NPS
        node = TreeNode(lab)
        for kid in children[num]:
            if kid in internal:
                node.add_child(nodes[kid])
        nodes[num] = node
    tree = LabeledTree(nodes[n_ext])
    # Self-check: a valid encoding round-trips.  This catches sequences that
    # are structurally plausible but were not produced by the extension rule
    # (e.g. an internal node with a dummy child that is not its only child).
    if prufer_of_tree(tree) != sequences:
        raise TreeError("sequences are not a valid extended Prüfer encoding")
    return tree
