"""Configuration for the SketchTree synopsis.

Defaults mirror the paper's experimental setup where one exists: ``s2 = 7``
(computed from Theorem 1 for δ = 0.1), 229 virtual streams, Rabin
fingerprints of degree 31.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

_MAPPINGS = ("rabin", "pairing")

#: Seed used by components constructed without an explicit one (notably
#: ad-hoc :class:`~repro.hashing.rabin.RabinFingerprint` instances and
#: :func:`~repro.hashing.gf2.random_irreducible` draws), so that *every*
#: polynomial draw in the system is reproducible run-to-run.
DEFAULT_SEED = 0

#: Offset added to the master seed for the ξ-family coefficient draw, so
#: the sketch randomness and the encoder randomness never coincide even
#: when ``encoder_seed`` is left unset.
XI_SEED_OFFSET = 101

#: XOR salt deriving the top-k sampling RNG from the master seed
#: (Algorithm 4's probabilistic relief valve, ``topk_probability < 1``).
TOPK_RNG_SALT = 0x53EED

#: Offset deriving the label-hashing fingerprint polynomial from the
#: encoder seed, keeping it independent of the sequence polynomial.
LABEL_SEED_OFFSET = 1


@dataclass(frozen=True)
class SketchTreeConfig:
    """All knobs of a :class:`~repro.core.sketchtree.SketchTree`.

    Attributes
    ----------
    s1:
        AMS instances averaged per group — estimation *accuracy*
        (Theorem 1: ``s1 = 8·SJ(S)/(ε² f_q²)``).
    s2:
        Groups whose averages are median-combined — *confidence*
        (``s2 = 2·lg(1/δ)``; 7 matches the paper's δ = 0.1).
    max_pattern_edges:
        ``k``: EnumTree enumerates patterns with 1..k edges; queries
        larger than ``k`` are rejected (the paper's future-work boundary).
    n_virtual_streams:
        The prime ``p`` of Section 5.3; 1 disables partitioning.
        229 is the paper's experimental value.
    topk_size:
        Frequent patterns tracked *per virtual stream* (Section 5.2);
        0 disables tracking.
    topk_probability:
        Probability of invoking top-k processing per enumerated pattern
        during streaming updates — the paper's suggested relief valve when
        per-pattern processing is infeasible.  1.0 = always.
    independence:
        k-wise independence of the ξ families.  4 suffices for point and
        sum queries; product expressions of degree ``d`` need ``2d``
        (see :mod:`repro.core.expressions`).
    mapping:
        ``"rabin"`` — degree-``fingerprint_degree`` Rabin residues (the
        paper's experimental configuration); ``"pairing"`` — exact Cantor
        pairing values (lossless; for validation and small demos).
    fingerprint_degree:
        Degree of the irreducible polynomial in ``"rabin"`` mode.
    maintain_summary:
        When ``True`` the synopsis also maintains the Section 6.2
        structural summary online, enabling ``*`` and ``//`` queries via
        :meth:`~repro.core.sketchtree.SketchTree.estimate_extended`.
    xi_family:
        ``"polynomial"`` — degree-(k−1) polynomial hashing (fast,
        arbitrary independence); ``"bch"`` — the BCH parity-check
        construction the paper cites (exactly four-wise; limits
        ``independence`` to 4, so product expressions of degree ≥ 2 are
        unavailable under it).
    seed:
        Master seed; every random component (ξ coefficients, fingerprint
        polynomial) derives deterministically from it.
    encoder_seed:
        When set, pins the pattern-encoder randomness (fingerprint
        polynomial / label hashing) independently of ``seed``, so that
        multiple synopses with different sketch seeds agree on the
        pattern → value mapping.  Experiment harnesses use this to
        pre-encode a stream once and replay it under many sketch draws.
    """

    s1: int = 50
    s2: int = 7
    max_pattern_edges: int = 4
    n_virtual_streams: int = 229
    topk_size: int = 0
    topk_probability: float = 1.0
    independence: int = 4
    mapping: str = "rabin"
    fingerprint_degree: int = 31
    maintain_summary: bool = False
    xi_family: str = "polynomial"
    seed: int = 0
    encoder_seed: int | None = None

    def __post_init__(self):
        if self.s1 < 1 or self.s2 < 1:
            raise ConfigError(f"s1, s2 must be >= 1 (got {self.s1}, {self.s2})")
        if self.max_pattern_edges < 1:
            raise ConfigError(
                f"max_pattern_edges must be >= 1, got {self.max_pattern_edges}"
            )
        if self.n_virtual_streams < 1:
            raise ConfigError(
                f"n_virtual_streams must be >= 1, got {self.n_virtual_streams}"
            )
        if self.topk_size < 0:
            raise ConfigError(f"topk_size must be >= 0, got {self.topk_size}")
        if not 0.0 <= self.topk_probability <= 1.0:
            raise ConfigError(
                f"topk_probability must be in [0, 1], got {self.topk_probability}"
            )
        if self.independence < 4:
            raise ConfigError(
                f"independence must be >= 4 (AMS needs four-wise), "
                f"got {self.independence}"
            )
        if self.mapping not in _MAPPINGS:
            raise ConfigError(
                f"mapping must be one of {_MAPPINGS}, got {self.mapping!r}"
            )
        if self.xi_family not in ("polynomial", "bch"):
            raise ConfigError(
                f"xi_family must be 'polynomial' or 'bch', got {self.xi_family!r}"
            )
        if self.xi_family == "bch" and self.independence != 4:
            raise ConfigError(
                "the BCH construction is exactly four-wise independent; "
                "set independence=4 or use xi_family='polynomial'"
            )
        if self.mapping == "rabin" and not 8 <= self.fingerprint_degree <= 61:
            raise ConfigError(
                f"fingerprint_degree must be in [8, 61], got {self.fingerprint_degree}"
            )
        if self.n_virtual_streams > 1:
            from repro.core.virtual import is_prime

            if not is_prime(self.n_virtual_streams):
                raise ConfigError(
                    f"n_virtual_streams must be prime (Section 5.3), got "
                    f"{self.n_virtual_streams}; try "
                    f"repro.core.next_prime({self.n_virtual_streams})"
                )

    @property
    def n_instances(self) -> int:
        """Total AMS instances per virtual stream (``s1 × s2``)."""
        return self.s1 * self.s2
