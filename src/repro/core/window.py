"""Sliding-window pattern counting over the most recent trees.

The paper counts over the *whole* stream; a natural deployment question
(and a classic stream-processing extension) is "how often did this
pattern occur in the last W documents?".  Because the synopsis is a
linear projection, exact landmark differences are trivial — but an exact
sliding window would require storing per-tree deltas.  The standard
bucket compromise implemented here keeps memory bounded:

* time is divided into *buckets* of ``bucket_trees`` consecutive trees;
* each bucket holds its own :class:`~repro.core.sketchtree.SketchTree`
  (sharing one configuration, and therefore one ξ family per seed);
* only the most recent ``n_buckets = ceil(window_trees / bucket_trees)``
  **complete** buckets plus the in-progress bucket are retained; older
  buckets are dropped whole;
* a query sums the retained buckets' estimates — linearity again — so
  the answered window is the last ``W′`` trees where
  ``window_trees ≤ W′ < window_trees + bucket_trees``; the exact
  boundary is quantised to a bucket, the usual accuracy/memory trade of
  bucketed windows.

Memory: ``(n_buckets + 1) ×`` one synopsis.  Virtual streams work
unchanged.  Top-k tracking (Section 5.2) runs **per bucket**: each
bucket's synopsis folds its own heavy hitters out of its counters, so
per-bucket estimates stay compensated through the buckets' own
trackers, and windowed queries keep the self-join-size reduction
exactly where skew matters most (trending patterns).  On bucket expiry
the tracked state composes through the fold/unfold protocol of
:mod:`repro.core.topk` (*merge-on-expiry*): the expiring bucket's
tracker is unfolded — its counters are discarded anyway, but the
unfold yields the candidate heavy hitters it knew — and the surviving
oldest bucket's tracker is unfolded and *refolded* over the union of
both candidate sets, so a pattern that was hot in the expired bucket
keeps being watched if it is still heavy in the surviving window.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

import numpy as np

from repro.core.config import SketchTreeConfig
from repro.core.sketchtree import SketchTree
from repro.errors import ConfigError
from repro.obs.registry import Registry, get_default_registry
from repro.sketch.ams import SketchMatrix
from repro.trees.tree import LabeledTree, Nested


class WindowedSketchTree:  # sketchlint: single-writer
    """Approximate pattern counts over a sliding window of trees.

    Single-writer: one thread drives :meth:`update`/:meth:`update_batch`
    (in the serving tier, the shard's drain thread); query threads read
    concurrently under the racy-but-benign counter semantics of
    docs/concurrency.md.  The bucket *list* itself is the one structure
    a rotation mutates non-atomically, so rotations and reader snapshots
    of it serialise on a small internal lock.

    Parameters
    ----------
    config:
        Configuration for the per-bucket synopses.  ``topk_size > 0``
        runs one tracker per bucket per virtual stream, merged across
        bucket expiry via the fold/unfold protocol (module docstring).
    window_trees:
        Target window length in trees.
    bucket_trees:
        Bucket granularity; smaller buckets track the window boundary
        more tightly at proportionally more memory.
    """

    def __init__(
        self,
        config: SketchTreeConfig,
        window_trees: int,
        bucket_trees: int | None = None,
    ):
        if window_trees < 1:
            raise ConfigError(f"window_trees must be >= 1, got {window_trees}")
        if bucket_trees is None:
            bucket_trees = max(1, window_trees // 8)
        if not 1 <= bucket_trees <= window_trees:
            raise ConfigError(
                f"bucket_trees must be in [1, window_trees], got {bucket_trees}"
            )
        self.config = config
        self.window_trees = window_trees
        self.bucket_trees = bucket_trees
        self.n_buckets = -(-window_trees // bucket_trees)  # ceil
        self._complete: deque[SketchTree] = deque()
        self._current = SketchTree(config)
        self._lock = threading.Lock()
        self.n_trees_seen = 0
        #: Merge-on-expiry churn (plain ints, always on — surfaced as
        #: pull counters by :meth:`set_metrics`): trackers refolded and
        #: candidate values replayed through ``bulk_build``.
        self.n_refolds = 0
        self.n_refold_candidates = 0
        self._obs: Registry = get_default_registry()

    # ------------------------------------------------------------------
    # Stream side
    # ------------------------------------------------------------------
    def update(self, tree: LabeledTree) -> None:
        """Process one arriving tree; rotates buckets as they fill."""
        self.update_batch((tree,))

    def update_batch(self, trees: Iterable[LabeledTree]) -> None:
        """Process several arriving trees as one micro-batch.

        Bit-identical to calling :meth:`update` per tree: the batch is
        cut into segments at bucket boundaries, so every bucket's
        :class:`~repro.core.sketchtree.SketchTree` receives exactly the
        trees the per-tree loop would have given it — via its own
        ``update_batch``, which is itself bit-identical to per-tree
        updates.  This is what lets
        :class:`~repro.stream.engine.StreamProcessor` with
        ``batch_trees > 1`` feed windowed consumers through the columnar
        pipeline instead of degrading to per-tree dispatch.
        """
        pending = list(trees)
        start = 0
        while start < len(pending):
            room = self.bucket_trees - self._current.n_trees
            segment = pending[start : start + room]
            self._current.update_batch(segment)
            self.n_trees_seen += len(segment)
            start += len(segment)
            if self._current.n_trees >= self.bucket_trees:
                self._rotate()

    def _rotate(self) -> None:
        """Retire the full in-progress bucket and expire the oldest.

        The structural swap happens under the lock (readers snapshot the
        bucket list); the merge-on-expiry work — tracker unfold/refold —
        runs after it, outside the lock, under the same racy-benign
        read semantics as ingest itself.
        """
        expired: list[SketchTree] = []
        with self._lock:
            self._complete.append(self._current)
            self._current = SketchTree(self.config)
            while len(self._complete) > self.n_buckets:
                expired.append(self._complete.popleft())
            successor = self._complete[0]
        for bucket in expired:
            self._merge_on_expiry(bucket, successor)

    def _merge_on_expiry(self, expired: SketchTree, successor: SketchTree) -> None:
        """Fold the expiring bucket's tracked state into the successor.

        Per stream: :meth:`~repro.core.topk.TopKTracker.unfold` the
        expiring bucket's tracker (its counters leave the window either
        way; the unfold yields its candidate heavy hitters), unfold the
        surviving oldest bucket's tracker — restoring that bucket's pure
        linear counters — and refold it over the union of both candidate
        sets.  A value the expired bucket was tracking survives exactly
        when it is still heavy in the successor's sub-stream; per-bucket
        ``adjustment()`` compensation keeps working because each
        bucket's tracker still describes precisely its own deletions.
        """
        if not self.config.topk_size:
            return
        # Plain iteration is safe here: this runs on the window's single
        # writer thread, which is the only mutator of tracker tables in
        # both the expired bucket (frozen) and the successor (complete).
        for residue, tracker in list(expired.streams.iter_trackers()):
            candidates = tracker.unfold()
            if not candidates:
                continue
            if successor.streams.sketch_if_allocated(residue) is None:
                # The surviving window never routed a value to this
                # stream: every candidate's surviving count is exactly 0.
                continue
            union = dict.fromkeys(candidates)
            surviving = successor.streams.tracker(residue)
            if surviving is not None:
                union.update(dict.fromkeys(surviving.unfold()))
            successor.streams.refold_tracker(residue, union)
            self.n_refolds += 1
            self.n_refold_candidates += len(union)

    def ingest(
        self, trees: Iterable[LabeledTree], batch_trees: int = 64
    ) -> "WindowedSketchTree":
        """Stream an iterable through :meth:`update_batch` in micro-batches."""
        if batch_trees < 1:
            raise ConfigError(f"batch_trees must be >= 1, got {batch_trees}")
        chunk: list[LabeledTree] = []
        for tree in trees:
            chunk.append(tree)
            if len(chunk) >= batch_trees:
                self.update_batch(chunk)
                chunk.clear()
        if chunk:
            self.update_batch(chunk)
        return self

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------
    def _live_buckets(self) -> list[SketchTree]:
        """A stable snapshot of the retained buckets, oldest first."""
        with self._lock:
            buckets = list(self._complete)
            current = self._current
        if current.n_trees:
            buckets.append(current)
        return buckets

    def estimate_ordered(self, query) -> float:
        """Approximate ``COUNT_ord(Q)`` over the current window.

        Per-bucket estimates are already top-k compensated through each
        bucket's own trackers, so their sum is too.
        """
        return sum(b.estimate_ordered(query) for b in self._live_buckets())

    def estimate_unordered(self, query) -> float:
        """Approximate ``COUNT(Q)`` over the current window."""
        return sum(b.estimate_unordered(query) for b in self._live_buckets())

    def estimate_sum(self, queries: Iterable) -> float:
        """Approximate a distinct-pattern sum over the current window.

        ``queries`` is materialised once up front: every live bucket must
        see the *same* pattern list, and a generator argument would be
        exhausted by the first bucket (leaving the rest to contribute 0,
        a silent undercount).
        """
        queries = list(queries)
        return sum(b.estimate_sum(queries) for b in self._live_buckets())

    def estimate_or(self, query) -> float:
        """Approximate an OR-predicate pattern count over the window
        (paper Example 5), summed across live buckets by linearity."""
        return sum(b.estimate_or(query) for b in self._live_buckets())

    def estimate_self_join_size(self) -> float:
        """Residual self-join size of the *window's* sub-stream.

        Computed over the live buckets' counters summed per stream
        (:meth:`_combined_matrix`) — summing per-bucket
        ``estimate_self_join_size`` instead would ignore cross-bucket
        repetitions of a value (``SJ`` is quadratic in frequencies, which
        add across buckets) and systematically undercount.  "Residual"
        as in :meth:`SketchTree.estimate_self_join_size`: per-bucket
        top-k-deleted mass stays deleted, which is the quantity the
        Theorem 1 error bound depends on.
        """
        residues = set()
        for bucket in self._live_buckets():
            residues.update(r for r, _ in bucket.streams.iter_sketches())
        total = 0.0
        for residue in residues:
            matrix = self._combined_matrix(residue)
            if matrix is not None:
                total += max(0.0, matrix.estimate_self_join_size())
        return total

    def estimate_ordered_interval(self, query, confidence: float = 0.9):
        """``COUNT_ord(Q)`` over the window with a Chebyshev error bar.

        Evaluated on the summed bucket counters: by AMS linearity those
        *are* the counters a single synopsis over the window's trees
        would hold, so both the point estimate and the self-reported
        self-join size driving the half-width are exactly the
        whole-stream quantities of :meth:`SketchTree.estimate_ordered_interval`.
        (The centre is the merged-counter estimate, which can differ by
        median nonlinearity from :meth:`estimate_ordered`'s per-bucket
        sum; both are valid estimators of the same count.)  The point
        estimate is compensated with every live bucket's per-bucket
        :meth:`~repro.core.topk.TopKTracker.adjustment`; the half-width
        stays on the *residual* (uncompensated) counters, which is what
        Theorem 1's variance bound measures after the Section 5.2
        optimisation.
        """
        from repro.core.intervals import Interval, chebyshev_half_width

        pattern = self._current._checked(query)
        value = self._current.encoder.encode(pattern)
        residue = self._current.streams.residue(value)
        matrix = self._combined_matrix(residue)
        if matrix is None:
            return Interval(0.0, 0.0, confidence, 0.0)
        adjust = self._combined_adjustment(residue, [value])
        estimate = matrix.estimate(value, adjust=adjust)
        self_join = max(0.0, matrix.estimate_self_join_size())
        half_width = chebyshev_half_width(self_join, self.config.s1, confidence)
        return Interval(estimate, half_width, confidence, self_join)

    def _combined_matrix(
        self, residue: int, adjust_values: Iterable[int] | None = None
    ) -> SketchMatrix | None:
        """Stream ``residue``'s counters summed across live buckets, as a
        fresh read-only :class:`~repro.sketch.ams.SketchMatrix` view.

        Pure on bucket state (no ``merge()``, nothing mutated): every
        bucket shares one ξ family per the window's single config/seed,
        so summed counters are exactly the stream's counters over the
        window's trees (linearity).  Returns ``None`` when no live
        bucket ever routed a value to the stream (an exact zero).

        ``adjust_values`` applies every live bucket's per-bucket top-k
        :meth:`~repro.core.topk.TopKTracker.adjustment` for those query
        values into the view — each bucket deleted its own tracked
        occurrences, so the compensations add just like the counters do.
        Leave it ``None`` for residual quantities (self-join size).
        """
        total = None
        for bucket in self._live_buckets():
            matrix = bucket.streams.sketch_if_allocated(residue)
            if matrix is None:
                continue
            total = (
                matrix.counters.copy() if total is None
                else total + matrix.counters
            )
        if total is None:
            return None
        if adjust_values is not None:
            adjust = self._combined_adjustment(residue, list(adjust_values))
            if adjust is not None:
                total = total + adjust
        view = SketchMatrix(
            self.config.s1, self.config.s2, xi=self._current.streams.xi
        )
        view.counters = total
        return view

    def _combined_adjustment(
        self, residue: int, values: list[int]
    ) -> np.ndarray | None:
        """Summed per-bucket top-k compensation for stream ``residue``.

        ``None`` when no live bucket tracks any of the queried values
        (always, when ``topk_size=0``).
        """
        if not self.config.topk_size:
            return None
        total: np.ndarray | None = None
        for bucket in self._live_buckets():
            tracker = bucket.streams.tracker(residue)
            if tracker is None:
                continue
            part = tracker.adjustment(values)
            if part is not None:
                total = part if total is None else total + part
        return total

    def merged(self) -> SketchTree:
        """The live buckets collapsed into one fresh synopsis.

        :meth:`~repro.core.sketchtree.SketchTree.merge` composes the
        buckets — including per-bucket top-k state, via the fold/unfold
        protocol — into a synopsis equivalent to one fed the window's
        trees (bit-identical counters once unfolded; the refolded
        tracker re-selects the heavy hitters of the combined stream).
        The returned synopsis is a snapshot-in-time copy — later window
        updates do not flow into it.
        """
        combined = SketchTree(self.config)
        for bucket in self._live_buckets():
            combined = combined.merge(bucket)
        return combined

    # ------------------------------------------------------------------
    # Top-k introspection (the live windowed-trend surface)
    # ------------------------------------------------------------------
    def tracked(self) -> dict[int, int]:
        """Tracked value → deleted-frequency map, summed across buckets.

        Each bucket deleted its own occurrences of a value, so the sums
        are the window's total tracked mass per value — the raw form of
        the "trending patterns" list.
        """
        total: dict[int, int] = {}
        for bucket in self._live_buckets():
            for value, freq in bucket.tracked().items():
                total[value] = total.get(value, 0) + freq
        return total

    def tracked_patterns(self, limit: int | None = None) -> list[dict]:
        """The window's tracked patterns, most frequent first.

        Each entry carries the encoded ``value`` (as a decimal string —
        pairing-mode values exceed JSON-safe integers), the summed
        tracked ``frequency``, and the decoded ``pattern`` nested tuple
        when any live bucket's encoder still memoises it (``None`` after
        LRU eviction — the value is still servable, just nameless).
        """
        ranked = sorted(self.tracked().items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            ranked = ranked[:limit]
        values = [value for value, _ in ranked]
        names: dict[int, Nested] = {}
        for bucket in self._live_buckets():
            missing = [v for v in values if v not in names]
            if not missing:
                break
            names.update(bucket.encoder.lookup_values(missing))
        return [
            {"value": value, "frequency": freq, "pattern": names.get(value)}
            for value, freq in ranked
        ]

    def deleted_self_join_mass(self) -> int:
        """``Σ f_v²`` over tracked values, summed across live buckets —
        the self-join mass the window's trackers hold out of the
        counters (what the Section 5.2 optimisation bought)."""
        return sum(
            bucket.deleted_self_join_mass() for bucket in self._live_buckets()
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def set_metrics(self, metrics: Registry | None) -> None:
        """Attach a metrics registry (``None`` → the process default).

        Pull instruments over live window state, same semantics as
        :meth:`SketchTree.set_metrics` (re-registering rebinds; nothing
        here mutates window state).
        """
        obs = metrics if metrics is not None else get_default_registry()
        self._obs = obs
        if not obs.enabled:
            return
        obs.gauge(
            "window_live_buckets",
            help="buckets currently retained (complete + in-progress)",
            fn=lambda: self.n_live_buckets,
        )
        obs.gauge(
            "window_trees_covered",
            help="trees currently covered by the retained buckets",
            fn=lambda: self.window_size_actual,
        )
        if self.config.topk_size:
            obs.counter(
                "window_topk_refolds_total",
                help="per-stream trackers refolded on bucket expiry",
                fn=lambda: self.n_refolds,
            )
            obs.counter(
                "window_topk_refold_candidates_total",
                help="candidate values replayed through refolds on expiry",
                fn=lambda: self.n_refold_candidates,
            )
            obs.gauge(
                "window_topk_deleted_self_join_mass",
                help="self-join mass deleted by the live buckets' trackers",
                fn=lambda: float(self.deleted_self_join_mass()),
            )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def n_trees(self) -> int:
        """Absolute stream position: every tree ever seen, expired or not.

        This is what checkpoint naming and
        :meth:`~repro.stream.engine.StreamProcessor.resume` skip counts
        key on — a resumed window must skip all consumed trees, not just
        the retained ones (:attr:`window_size_actual`).
        """
        return self.n_trees_seen

    def to_bytes(self) -> bytes:
        """Serialise the whole window (every retained bucket, including
        per-bucket tracker state) into the versioned container format of
        :mod:`repro.core.snapshot`."""
        from repro.core.snapshot import window_to_bytes

        return window_to_bytes(self)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WindowedSketchTree":
        """Restore a window serialised with :meth:`to_bytes`.

        Raises a typed :class:`~repro.errors.SnapshotError` for corrupt,
        truncated, or version-mismatched blobs.
        """
        from repro.core.snapshot import window_from_bytes

        return window_from_bytes(blob)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def window_size_actual(self) -> int:
        """Trees currently covered by the retained buckets."""
        return sum(b.n_trees for b in self._live_buckets())

    @property
    def n_live_buckets(self) -> int:
        return len(self._complete) + (1 if self._current.n_trees else 0)

    def memory_report(self):
        """Aggregate paper-style memory across live buckets (plus the
        in-progress one)."""
        from repro.core.memory import MemoryReport

        reports = [b.memory_report() for b in self._live_buckets()]
        if not reports:
            reports = [SketchTree(self.config).memory_report()]
        return MemoryReport(
            provisioned_sketch_bytes=sum(r.provisioned_sketch_bytes for r in reports),
            provisioned_topk_bytes=sum(r.provisioned_topk_bytes for r in reports),
            seed_bytes=reports[0].seed_bytes,
            allocated_sketch_bytes=sum(r.allocated_sketch_bytes for r in reports),
            allocated_topk_bytes=sum(r.allocated_topk_bytes for r in reports),
        )

    def __repr__(self) -> str:
        return (
            f"WindowedSketchTree(window={self.window_trees}, "
            f"bucket={self.bucket_trees}, live={self.n_live_buckets}, "
            f"covering={self.window_size_actual})"
        )
