"""Sliding-window pattern counting over the most recent trees.

The paper counts over the *whole* stream; a natural deployment question
(and a classic stream-processing extension) is "how often did this
pattern occur in the last W documents?".  Because the synopsis is a
linear projection, exact landmark differences are trivial — but an exact
sliding window would require storing per-tree deltas.  The standard
bucket compromise implemented here keeps memory bounded:

* time is divided into *buckets* of ``bucket_trees`` consecutive trees;
* each bucket holds its own :class:`~repro.core.sketchtree.SketchTree`
  (sharing one configuration, and therefore one ξ family per seed);
* only the most recent ``n_buckets = ceil(window_trees / bucket_trees)``
  **complete** buckets plus the in-progress bucket are retained; older
  buckets are dropped whole;
* a query sums the retained buckets' estimates — linearity again — so
  the answered window is the last ``W′`` trees where
  ``window_trees ≤ W′ < window_trees + bucket_trees``; the exact
  boundary is quantised to a bucket, the usual accuracy/memory trade of
  bucketed windows.

Memory: ``(n_buckets + 1) ×`` one synopsis.  Top-k tracking is disabled
inside buckets (tracked deletions would not be additive across bucket
drops); virtual streams work unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.core.config import SketchTreeConfig
from repro.core.sketchtree import SketchTree
from repro.errors import ConfigError
from repro.sketch.ams import SketchMatrix
from repro.trees.tree import LabeledTree


class WindowedSketchTree:
    """Approximate pattern counts over a sliding window of trees.

    Parameters
    ----------
    config:
        Configuration for the per-bucket synopses (``topk_size`` must be
        0 — see the module docstring).
    window_trees:
        Target window length in trees.
    bucket_trees:
        Bucket granularity; smaller buckets track the window boundary
        more tightly at proportionally more memory.
    """

    def __init__(
        self,
        config: SketchTreeConfig,
        window_trees: int,
        bucket_trees: int | None = None,
    ):
        if config.topk_size:
            raise ConfigError(
                "windowed counting requires topk_size=0: top-k deletions "
                "are not additive across bucket expiry"
            )
        if window_trees < 1:
            raise ConfigError(f"window_trees must be >= 1, got {window_trees}")
        if bucket_trees is None:
            bucket_trees = max(1, window_trees // 8)
        if not 1 <= bucket_trees <= window_trees:
            raise ConfigError(
                f"bucket_trees must be in [1, window_trees], got {bucket_trees}"
            )
        self.config = config
        self.window_trees = window_trees
        self.bucket_trees = bucket_trees
        self.n_buckets = -(-window_trees // bucket_trees)  # ceil
        self._complete: deque[SketchTree] = deque()
        self._current = SketchTree(config)
        self.n_trees_seen = 0

    # ------------------------------------------------------------------
    # Stream side
    # ------------------------------------------------------------------
    def update(self, tree: LabeledTree) -> None:
        """Process one arriving tree; rotates buckets as they fill."""
        self.update_batch((tree,))

    def update_batch(self, trees: Iterable[LabeledTree]) -> None:
        """Process several arriving trees as one micro-batch.

        Bit-identical to calling :meth:`update` per tree: the batch is
        cut into segments at bucket boundaries, so every bucket's
        :class:`~repro.core.sketchtree.SketchTree` receives exactly the
        trees the per-tree loop would have given it — via its own
        ``update_batch``, which is itself bit-identical to per-tree
        updates.  This is what lets
        :class:`~repro.stream.engine.StreamProcessor` with
        ``batch_trees > 1`` feed windowed consumers through the columnar
        pipeline instead of degrading to per-tree dispatch.
        """
        pending = list(trees)
        start = 0
        while start < len(pending):
            room = self.bucket_trees - self._current.n_trees
            segment = pending[start : start + room]
            self._current.update_batch(segment)
            self.n_trees_seen += len(segment)
            start += len(segment)
            if self._current.n_trees >= self.bucket_trees:
                self._rotate()

    def _rotate(self) -> None:
        """Retire the full in-progress bucket and expire the oldest."""
        self._complete.append(self._current)
        self._current = SketchTree(self.config)
        while len(self._complete) > self.n_buckets:
            self._complete.popleft()  # expire the oldest bucket whole

    def ingest(
        self, trees: Iterable[LabeledTree], batch_trees: int = 64
    ) -> "WindowedSketchTree":
        """Stream an iterable through :meth:`update_batch` in micro-batches."""
        if batch_trees < 1:
            raise ConfigError(f"batch_trees must be >= 1, got {batch_trees}")
        chunk: list[LabeledTree] = []
        for tree in trees:
            chunk.append(tree)
            if len(chunk) >= batch_trees:
                self.update_batch(chunk)
                chunk.clear()
        if chunk:
            self.update_batch(chunk)
        return self

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------
    def _live_buckets(self):
        yield from self._complete
        if self._current.n_trees:
            yield self._current

    def estimate_ordered(self, query) -> float:
        """Approximate ``COUNT_ord(Q)`` over the current window."""
        return sum(b.estimate_ordered(query) for b in self._live_buckets())

    def estimate_unordered(self, query) -> float:
        """Approximate ``COUNT(Q)`` over the current window."""
        return sum(b.estimate_unordered(query) for b in self._live_buckets())

    def estimate_sum(self, queries: Iterable) -> float:
        """Approximate a distinct-pattern sum over the current window.

        ``queries`` is materialised once up front: every live bucket must
        see the *same* pattern list, and a generator argument would be
        exhausted by the first bucket (leaving the rest to contribute 0,
        a silent undercount).
        """
        queries = list(queries)
        return sum(b.estimate_sum(queries) for b in self._live_buckets())

    def estimate_or(self, query) -> float:
        """Approximate an OR-predicate pattern count over the window
        (paper Example 5), summed across live buckets by linearity."""
        return sum(b.estimate_or(query) for b in self._live_buckets())

    def estimate_self_join_size(self) -> float:
        """Residual self-join size of the *window's* sub-stream.

        Computed over the live buckets' counters summed per stream
        (:meth:`_combined_matrix`) — summing per-bucket
        ``estimate_self_join_size`` instead would ignore cross-bucket
        repetitions of a value (``SJ`` is quadratic in frequencies, which
        add across buckets) and systematically undercount.
        """
        residues = set()
        for bucket in self._live_buckets():
            residues.update(r for r, _ in bucket.streams.iter_sketches())
        total = 0.0
        for residue in residues:
            matrix = self._combined_matrix(residue)
            if matrix is not None:
                total += max(0.0, matrix.estimate_self_join_size())
        return total

    def estimate_ordered_interval(self, query, confidence: float = 0.9):
        """``COUNT_ord(Q)`` over the window with a Chebyshev error bar.

        Evaluated on the summed bucket counters: by AMS linearity those
        *are* the counters a single synopsis over the window's trees
        would hold, so both the point estimate and the self-reported
        self-join size driving the half-width are exactly the
        whole-stream quantities of :meth:`SketchTree.estimate_ordered_interval`.
        (The centre is the merged-counter estimate, which can differ by
        median nonlinearity from :meth:`estimate_ordered`'s per-bucket
        sum; both are valid estimators of the same count.)
        """
        from repro.core.intervals import Interval, chebyshev_half_width

        pattern = self._current._checked(query)
        value = self._current.encoder.encode(pattern)
        residue = self._current.streams.residue(value)
        matrix = self._combined_matrix(residue)
        if matrix is None:
            return Interval(0.0, 0.0, confidence, 0.0)
        estimate = matrix.estimate(value)
        self_join = max(0.0, matrix.estimate_self_join_size())
        half_width = chebyshev_half_width(self_join, self.config.s1, confidence)
        return Interval(estimate, half_width, confidence, self_join)

    def _combined_matrix(self, residue: int) -> SketchMatrix | None:
        """Stream ``residue``'s counters summed across live buckets, as a
        fresh read-only :class:`~repro.sketch.ams.SketchMatrix` view.

        Pure on bucket state (no ``merge()``, nothing mutated): every
        bucket shares one ξ family per the window's single config/seed,
        so summed counters are exactly the stream's counters over the
        window's trees (linearity).  Returns ``None`` when no live
        bucket ever routed a value to the stream (an exact zero).
        """
        total = None
        for bucket in self._live_buckets():
            matrix = bucket.streams.sketch_if_allocated(residue)
            if matrix is None:
                continue
            total = (
                matrix.counters.copy() if total is None
                else total + matrix.counters
            )
        if total is None:
            return None
        view = SketchMatrix(
            self.config.s1, self.config.s2, xi=self._current.streams.xi
        )
        view.counters = total
        return view

    def merged(self) -> SketchTree:
        """The live buckets collapsed into one fresh synopsis.

        Windows always run with ``topk_size=0``, so
        :meth:`~repro.core.sketchtree.SketchTree.merge` applies; the
        result is bit-identical to a single synopsis fed the window's
        trees (linearity).  The returned synopsis is a snapshot-in-time
        copy — later window updates do not flow into it.
        """
        combined = SketchTree(self.config)
        for bucket in self._live_buckets():
            combined = combined.merge(bucket)
        return combined

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def window_size_actual(self) -> int:
        """Trees currently covered by the retained buckets."""
        return sum(b.n_trees for b in self._live_buckets())

    @property
    def n_live_buckets(self) -> int:
        return len(self._complete) + (1 if self._current.n_trees else 0)

    def memory_report(self):
        """Aggregate paper-style memory across live buckets (plus the
        in-progress one)."""
        from repro.core.memory import MemoryReport

        reports = [b.memory_report() for b in self._live_buckets()]
        if not reports:
            reports = [SketchTree(self.config).memory_report()]
        return MemoryReport(
            provisioned_sketch_bytes=sum(r.provisioned_sketch_bytes for r in reports),
            provisioned_topk_bytes=0,
            seed_bytes=reports[0].seed_bytes,
            allocated_sketch_bytes=sum(r.allocated_sketch_bytes for r in reports),
            allocated_topk_bytes=0,
        )

    def __repr__(self) -> str:
        return (
            f"WindowedSketchTree(window={self.window_trees}, "
            f"bucket={self.bucket_trees}, live={self.n_live_buckets}, "
            f"covering={self.window_size_actual})"
        )
