"""Tracking top-k frequent tree patterns (paper Algorithm 4).

Theorems 1 and 2 tie SketchTree's accuracy to the stream's self-join size
``SJ(S) = Σ f_i²``, which a few very frequent patterns dominate under
skew.  The strategy: estimate each incoming value's frequency from the
sketches; keep the ``k`` largest estimates in a min-heap ``H`` with their
values in a map ``L``; and *delete* a tracked value's estimated
occurrences from the sketches (AMS deletion = subtract ``f·ξ``), so the
sketched residual stream has a much smaller self-join size.

The **delete condition** invariant: at all times, if value ``v`` is
tracked with stored frequency ``f_v``, then exactly ``f_v`` occurrences
of ``v`` have been deleted from the sketches.  Every transition below
re-establishes it:

* re-arrival of a tracked value → add its ``f_v`` back, untrack,
  re-estimate, possibly re-track with the fresh estimate;
* eviction (heap full, newcomer larger) → add the evictee's ``f_r`` back;
* insertion → delete ``est`` occurrences and store exactly ``est``.

At query time the deleted occurrences of *queried* values must be
compensated: :meth:`adjustment` returns the per-instance vector
``d = Σ_{q ∈ L ∩ query} ξ_q · f_q`` which the estimator adds to the
counters (the paper's modification of Algorithm 2).

The fold/unfold protocol
------------------------

Tracking *folds* frequent mass out of the counters; the inverse,
:meth:`TopKTracker.unfold`, adds every tracked ``f_v · ξ(v)`` back.
Because AMS counters are exact int64 sums and the delete condition
guarantees exactly ``f_v`` occurrences of ``v`` were subtracted,
unfolding restores counters **bit-identical** to a ``topk_size=0`` run
of the same stream — pure linearity again.  On linear counters every
composition the paper proves for plain sketches works: summing across
shards, summing across window buckets, differencing landmarks.  The
module-level :func:`refold` then rebuilds a tracker over any candidate
value set via :meth:`TopKTracker.bulk_build`, re-deleting the (now
combined) heavy mass and re-establishing the delete condition.  This is
what makes top-k state *mergeable*: unfold each operand, sum the linear
counters, refold over the union of previously tracked values.
"""

from __future__ import annotations

import heapq
import threading
from typing import Iterable, Mapping

import numpy as np

from repro.errors import ConfigError
from repro.sketch.ams import SketchMatrix


def fold_vector(sketch: SketchMatrix, state: Mapping[int, int]) -> np.ndarray:
    """The per-instance counter mass a tracked state has deleted.

    ``Σ_{v ∈ state} ξ(v) · f_v`` over ``sketch``'s ξ family — exactly
    what Algorithm 4's deletions subtracted (delete condition), so
    *adding* it to counters undoes the fold.  Exact int64 arithmetic:
    callers on the bit-identity path (merge, unfold) rely on that.
    """
    signs = sketch.xi.xi_values(list(state))
    freqs = np.asarray(list(state.values()), dtype=np.int64)
    return signs @ freqs


class TopKTracker:  # sketchlint: thread-safe
    """Top-k frequent-value tracking bound to one sketch matrix.

    Parameters
    ----------
    size:
        ``k``: number of frequent values tracked.
    sketch:
        The :class:`SketchMatrix` this tracker deletes from / adds back
        to.  With virtual streams there is one tracker per stream
        (Section 5.3's combination note).

    Thread-safe: one mutex serialises Algorithm 4's transitions with the
    query-time :meth:`adjustment` and the :meth:`snapshot` /
    :meth:`restore` pair, so the delete-condition invariant (tracked
    frequency ⇔ deleted occurrences) is never observed half-applied.
    """

    def __init__(self, size: int, sketch: SketchMatrix):
        if size < 1:
            raise ConfigError(f"top-k size must be >= 1, got {size}")
        self.size = size
        self.sketch = sketch
        self._freq: dict[int, int] = {}  # the paper's L and H values
        self._heap: list[tuple[int, int]] = []  # (freq, value); lazy deletion
        self._lock = threading.Lock()
        #: Lifetime churn accounting (plain ints, always on — surfaced as
        #: pull counters by repro.obs; not part of snapshot state).
        self.n_evictions = 0
        self.n_rearrivals = 0

    # ------------------------------------------------------------------
    # Streaming (Algorithm 4)
    # ------------------------------------------------------------------
    def process(self, value: int) -> None:
        """One invocation of Algorithm 4 for an arriving value.

        ξ(value) is evaluated once and reused for the add-back, the
        estimate, and the deletion — the hot path of bulk construction.
        """
        with self._lock:
            self._process(value)

    def _process(self, value: int) -> None:  # sketchlint: guarded-by=_lock
        sketch = self.sketch
        signs = sketch.xi.xi(value)
        tracked = self._freq.pop(value, None)
        if tracked is not None:
            self.n_rearrivals += 1
            sketch.counters += tracked * signs  # add back (lines 1-7)
        estimate = int(round(sketch.boost(signs * sketch.counters)))
        if estimate <= 0:
            return
        self._prune()
        if len(self._freq) >= self.size:
            root_freq, root_value = self._heap[0]
            if estimate <= root_freq:
                return
            # Evict the least frequent tracked value (lines 10-13).
            self.n_evictions += 1
            heapq.heappop(self._heap)
            del self._freq[root_value]
            sketch.update(root_value, root_freq)
            self._prune()
        # Track the newcomer and delete its occurrences (lines 14-18).
        self._freq[value] = estimate
        heapq.heappush(self._heap, (estimate, value))
        sketch.counters -= estimate * signs

    def process_many(self, values: Iterable[int]) -> None:
        with self._lock:
            for value in values:
                self._process(value)

    def bulk_build(self, values: list[int], candidate_factor: int = 2) -> None:
        """Emulate the end-of-stream tracker state over distinct values.

        Estimates every value's frequency in one vectorised pass, then
        replays Algorithm 4 on the top ``candidate_factor × size``
        candidates in descending estimated order.  By the end of a real
        stream, the tracker holds the values with the largest estimated
        frequencies — exactly what this produces — without paying the
        per-occurrence cost; the experiment sweeps rely on it.
        """
        if not values:
            return
        arr = self.sketch.xi.to_field(values, count=len(values))
        with self._lock:
            estimates = self.sketch.estimate_batch(arr)
            order = np.argsort(-estimates)
            limit = min(len(values), candidate_factor * self.size)
            for index in order[:limit]:
                if estimates[index] <= 0:
                    break
                self._process(values[int(index)])

    def _prune(self) -> None:  # sketchlint: guarded-by=_lock
        """Drop heap entries invalidated by untracking / re-insertion."""
        heap = self._heap
        while heap and self._freq.get(heap[0][1]) != heap[0][0]:
            heapq.heappop(heap)

    # ------------------------------------------------------------------
    # Query-time compensation
    # ------------------------------------------------------------------
    def adjustment(self, query_values: Iterable[int]) -> np.ndarray | None:
        """Per-instance vector ``d = Σ ξ_q f_q`` over tracked query values.

        ``None`` when no queried value is tracked (the common case) so
        callers can skip the add.
        """
        with self._lock:
            relevant = [(q, self._freq[q]) for q in dict.fromkeys(query_values)
                        if q in self._freq]
            if not relevant:
                return None
            signs = self.sketch.xi.xi_values([q for q, _ in relevant])
            freqs = np.asarray([f for _, f in relevant], dtype=np.int64)
            return signs @ freqs

    # ------------------------------------------------------------------
    # Fold/unfold protocol (see the module docstring)
    # ------------------------------------------------------------------
    def unfold(self) -> dict[int, int]:
        """Add every tracked frequency back and clear the tracker.

        The inverse of the fold Algorithm 4 performs: afterwards the
        bound sketch holds the **pure linear counters** of the stream it
        saw — bit-identical to a ``topk_size=0`` run (the delete
        condition guarantees exactly the returned frequencies were
        deleted, and int64 addition is exact).  Returns the tracked
        value → frequency map that was folded, which callers typically
        feed to :func:`refold` (possibly unioned with other unfolds)
        after combining counters.
        """
        with self._lock:
            state = self._freq
            self._freq = {}
            self._heap = []
            if state:
                self.sketch.counters += fold_vector(self.sketch, state)
            return state

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[int, int]:
        """The tracker's complete serialisable state.

        A plain value → deleted-frequency map; together with the bound
        sketch's counters (from which exactly these frequencies have been
        deleted) it captures everything :meth:`restore` needs.
        """
        with self._lock:
            return dict(self._freq)

    def restore(self, state: Mapping[int, int]) -> None:
        """Install state captured by :meth:`snapshot`, replacing any
        current state.

        Re-establishes the delete-condition invariant on the tracker's
        side: the heap is rebuilt to agree exactly with the frequency
        map, so every future eviction adds back precisely the stored
        frequency.  The *counter* side of the invariant is the caller's
        contract — the bound sketch must hold counters from which these
        frequencies were already deleted (i.e. restored from the same
        snapshot as ``state``).

        Raises :class:`~repro.errors.ConfigError` for states this tracker
        cannot have produced (non-positive frequencies, more entries than
        ``size``).
        """
        freq: dict[int, int] = {}
        for value, count in state.items():
            value, count = int(value), int(count)
            if count <= 0:
                raise ConfigError(
                    f"tracked frequency must be positive, got {count} for "
                    f"value {value}"
                )
            freq[value] = count
        if len(freq) > self.size:
            raise ConfigError(
                f"state tracks {len(freq)} values, tracker size is {self.size}"
            )
        heap = [(count, value) for value, count in freq.items()]
        heapq.heapify(heap)
        with self._lock:
            self._freq = freq
            self._heap = heap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tracked(self) -> dict[int, int]:
        """Copy of the tracked value → deleted-frequency map."""
        with self._lock:
            return dict(self._freq)

    @property
    def n_tracked(self) -> int:
        with self._lock:
            return len(self._freq)

    def deleted_frequency(self, value: int) -> int:
        """Occurrences of ``value`` currently deleted from the sketch."""
        with self._lock:
            return self._freq.get(value, 0)

    def deleted_self_join_mass(self) -> int:
        """``Σ f_v²`` over tracked values — the self-join mass removed."""
        with self._lock:
            return sum(f * f for f in self._freq.values())

    def memory_bytes(self) -> int:
        """Paper-style accounting: 16 bytes per tracked slot (value +
        frequency), for ``size`` slots."""
        return self.size * 16

    def __repr__(self) -> str:
        return f"TopKTracker(size={self.size}, tracked={self.n_tracked})"


def refold(
    sketch: SketchMatrix, candidates: Iterable[int], size: int
) -> TopKTracker:
    """Build a fresh tracker over *linear* counters from candidate values.

    The second half of the fold/unfold protocol: given a sketch whose
    counters are pure sums (every contributing tracker unfolded), replay
    :meth:`TopKTracker.bulk_build` over the union of candidate values —
    typically the values the unfolded trackers had been tracking, which
    by construction include every heavy hitter either operand knew
    about.  The returned tracker has re-deleted the top estimates, so
    the delete-condition invariant holds on the combined stream exactly
    as it would had one tracker watched it end to end.
    """
    tracker = TopKTracker(size, sketch)
    distinct = [int(value) for value in dict.fromkeys(candidates)]
    tracker.bulk_build(distinct)
    return tracker
