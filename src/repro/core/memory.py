"""Memory accounting matching the paper's reported totals.

Section 7.5: "The total memory allocated for the synopses in SketchTree
is equal to sum of the memory required for s1 × s2 iid instances of AMS
sketches, top-k data structures and independent random seeds".  With the
paper's parameters (s1 = 25, s2 = 7, p = 229 virtual streams) the sketch
component alone is ``25 · 7 · 229 · 8 B ≈ 320 KB`` — matching the 316 KB
plotted in Figure 10(a) — so we use the same unit costs: 8 bytes per
counter, 16 bytes per top-k slot, 8 bytes per ξ seed coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryReport:
    """Breakdown of a synopsis' memory, in bytes.

    ``provisioned_*`` is the paper-style total for a fully allocated
    synopsis (all ``p`` virtual streams); ``allocated_*`` is what this
    process actually holds given lazy stream allocation.
    """

    provisioned_sketch_bytes: int
    provisioned_topk_bytes: int
    seed_bytes: int
    allocated_sketch_bytes: int
    allocated_topk_bytes: int

    @property
    def provisioned_total(self) -> int:
        """The paper's "total memory allocated" figure."""
        return (
            self.provisioned_sketch_bytes
            + self.provisioned_topk_bytes
            + self.seed_bytes
        )

    @property
    def allocated_total(self) -> int:
        return self.allocated_sketch_bytes + self.allocated_topk_bytes + self.seed_bytes

    def format(self) -> str:
        """Human-readable one-liner (KB/MB like the paper's captions)."""
        return (
            f"sketches {_fmt(self.provisioned_sketch_bytes)} + "
            f"top-k {_fmt(self.provisioned_topk_bytes)} + "
            f"seeds {_fmt(self.seed_bytes)} = {_fmt(self.provisioned_total)}"
        )


def _fmt(n_bytes: int) -> str:
    if n_bytes >= 1 << 20:
        return f"{n_bytes / (1 << 20):.2f} MB"
    if n_bytes >= 1 << 10:
        return f"{n_bytes / (1 << 10):.0f} KB"
    return f"{n_bytes} B"
