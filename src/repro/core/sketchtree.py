"""The SketchTree synopsis: the paper's primary contribution, end to end.

Per arriving tree (Algorithm 1): EnumTree enumerates every pattern
occurrence with 1..k edges; each becomes extended Prüfer sequences, then a
one-dimensional value (Rabin residue or pairing value); the value routes
to a virtual stream by residue mod ``p`` and updates that stream's
``s1 × s2`` AMS instances; optionally, top-k tracking (Algorithm 4) runs
per value.

Per query (Algorithm 2 + extensions): the query pattern(s) are encoded
identically, the relevant virtual-stream sketches are summed, deleted
top-k mass of queried values is compensated, and the median-of-means
estimator answers — for single patterns, unordered patterns (Section 3.3),
sums of distinct patterns (Theorem 2), arithmetic expressions (Section 4),
and ``*``/``//`` queries resolved against a structural summary
(Section 6.2).

Every ingestion path — :meth:`update` (tree at a time), the cross-tree
micro-batched :meth:`update_batch`, :meth:`update_from_patterns` (the
SAX hook), :meth:`delete_tree` (negative counts) and the bulk loaders
:meth:`ingest_counts` / :meth:`ingest_value_counts` — now funnels
through one columnar carrier (:class:`~repro.core.batch.EncodedBatch`):
patterns are encoded in a batch, routed to virtual streams with a
single grouped pass, and applied with one vectorised sketch update per
touched stream.  Because the AMS projection is linear and counters are
exact int64 sums, every path produces bit-identical sketch state for
the same occurrence multiset; top-k processing (Algorithm 4) is the one
order-sensitive part, so batched paths replay it per tree segment in
arrival order (streaming paths) or emulate it per stream
(:meth:`ingest_counts`, which experiments use to sweep configurations).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np

from repro.core.batch import EncodedBatch
from repro.core.config import TOPK_RNG_SALT, XI_SEED_OFFSET, SketchTreeConfig
from repro.core.encoding import PatternEncoder
from repro.core.expressions import Expression, required_independence
from repro.core.memory import MemoryReport
from repro.core.topk import fold_vector
from repro.core.virtual import VirtualStreams
from repro.enumtree.enumerate import PatternTableMemo, collect_forest_patterns
from repro.errors import ConfigError, QueryError
from repro.obs.registry import COUNT_BUCKETS, Registry, get_default_registry
from repro.query.pattern import arrangements, pattern_edges, validate_pattern
from repro.query.summary import QueryNode, StructuralSummary
from repro.sketch.ams import SketchMatrix
from repro.trees.tree import LabeledTree, Nested


def _any_label_has_or(pattern: Nested) -> bool:
    from repro.query.pattern import OR_SEPARATOR

    stack = [pattern]
    while stack:
        label, children = stack.pop()
        if OR_SEPARATOR in label:
            return True
        stack.extend(children)
    return False


def coerce_pattern(query) -> Nested:
    """Accept a nested tuple, s-expression string, tree, or plain
    :class:`QueryNode`, and return the canonical nested-tuple pattern."""
    if isinstance(query, str):
        from repro.trees.builders import from_sexpr

        return from_sexpr(query).to_nested()
    if isinstance(query, LabeledTree):
        return query.to_nested()
    if isinstance(query, QueryNode):
        return query.to_pattern()
    if isinstance(query, tuple):
        return query
    raise QueryError(f"cannot interpret {type(query).__name__} as a tree pattern")


class SketchTree:  # sketchlint: single-writer
    """The streaming synopsis for approximate tree pattern counts.

    >>> st = SketchTree(SketchTreeConfig(s1=30, s2=5, max_pattern_edges=3,
    ...                                  n_virtual_streams=31, seed=7))
    >>> from repro.trees import from_sexpr
    >>> st.update(from_sexpr("(A (B) (C))"))
    >>> round(st.estimate_ordered("(A (B))"))
    1

    **Thread-ownership contract (single-writer).**  One ingest thread
    owns all mutation of a synopsis (``update*``, ``ingest*``,
    ``delete_tree``); any number of threads may call ``estimate_*``
    concurrently with it.  Concurrent reads of the int64 counters are
    racy but benign: an estimate computed mid-batch is an estimate of a
    valid prefix of the stream, because counter updates are pure
    additions (AMS linearity) — there is no invalid intermediate state
    to observe.  The internally locked components (the pattern encoder,
    per-stream top-k trackers, metrics) stay consistent on their own.
    Cross-thread *combination* happens only through :meth:`merge` over
    quiesced shards, or through snapshots.  See docs/concurrency.md for
    the full model; sketchlint's SKL2xx phase enforces the declarations.
    """

    def __init__(
        self,
        config: SketchTreeConfig | None = None,
        metrics: Registry | None = None,
        **overrides,
    ):
        if config is None:
            config = SketchTreeConfig(**overrides)
        elif overrides:
            raise ConfigError("pass either a config object or keyword overrides")
        self.config = config
        encoder_seed = (
            config.encoder_seed if config.encoder_seed is not None else config.seed
        )
        self._encoder = PatternEncoder(
            mapping=config.mapping,
            degree=config.fingerprint_degree,
            seed=encoder_seed,
        )
        self._streams = VirtualStreams(
            n_streams=config.n_virtual_streams,
            s1=config.s1,
            s2=config.s2,
            independence=config.independence,
            seed=config.seed + XI_SEED_OFFSET,
            topk_size=config.topk_size,
            xi_family=config.xi_family,
        )
        self._rng = np.random.default_rng(config.seed ^ TOPK_RNG_SALT)
        # Canonical-subtree → pattern-table cache shared across every tree
        # this synopsis ingests.  Pure enumeration speedup (bit-identical
        # output); owned by the single ingest thread, never serialised.
        self._enum_memo = PatternTableMemo()
        self.summary: StructuralSummary | None = (
            StructuralSummary() if config.maintain_summary else None
        )
        self.n_trees = 0
        self.n_values = 0  # pattern occurrences processed ("sequences")
        self.set_metrics(metrics)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def set_metrics(self, metrics: Registry | None) -> None:
        """Attach a metrics registry (``None`` → the process default).

        Metrics are pure observation: nothing here touches sketch state,
        and the registry is not serialised into snapshots — a restored
        synopsis starts on the process default and can be re-attached
        with this method.  Pull gauges (allocated streams, counter L2
        mass, top-k churn) are registered against the synopsis' live
        state; re-registering the same names rebinds them, so the last
        synopsis to attach owns them (the registry keeps the synopsis
        alive through those callbacks).
        """
        obs = metrics if metrics is not None else get_default_registry()
        self._obs = obs
        if not obs.enabled:
            return
        streams = self._streams
        encoder = self._encoder
        obs.gauge(
            "virtual_streams_allocated",
            help="virtual streams that received at least one value",
            fn=lambda: streams.n_allocated,
        )
        obs.gauge(
            "sketch_counter_l2_mass",
            help="sum of squared AMS counters across allocated streams",
            fn=lambda: sum(
                float(np.dot(c, c))
                for c in (
                    matrix.counters.astype(np.float64)
                    for _, matrix in streams.iter_sketches()
                )
            ),
        )
        obs.counter(
            "encoder_cache_hits_total",
            help="pattern encodings served from the LRU memo",
            fn=lambda: encoder.cache_hits,
        )
        obs.counter(
            "encoder_cache_misses_total",
            help="pattern encodings computed (LRU misses)",
            fn=lambda: encoder.cache_misses,
        )
        obs.gauge(
            "encoder_cache_size",
            help="distinct patterns currently memoised",
            fn=lambda: encoder.cache_size,
        )
        enum_memo = self._enum_memo
        obs.counter(
            "enum_memo_hits_total",
            help="node tables reused across structurally identical subtrees",
            fn=lambda: enum_memo.hits,
        )
        obs.counter(
            "enum_memo_misses_total",
            help="node tables built fresh (first sight of a subtree shape)",
            fn=lambda: enum_memo.misses,
        )
        obs.gauge(
            "enum_memo_shapes",
            help="distinct subtree shapes currently interned",
            fn=lambda: enum_memo.n_shapes,
        )
        if self.config.topk_size:
            obs.counter(
                "topk_evictions_total",
                help="tracked values evicted by larger newcomers (Algorithm 4)",
                fn=lambda: sum(
                    tracker.n_evictions for _, tracker in streams.iter_trackers()
                ),
            )
            obs.counter(
                "topk_rearrivals_total",
                help="re-arrivals of already-tracked values (Algorithm 4)",
                fn=lambda: sum(
                    tracker.n_rearrivals for _, tracker in streams.iter_trackers()
                ),
            )
            obs.gauge(
                "topk_deleted_self_join_mass",
                help="self-join mass currently deleted from the sketches",
                fn=lambda: float(
                    sum(
                        tracker.deleted_self_join_mass()
                        for _, tracker in streams.iter_trackers()
                    )
                ),
            )

    @property
    def metrics(self) -> Registry:
        """The attached metrics registry (the no-op default unless set)."""
        return self._obs

    # ------------------------------------------------------------------
    # Stream side
    # ------------------------------------------------------------------
    def update(self, tree: LabeledTree) -> None:
        """Process one arriving tree (paper Algorithm 1)."""
        self.update_batch((tree,))

    def update_batch(self, trees: Iterable[LabeledTree]) -> None:
        """Process several arriving trees as one cross-tree micro-batch.

        Bit-identical to calling :meth:`update` per tree with the same
        seed: counters are exact int64 sums (linearity — grouping is
        free), and the order-sensitive parts are replayed faithfully —
        top-k processing runs per tree segment in arrival order against
        counters that include exactly the trees seen so far, and the
        sampling RNG draws one vector per segment, consuming the stream
        identically to the per-value draws.  The win is everywhere else:
        one batched encode, one grouped routing pass, and one vectorised
        sketch update per touched stream per batch (with top-k off) or
        per tree (with top-k on).
        """
        trees = list(trees)
        if not trees:
            return
        obs = self._obs
        if not obs.enabled:
            patterns, offsets = collect_forest_patterns(
                trees, self.config.max_pattern_edges, self._enum_memo
            )
        else:
            with obs.span("ingest_enumerate_seconds"):
                patterns, offsets = collect_forest_patterns(
                    trees, self.config.max_pattern_edges, self._enum_memo
                )
            obs.histogram(
                "ingest_patterns_per_tree", buckets=COUNT_BUCKETS
            ).observe_batch(np.diff(offsets))
        batch = self._encode_batch(patterns, tree_offsets=offsets)
        self._ingest_batch(batch, track=True)
        self.n_trees += len(trees)
        self.n_values += len(batch)
        if self.summary is not None:
            for tree in trees:
                self.summary.add_tree(tree)

    def update_from_patterns(self, patterns: Iterable[Nested]) -> None:
        """Process one tree given its already-enumerated pattern multiset.

        The public hook for external enumerators (the SAX-style streaming
        path in :mod:`repro.stream.sax`, custom parsers, test harnesses):
        callers hand over exactly what ``EnumTree(T, k)`` would have
        produced for one arriving tree, and the synopsis advances as if
        :meth:`update` had seen the tree — same sketch state, same top-k
        processing, same bookkeeping.  The structural summary (which
        needs whole trees) is not updated on this path.
        """
        patterns = list(patterns)
        batch = self._encode_batch(patterns, tree_offsets=[0, len(patterns)])
        self._ingest_batch(batch, track=True)
        self.n_trees += 1
        self.n_values += len(batch)

    def delete_tree(self, tree: LabeledTree) -> None:
        """Remove a previously streamed tree from the synopsis.

        Exploits AMS deletability (Section 3): the same batch path runs
        with negative counts.  Top-k tracked frequencies are *not*
        revised (they remain estimates of what was deleted when tracking
        ran); the structural summary, being monotone, is also left
        unchanged.
        """
        patterns, offsets = collect_forest_patterns(
            (tree,), self.config.max_pattern_edges, self._enum_memo
        )
        batch = self._encode_batch(patterns, count=-1, tree_offsets=offsets)
        self._ingest_batch(batch, track=False)
        self.n_trees -= 1
        self.n_values -= len(batch)

    def ingest(
        self, trees: Iterable[LabeledTree], batch_trees: int = 64
    ) -> "SketchTree":
        """Stream a whole iterable of trees in micro-batches.

        Bit-identical to looping :meth:`update` (see
        :meth:`update_batch`); ``batch_trees`` only sets how much
        encoding and routing work is amortised per pass.
        """
        if batch_trees < 1:
            raise ConfigError(f"batch_trees must be >= 1, got {batch_trees}")
        chunk: list[LabeledTree] = []
        for tree in trees:
            chunk.append(tree)
            if len(chunk) >= batch_trees:
                self.update_batch(chunk)
                chunk.clear()
        if chunk:
            self.update_batch(chunk)
        return self

    def ingest_counts(
        self,
        counts: dict[Nested, int] | Counter,
        n_trees: int = 0,
    ) -> "SketchTree":
        """Bulk-load a pattern → occurrence-count table.

        The sketch state equals streaming the same occurrences one at a
        time (linearity of the AMS projection).  When top-k is enabled,
        Algorithm 4 is emulated per stream with
        :meth:`~repro.core.topk.TopKTracker.bulk_build` — by the end of a
        real stream the tracker likewise holds the values with the largest
        estimated frequencies, so the emulation preserves the strategy's
        effect (the self-join-size reduction) without replaying every
        occurrence.
        """
        patterns = list(counts.keys())
        values = self._encoder.encode_batch(patterns)
        by_value: dict[int, int] = {}
        for value, count in zip(values, counts.values()):
            by_value[value] = by_value.get(value, 0) + count
        return self.ingest_value_counts(by_value, n_trees=n_trees)

    def ingest_value_counts(
        self, counts_by_value: dict[int, int], n_trees: int = 0
    ) -> "SketchTree":
        """Bulk-load an already-encoded value → count table.

        Advanced path for harnesses that pre-encode a stream once (with a
        pinned ``encoder_seed``) and replay it under many sketch seeds.
        The caller is responsible for having produced the values with an
        encoder identical to this synopsis' (same mapping, degree and
        encoder seed) — otherwise queries will not line up.
        """
        raw = list(counts_by_value.keys())
        counts = np.fromiter(
            counts_by_value.values(), dtype=np.int64, count=len(raw)
        )
        batch = EncodedBatch.build(
            raw, self.config.n_virtual_streams, self._streams.xi, counts=counts
        )
        self._streams.update_batch(batch)
        self.n_trees += n_trees
        self.n_values += batch.total_count()
        if self.config.topk_size:
            # Algorithm 4 emulation, per touched stream, over that
            # stream's distinct values in first-seen order — the same
            # residue grouping the sketch update used.
            for residue, indices in batch.iter_residue_groups():
                self._streams.tracker(residue).bulk_build(
                    [raw[i] for i in indices]
                )
        return self

    # ------------------------------------------------------------------
    # The shared columnar ingest path
    # ------------------------------------------------------------------
    def _encode_batch(
        self,
        patterns: list[Nested],
        count: int = 1,
        tree_offsets: list[int] | None = None,
    ) -> EncodedBatch:
        """Encode a pattern multiset into a routed columnar batch."""
        obs = self._obs
        if not obs.enabled:
            raw = self._encoder.encode_batch(patterns)
            return EncodedBatch.build(
                raw,
                self.config.n_virtual_streams,
                self._streams.xi,  # the ξ family owns value → field reduction
                count=count,
                tree_offsets=tree_offsets,
            )
        with obs.span("ingest_encode_seconds"):
            raw = self._encoder.encode_batch(patterns)
            return EncodedBatch.build(
                raw,
                self.config.n_virtual_streams,
                self._streams.xi,
                count=count,
                tree_offsets=tree_offsets,
            )

    def _ingest_batch(self, batch: EncodedBatch, track: bool) -> None:
        """Apply a batch to the virtual streams (+ optional top-k).

        With top-k off (or ``track=False``) the whole batch is applied
        in one grouped pass — linearity makes any grouping bit-identical.
        With top-k on, Algorithm 4 reads the counters mid-stream, so the
        batch is walked per tree segment: apply a tree's values, then
        run its (sampled) top-k processing, exactly as the per-tree
        streaming loop would.
        """
        obs = self._obs
        if not obs.enabled:
            self._apply_batch(batch, track)
            return
        with obs.span("ingest_apply_seconds"):
            self._apply_batch(batch, track)
        obs.counter(
            "ingest_values_total",
            help="encoded pattern occurrences applied to the sketches",
        ).inc(len(batch))

    def _apply_batch(self, batch: EncodedBatch, track: bool) -> None:
        if track and self.config.topk_size and len(batch):
            for start, stop in batch.tree_segments():
                segment = batch.segment(start, stop)
                self._streams.update_batch(segment)
                self._track_segment(segment)
        else:
            self._streams.update_batch(batch)

    def _track_segment(self, segment: EncodedBatch) -> None:
        """Top-k processing for one tree's values (Algorithm 4 + sampling).

        One vectorised RNG draw decides every acceptance for the
        segment; the draw consumes the generator stream exactly as the
        legacy per-value ``random()`` calls did, so decisions are
        bit-identical under the same seed.  (``topk_probability >= 1``
        draws nothing, also matching the legacy path.)
        """
        n = len(segment)
        if n == 0:
            return
        probability = self.config.topk_probability
        if probability >= 1.0:
            accepted: Iterable[int] = range(n)
        else:
            accepted = np.flatnonzero(self._rng.random(n) < probability)
        residues = segment.residues
        raw = segment.raw
        streams = self._streams
        for i in accepted:
            streams.tracker(int(residues[i])).process(raw[i])

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------
    def estimate_ordered(self, query) -> float:
        """Approximate ``COUNT_ord(Q)`` (Theorem 1 estimator)."""
        pattern = self._checked(query)
        value = self._encoder.encode(pattern)
        view = self._view_for([value])
        return view.estimate(value)

    def estimate_ordered_interval(self, query, confidence: float = 0.9):
        """``COUNT_ord(Q)`` with a self-reported Chebyshev error bar.

        The half-width comes from Theorem 1's variance bound with the
        *residual* self-join size of the query's virtual stream, which
        the sketch estimates about itself (AMS's original F2 purpose) —
        no extra state, conservative by construction.  See
        :mod:`repro.core.intervals`.
        """
        from repro.core.intervals import Interval, chebyshev_half_width

        pattern = self._checked(query)
        value = self._encoder.encode(pattern)
        residue = self._streams.residue(value)
        matrix = self._streams.sketch_if_allocated(residue)
        if matrix is None:
            return Interval(0.0, 0.0, confidence, 0.0)
        tracker = (
            self._streams.tracker(residue) if self.config.topk_size else None
        )
        adjust = tracker.adjustment([value]) if tracker else None
        estimate = matrix.estimate(value, adjust=adjust)
        # The residual stream (top-k mass deleted) drives the noise.
        self_join = max(0.0, matrix.estimate_self_join_size())
        half_width = chebyshev_half_width(self_join, self.config.s1, confidence)
        return Interval(estimate, half_width, confidence, self_join)

    def estimate_self_join_size(self) -> float:
        """Self-reported residual ``SJ(S) = Σ_r SJ(S_r)`` across streams.

        "Residual" because top-k-deleted mass is excluded — which is
        exactly the quantity Theorem 1's error bound depends on after the
        Section 5.2 optimisation.
        """
        total = 0.0
        for _, matrix in self._streams.iter_sketches():
            total += max(0.0, matrix.estimate_self_join_size())
        return total

    def estimate_unordered(self, query) -> float:
        """Approximate ``COUNT(Q)``: the Section 3.3 sum over the distinct
        ordered arrangements of the pattern."""
        pattern = self._checked(query)
        return self._estimate_distinct_sum(
            [self._encoder.encode(p) for p in arrangements(pattern)]
        )

    def estimate_sum(self, queries: Iterable) -> float:
        """Approximate ``Σ_j COUNT_ord(Q_j)`` for distinct patterns
        (Theorem 2 estimator — a single combined sketch product, not a sum
        of per-pattern estimates)."""
        patterns = [self._checked(q) for q in queries]
        distinct = list(dict.fromkeys(patterns))
        if len(distinct) != len(patterns):
            raise QueryError(
                "estimate_sum requires distinct patterns (Theorem 2); "
                "duplicates were passed"
            )
        return self._estimate_distinct_sum(
            [self._encoder.encode(p) for p in distinct]
        )

    def estimate_or(self, query) -> float:
        """Approximate the count of a pattern with ``|`` OR-predicates in
        its labels (paper Example 5): the sum over the expanded distinct
        patterns."""
        from repro.query.pattern import expand_or_labels

        pattern = coerce_pattern(query)
        expanded = expand_or_labels(pattern)
        for p in expanded:
            self._check_size(p)
        return self._estimate_distinct_sum(
            [self._encoder.encode(p) for p in expanded]
        )

    def estimate_expression(self, expression: Expression) -> float:
        """Approximate a Section 4 query expression (``+``, ``−``, ``×``).

        Accepts an :class:`~repro.core.expressions.Expression` or a
        string such as ``"COUNT(A/B) * COUNT(A/C) - COUNT(B/C)"``
        (parsed by :func:`~repro.core.expressions.parse_expression`).
        Raises :class:`~repro.errors.ConfigError` when the configured ξ
        independence is below the expression's requirement
        (:func:`~repro.core.expressions.required_independence`).
        """
        if isinstance(expression, str):
            from repro.core.expressions import parse_expression

            expression = parse_expression(expression)
        needed = required_independence(expression)
        if self.config.independence < needed:
            raise ConfigError(
                f"expression needs {needed}-wise independent xi; synopsis was "
                f"built with independence={self.config.independence}"
            )
        terms = expression.expand()
        atoms = expression.atoms()
        for atom in atoms:
            self._check_size(atom)
        atom_values = {atom: self._encoder.encode(atom) for atom in atoms}
        view = self._view_for(list(atom_values.values()))
        counters = view.counters.astype(np.float64)
        z = np.zeros_like(counters)
        from math import factorial

        for coeff, term_atoms in terms:
            degree = len(term_atoms)
            xi_prod = view.xi.xi_values(
                [atom_values[a] for a in term_atoms]
            ).prod(axis=1)
            z += coeff * (counters**degree) / factorial(degree) * xi_prod
        return view.boost(z)

    def estimate_extended(
        self, query: QueryNode, summary: StructuralSummary | None = None
    ) -> float:
        """Approximate the count of a ``*`` / ``//`` query (Section 6.2).

        Resolves the query against the structural summary (the synopsis'
        own when built with ``maintain_summary=True``, or one supplied by
        the caller) into distinct parent-child patterns and estimates
        their total frequency.
        """
        summary = summary if summary is not None else self.summary
        if summary is None:
            raise QueryError(
                "extended queries need a structural summary: construct the "
                "synopsis with maintain_summary=True or pass one explicitly"
            )
        resolved = summary.resolve(query, max_edges=self.config.max_pattern_edges)
        if not resolved:
            return 0.0
        return self._estimate_distinct_sum(
            [self._encoder.encode(p) for p in resolved]
        )

    def estimate_xpath(self, text: str) -> float:
        """Approximate the count of an XPath-subset query.

        Parses ``text`` with :func:`repro.query.xpath.parse_xpath` and
        dispatches: plain paths (names and predicates only) go through
        the ordered estimator (with OR-label expansion, Example 5);
        queries using ``*`` or ``//`` go through the Section 6.2
        resolution and therefore need a structural summary.

        Remember the paper's semantic note: this is the *pattern
        occurrence* count, not XPath's target-node count.
        """
        from repro.query.xpath import parse_xpath

        query = parse_xpath(text)
        if not query.is_plain():
            return self.estimate_extended(query)
        pattern = query.to_pattern()
        if _any_label_has_or(pattern):
            return self.estimate_or(pattern)
        return self.estimate_ordered(pattern)

    def _estimate_distinct_sum(self, values: list[int]) -> float:
        if not values:
            return 0.0
        return self._streams.estimate_sum_grouped(values)

    def _view_for(self, values: list[int]) -> SketchMatrix:
        residues = [self._streams.residue(v) for v in values]
        return self._streams.view(residues, values)

    def _checked(self, query) -> Nested:
        pattern = coerce_pattern(query)
        self._check_size(pattern)
        return pattern

    def _check_size(self, pattern: Nested) -> None:
        validate_pattern(pattern)
        edges = pattern_edges(pattern)
        if edges < 1 or edges > self.config.max_pattern_edges:
            raise QueryError(
                f"pattern has {edges} edges; this synopsis counts patterns "
                f"with 1..{self.config.max_pattern_edges} edges "
                f"(larger patterns are the paper's stated future work)"
            )

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def _tracker_items(self) -> list:
        """Snapshot the ``(residue, tracker)`` pairs, retry-safe.

        The writer thread allocates trackers while readers may be
        iterating the stream table; a mid-scan allocation raises
        ``RuntimeError``, and retrying until a clean pass is sound (the
        GIL makes each step atomic, and allocations are rare).
        """
        for _ in range(8):
            try:
                return list(self._streams.iter_trackers())
            except RuntimeError:
                continue
        return list(self._streams.iter_trackers())

    def tracked(self) -> dict[int, int]:
        """Tracked value → deleted-frequency map across virtual streams.

        Empty when ``topk_size=0``.  The raw form of the "heavy
        hitters" list — see :meth:`tracked_patterns` for the named one.
        """
        total: dict[int, int] = {}
        for _, tracker in self._tracker_items():
            total.update(tracker.tracked)
        return total

    def tracked_patterns(self, limit: int | None = None) -> list[dict]:
        """The synopsis' tracked patterns, most frequent first.

        Each entry carries the encoded ``value``, the tracked
        ``frequency``, and the decoded ``pattern`` nested tuple when the
        encoder still memoises it (``None`` after LRU eviction, or on a
        merged synopsis whose fresh encoder never saw the stream — the
        value is still servable, just nameless; callers with access to
        the ingesting encoders can re-resolve).
        """
        ranked = sorted(self.tracked().items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            ranked = ranked[:limit]
        names = self._encoder.lookup_values([value for value, _ in ranked])
        return [
            {"value": value, "frequency": freq, "pattern": names.get(value)}
            for value, freq in ranked
        ]

    def deleted_self_join_mass(self) -> int:
        """``Σ f_v²`` over tracked values across streams — the self-join
        mass the trackers hold out of the counters (what the Section 5.2
        optimisation bought).  0 when ``topk_size=0``."""
        return sum(
            tracker.deleted_self_join_mass()
            for _, tracker in self._tracker_items()
        )

    def memory_report(self) -> MemoryReport:
        """Paper-style memory accounting (see :mod:`repro.core.memory`)."""
        cfg = self.config
        per_stream_sketch = cfg.s1 * cfg.s2 * 8
        per_stream_topk = cfg.topk_size * 16
        allocated_topk = sum(
            tracker.memory_bytes() for _, tracker in self._streams.iter_trackers()
        )
        return MemoryReport(
            provisioned_sketch_bytes=cfg.n_virtual_streams * per_stream_sketch,
            provisioned_topk_bytes=cfg.n_virtual_streams * per_stream_topk,
            seed_bytes=cfg.s1 * cfg.s2 * cfg.independence * 8,
            allocated_sketch_bytes=self._streams.n_allocated * per_stream_sketch,
            allocated_topk_bytes=allocated_topk,
        )

    @property
    def streams(self) -> VirtualStreams:
        """The underlying virtual-stream partition (read-mostly access)."""
        return self._streams

    @property
    def encoder(self) -> PatternEncoder:
        """The pattern → value encoder (shared with analyses)."""
        return self._encoder

    def merge(self, other: "SketchTree") -> "SketchTree":
        """Merge another synopsis built with the *same config and seed*
        over a disjoint sub-stream (distributed-ingest scenario).

        This is the cross-thread combination point of the serving tier:
        each shard's ingest thread owns its synopsis; a query/admin
        thread merges *quiesced* shards (no in-flight updates) into a
        fresh synopsis.  Because counters are exact int64 sums and every
        shard shares one ξ family, the merge is bit-identical to a
        single-threaded run over the concatenated stream (AMS
        linearity) — pinned by ``tests/test_thread_safety.py``.

        Top-k-bearing operands compose through the fold/unfold protocol
        (:mod:`repro.core.topk`): the summed counters are *unfolded* —
        each source's tracked frequencies are added back into the merged
        copy, restoring the pure linear counters of the concatenated
        stream bit-exactly — and a fresh tracker is *refolded* per
        stream over the union of the sources' tracked values.  The
        operands themselves are never mutated (shards keep serving), so
        the unfold is applied to the merged copy via each source's fold
        vector rather than by calling ``unfold()`` on live trackers.
        """
        if other.config != self.config:
            raise ConfigError("can only merge synopses with identical configs")
        merged = SketchTree(self.config)
        for source in (self, other):
            for residue, matrix in source._streams.iter_sketches():
                merged._streams.sketch(residue).counters += matrix.counters
        if self.config.topk_size:
            candidates: dict[int, dict[int, int]] = {}
            for source in (self, other):
                for residue, tracker in source._streams.iter_trackers():
                    state = tracker.tracked
                    if not state:
                        continue
                    union = candidates.setdefault(residue, {})
                    for value, freq in state.items():
                        # Frequencies of a value tracked on both sides
                        # add: each side deleted its own count of it.
                        union[value] = union.get(value, 0) + freq
            for residue, state in candidates.items():
                sketch = merged._streams.sketch(residue)
                sketch.counters += fold_vector(sketch, state)  # unfold
                merged._streams.refold_tracker(residue, state)
        merged.n_trees = self.n_trees + other.n_trees
        merged.n_values = self.n_values + other.n_values
        if self.summary is not None and other.summary is not None:
            # The dataguide of a union of streams is the union of the
            # tries, so the merged synopsis answers extended queries
            # exactly as a single-node run over both streams would.
            merged.summary = self.summary.merge(other.summary)
        elif self.summary is not None or other.summary is not None:
            raise ConfigError(
                "cannot merge a synopsis with a structural summary into one "
                "without: extended queries on the result would undercount"
            )
        return merged

    def to_bytes(self) -> bytes:
        """Serialise the synopsis (counters, top-k state, summary,
        bookkeeping) into the versioned, pickle-free snapshot format of
        :mod:`repro.core.snapshot`."""
        from repro.core.snapshot import snapshot_to_bytes

        return snapshot_to_bytes(self)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SketchTree":
        """Restore a synopsis serialised with :meth:`to_bytes`.

        Raises a typed :class:`~repro.errors.SnapshotError` for corrupt,
        truncated, or version-mismatched blobs.  Pre-1.1 pickle blobs are
        not accepted here; use :meth:`from_legacy_pickle` (deprecated).
        """
        from repro.core.snapshot import snapshot_from_bytes

        return snapshot_from_bytes(blob)

    @classmethod
    def from_legacy_pickle(cls, blob: bytes) -> "SketchTree":
        """Restore a pre-1.1 pickle snapshot (deprecated, one release).

        .. deprecated:: 1.1
            The pickle format is unversioned, executes arbitrary code on
            load, and never carried the structural summary.  Re-save with
            :meth:`to_bytes` immediately; this loader will be removed in
            the next release.

        Only load blobs you produced yourself — this calls
        :func:`pickle.loads`.
        """
        import pickle  # noqa: PLC0415 — quarantined to the legacy loader
        import warnings

        warnings.warn(
            "SketchTree.from_legacy_pickle is deprecated; re-save this "
            "synopsis with to_bytes() (versioned pickle-free snapshots)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.errors import SnapshotFormatError

        try:
            state = pickle.loads(blob)
        except Exception as exc:
            raise SnapshotFormatError(
                f"blob is not a legacy pickle snapshot: {exc}"
            ) from exc
        if not isinstance(state, dict) or not {
            "config",
            "n_trees",
            "n_values",
            "sketches",
            "trackers",
        } <= state.keys():
            raise SnapshotFormatError(
                "legacy pickle snapshot is missing required entries"
            )
        synopsis = cls(state["config"])
        synopsis.n_trees = state["n_trees"]
        synopsis.n_values = state["n_values"]
        for residue, counters in state["sketches"].items():
            synopsis._streams.set_counters(residue, counters)
        for residue, tracked in state["trackers"].items():
            tracker = synopsis._streams.tracker(residue)
            if tracker is not None:
                tracker.restore(tracked)
        return synopsis

    def __repr__(self) -> str:
        return (
            f"SketchTree(trees={self.n_trees}, values={self.n_values}, "
            f"{self._streams!r})"
        )
