"""Exact pattern counting: the deterministic strawman and the oracle.

Section 1 motivates SketchTree by costing the exact approach: one counter
per distinct labeled pattern, i.e. up to
``(1/n)·C(2n−2, n−1)·|Σ|^n`` counters for patterns of ``n`` nodes.
:class:`ExactCounter` *is* that approach — a hash table over canonical
pattern forms — with the same query interface as
:class:`~repro.core.sketchtree.SketchTree`, so experiments use it both as
the ground truth and as the memory-comparison baseline (Table 1's
"7M / 11M counters" observation).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

from repro.core.expressions import Expression
from repro.enumtree.enumerate import iter_pattern_multiset
from repro.errors import QueryError
from repro.query.pattern import arrangements, pattern_edges, validate_pattern
from repro.trees.tree import LabeledTree, Nested


class ExactCounter:
    """Exact occurrence counts of every pattern with 1..k edges."""

    def __init__(self, max_pattern_edges: int):
        if max_pattern_edges < 1:
            raise QueryError(
                f"max_pattern_edges must be >= 1, got {max_pattern_edges}"
            )
        self.max_pattern_edges = max_pattern_edges
        self.counts: Counter[Nested] = Counter()
        self.n_trees = 0
        self.n_values = 0  # total pattern occurrences (sequences processed)

    # ------------------------------------------------------------------
    # Stream side
    # ------------------------------------------------------------------
    def update(self, tree: LabeledTree) -> None:
        """Count every pattern occurrence of one arriving tree."""
        n = 0
        for pattern in iter_pattern_multiset(tree, self.max_pattern_edges):
            self.counts[pattern] += 1
            n += 1
        self.n_trees += 1
        self.n_values += n

    def ingest(self, trees: Iterable[LabeledTree]) -> "ExactCounter":
        for tree in trees:
            self.update(tree)
        return self

    # ------------------------------------------------------------------
    # Query side (same semantics as SketchTree, but exact)
    # ------------------------------------------------------------------
    def count_ordered(self, pattern: Nested) -> int:
        """Exact ``COUNT_ord(Q)`` over the stream so far."""
        self._check(pattern)
        return self.counts.get(pattern, 0)

    def count_unordered(self, pattern: Nested) -> int:
        """Exact ``COUNT(Q)``: sum over distinct ordered arrangements."""
        self._check(pattern)
        return sum(self.counts.get(a, 0) for a in arrangements(pattern))

    def count_sum(self, patterns: Iterable[Nested]) -> int:
        """Exact total frequency of a set of *distinct* patterns."""
        distinct = list(dict.fromkeys(patterns))
        for pattern in distinct:
            self._check(pattern)
        return sum(self.counts.get(p, 0) for p in distinct)

    def evaluate_expression(self, expression: Expression) -> int:
        """Exact value of a Section 4 query expression."""
        total = 0
        for coeff, atoms in expression.expand():
            product = coeff
            for atom in atoms:
                self._check(atom)
                product *= self.counts.get(atom, 0)
            total += product
        return total

    def selectivity(self, pattern: Nested) -> float:
        """``COUNT_ord(Q) / n_values`` — the paper's workload metric."""
        if self.n_values == 0:
            return 0.0
        return self.counts.get(pattern, 0) / self.n_values

    def _check(self, pattern: Nested) -> None:
        validate_pattern(pattern)
        edges = pattern_edges(pattern)
        if edges < 1 or edges > self.max_pattern_edges:
            raise QueryError(
                f"pattern has {edges} edges; countable range is "
                f"1..{self.max_pattern_edges}"
            )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def n_distinct_patterns(self) -> int:
        """Table 1's "# of distinct tree patterns" column."""
        return len(self.counts)

    def self_join_size(self) -> int:
        """``Σ f² `` of the induced one-dimensional stream (collision-free)."""
        return sum(f * f for f in self.counts.values())

    def memory_bytes(self) -> int:
        """Counter-array memory of the deterministic approach.

        The paper's accounting: one ``lg(m)``-bit counter per distinct
        pattern, ``m`` the stream length — the quantity SketchTree's
        fixed-size synopsis is traded against.
        """
        if not self.counts:
            return 0
        bits_per_counter = max(1, math.ceil(math.log2(max(2, self.n_values))))
        return math.ceil(len(self.counts) * bits_per_counter / 8)

    def top(self, k: int) -> list[tuple[Nested, int]]:
        """The ``k`` most frequent patterns with their counts."""
        return self.counts.most_common(k)

    def __repr__(self) -> str:
        return (
            f"ExactCounter(k={self.max_pattern_edges}, "
            f"distinct={len(self.counts)}, occurrences={self.n_values})"
        )
