"""Pattern → integer encoding: the paper's two-stage mapping.

Stage 1 (Section 2.3): a pattern becomes its extended Prüfer sequences
``LPS`` and ``NPS``, which together identify it uniquely.

Stage 2: the concatenated ``hash(LPS).NPS`` tuple becomes a single
integer, via either

* Rabin fingerprints (Section 6.1; degree-31 residues, the experimental
  configuration) — bounded values, vanishing collision probability; or
* exact Cantor pairing (Section 2.2) — lossless but growing into big
  integers; used for validation and small demos.

Encodings are memoised per distinct pattern, because real streams repeat
the same patterns millions of times (Table 1: DBLP has 11.3M *distinct*
patterns against vastly more occurrences).
"""

from __future__ import annotations

from repro.core.config import LABEL_SEED_OFFSET
from repro.errors import ConfigError
from repro.hashing.labels import LabelHasher
from repro.hashing.pairing import pair_sequence
from repro.hashing.rabin import RabinFingerprint
from repro.prufer.sequences import prufer_of_nested
from repro.trees.tree import Nested


class PatternEncoder:
    """Maps nested-tuple patterns to one-dimensional integer values.

    Deterministic given ``(mapping, degree, seed)``; two encoders built
    with the same parameters agree on every pattern, which is what lets a
    query-time encoder reproduce stream-time values.
    """

    def __init__(self, mapping: str = "rabin", degree: int = 31, seed: int = 0):
        if mapping not in ("rabin", "pairing"):
            raise ConfigError(f"unknown mapping {mapping!r}")
        self.mapping = mapping
        if mapping == "rabin":
            # Independent polynomials for the sequence and the labels, both
            # derived from the master seed.
            self._sequence_fp = RabinFingerprint(degree=degree, seed=seed)
            self._labels = LabelHasher("rabin", seed=seed + LABEL_SEED_OFFSET)
        else:
            self._sequence_fp = None
            self._labels = LabelHasher("enumerate")
        self._cache: dict[Nested, int] = {}

    def encode(self, pattern: Nested) -> int:
        """The one-dimensional value of a pattern (memoised)."""
        value = self._cache.get(pattern)
        if value is None:
            value = self._encode(pattern)
            self._cache[pattern] = value
        return value

    def _encode(self, pattern: Nested) -> int:
        sequences = prufer_of_nested(pattern)
        label_hash = self._labels
        values = [label_hash(label) for label in sequences.lps]
        values.extend(sequences.nps)
        if self.mapping == "rabin":
            return self._sequence_fp.of_sequence(values)
        return pair_sequence(values)

    def encode_many(self, patterns) -> list[int]:
        """Encode an iterable of patterns, preserving order."""
        encode = self.encode
        return [encode(p) for p in patterns]

    @property
    def cache_size(self) -> int:
        """Distinct patterns encoded so far."""
        return len(self._cache)

    def __repr__(self) -> str:
        return f"PatternEncoder(mapping={self.mapping!r}, cached={len(self._cache)})"
