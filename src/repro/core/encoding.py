"""Pattern → integer encoding: the paper's two-stage mapping.

Stage 1 (Section 2.3): a pattern becomes its extended Prüfer sequences
``LPS`` and ``NPS``, which together identify it uniquely.

Stage 2: the concatenated ``hash(LPS).NPS`` tuple becomes a single
integer, via either

* Rabin fingerprints (Section 6.1; degree-31 residues, the experimental
  configuration) — bounded values, vanishing collision probability; or
* exact Cantor pairing (Section 2.2) — lossless but growing into big
  integers; used for validation and small demos.

Encodings are memoised per distinct pattern in a *bounded* LRU, because
real streams repeat the same patterns millions of times (Table 1: DBLP
has 11.3M *distinct* patterns against vastly more occurrences) but the
distinct-pattern universe itself can outgrow memory on an unbounded
stream.  Eviction only ever costs recomputation — the encoding is a pure
function of the pattern, so the cache policy cannot change any value.

:meth:`PatternEncoder.encode_batch` is the batch pipeline's entry point:
cache hits resolve in one dict probe each, and the distinct misses are
encoded together through the vectorised Rabin fingerprint
(:meth:`~repro.hashing.rabin.RabinFingerprint.of_sequences`) or the
batched pairing fold.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Sequence, cast

from repro.core.config import LABEL_SEED_OFFSET
from repro.errors import ConfigError
from repro.hashing.labels import LabelHasher
from repro.hashing.pairing import pair_sequences
from repro.hashing.rabin import RabinFingerprint
from repro.prufer.sequences import _extended_postorder
from repro.trees.tree import Nested

#: Default bound on distinct patterns memoised by a PatternEncoder.
DEFAULT_CACHE_LIMIT = 1 << 20


class PatternEncoder:  # sketchlint: thread-safe
    """Maps nested-tuple patterns to one-dimensional integer values.

    Deterministic given ``(mapping, degree, seed)``; two encoders built
    with the same parameters agree on every pattern, which is what lets a
    query-time encoder reproduce stream-time values.  ``cache_limit``
    bounds the LRU memo (``None`` = unbounded); it is purely a
    performance knob and never affects encoded values.

    Thread-safe: one mutex serialises the whole probe → encode → insert →
    stats sequence, taken **once per call** — so :meth:`encode_batch`
    pays a single uncontended acquire per batch on the ingest hot path
    (see docs/concurrency.md).  The lock also confines the lazy tables
    inside the owned :class:`RabinFingerprint` / :class:`LabelHasher`.
    """

    def __init__(
        self,
        mapping: str = "rabin",
        degree: int = 31,
        seed: int = 0,
        cache_limit: int | None = DEFAULT_CACHE_LIMIT,
    ):
        if mapping not in ("rabin", "pairing"):
            raise ConfigError(f"unknown mapping {mapping!r}")
        if cache_limit is not None and cache_limit < 1:
            raise ConfigError(f"cache_limit must be >= 1 or None, got {cache_limit}")
        self.mapping = mapping
        self.cache_limit = cache_limit
        if mapping == "rabin":
            # Independent polynomials for the sequence and the labels, both
            # derived from the master seed.
            self._sequence_fp = RabinFingerprint(degree=degree, seed=seed)
            self._labels = LabelHasher("rabin", seed=seed + LABEL_SEED_OFFSET)
        else:
            self._sequence_fp = None
            self._labels = LabelHasher("enumerate")
        self._cache: OrderedDict[Nested, int] = OrderedDict()
        self._lock = threading.Lock()
        #: Lifetime LRU accounting (plain ints, always on — one addition
        #: per encode call; surfaced as pull counters by repro.obs).
        self.cache_hits = 0
        self.cache_misses = 0

    def encode(self, pattern: Nested) -> int:
        """The one-dimensional value of a pattern (LRU-memoised)."""
        with self._lock:
            cache = self._cache
            value = cache.get(pattern)
            if value is None:
                self.cache_misses += 1
                value = self._encode_distinct([pattern])[0]
                self._remember(pattern, value)
            else:
                self.cache_hits += 1
                cache.move_to_end(pattern)
            return value

    def _remember(self, pattern: Nested, value: int) -> None:  # sketchlint: guarded-by=_lock
        cache = self._cache
        cache[pattern] = value
        if self.cache_limit is not None and len(cache) > self.cache_limit:
            cache.popitem(last=False)

    def _sequence_of(self, pattern: Nested) -> list[int]:
        """The concatenated ``hash(LPS).NPS`` integer sequence.

        Works on the raw postorder ``(labels, parents)`` arrays directly:
        ``NPS[i] = parents[i]`` and ``LPS[i] = labels[parents[i] − 1]``
        for ``i < n − 1`` (see :mod:`repro.prufer.sequences`), so
        materialising a :class:`PruferSequences` per distinct pattern on
        the encode hot path would only add tuple/dataclass churn.
        """
        raw_labels, parents = _extended_postorder(pattern)
        # Parents are always internal (original) nodes, never dummies, so
        # the labels indexed below are real strings — only dummy entries
        # carry None.
        labels = cast("list[str]", raw_labels)
        label_hash = self._labels
        nps = parents[:-1]
        values = [label_hash(labels[p - 1]) for p in nps]
        values.extend(nps)
        return values

    def _encode_distinct(self, patterns: Sequence[Nested]) -> list[int]:
        """Encode patterns assumed distinct and uncached, in order."""
        sequences = [self._sequence_of(pattern) for pattern in patterns]
        if self.mapping == "rabin":
            return [int(v) for v in self._sequence_fp.of_sequences(sequences)]
        return pair_sequences(sequences)

    def encode_batch(self, patterns: Iterable[Nested]) -> list[int]:
        """Encode a whole batch of patterns, preserving order.

        Cache hits cost one dict probe; the distinct misses are encoded
        together through the vectorised fingerprint.  Returns exactly
        the values :meth:`encode` would (tested bit-identical); only the
        LRU's internal recency order may differ, which affects eviction
        choices but never a value.

        The mutex is taken once for the whole batch, so the per-pattern
        cost of thread safety is amortised to nothing on the hot path.
        """
        patterns = patterns if isinstance(patterns, list) else list(patterns)
        # Placeholder zeros are always overwritten: every index is either
        # a cache hit (filled now) or recorded in `misses` (filled below).
        values: list[int] = [0] * len(patterns)
        misses: dict[Nested, list[int]] = {}
        with self._lock:
            cache = self._cache
            for index, pattern in enumerate(patterns):
                value = cache.get(pattern)
                if value is None:
                    misses.setdefault(pattern, []).append(index)
                else:
                    cache.move_to_end(pattern)
                    values[index] = value
            n_missed = 0
            if misses:
                n_missed = sum(len(indices) for indices in misses.values())
                fresh = self._encode_distinct(list(misses))
                for pattern, value in zip(misses, fresh):
                    self._remember(pattern, value)
                    for index in misses[pattern]:
                        values[index] = value
            self.cache_hits += len(patterns) - n_missed
            self.cache_misses += n_missed
        return values

    def encode_many(self, patterns) -> list[int]:
        """Encode an iterable of patterns, preserving order.

        Alias of :meth:`encode_batch`, kept for callers of the
        pre-columnar API.
        """
        return self.encode_batch(patterns)

    def lookup_values(self, values: Iterable[int]) -> dict[int, Nested]:
        """Best-effort reverse lookup: encoded value → pattern.

        The encoding is one-way (a fingerprint), so the only names this
        encoder knows are the patterns currently in its LRU memo; the
        returned map covers exactly the requested values found there.
        Callers (the top-k trend surfaces) treat a missing value as "no
        longer nameable", never as an error — eviction costs a label,
        not correctness.  One scan of the memo under the lock, without
        touching recency order (a reverse lookup is not a use of the
        forward mapping and must not perturb eviction choices).
        """
        wanted = set(values)
        if not wanted:
            return {}
        found: dict[int, Nested] = {}
        with self._lock:
            for pattern, value in self._cache.items():
                if value in wanted:
                    found[value] = pattern
                    if len(found) == len(wanted):
                        break
        return found

    @property
    def cache_size(self) -> int:
        """Distinct patterns currently memoised (≤ ``cache_limit``)."""
        return len(self._cache)

    def __repr__(self) -> str:
        return f"PatternEncoder(mapping={self.mapping!r}, cached={len(self._cache)})"
