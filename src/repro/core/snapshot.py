"""Versioned, pickle-free snapshot & recovery for SketchTree synopses.

A synopsis that runs for days over a stream is only useful if its state
survives process death.  This module is the persistence subsystem: a
self-describing binary snapshot format that round-trips *all* synopsis
state — sketch counters, top-k tracker state, the structural summary,
and bookkeeping — plus crash-safe checkpointing on top of it.

Format (version 1)
------------------

::

    MAGIC (8 bytes) | header length (8 bytes, big-endian) | header | payload

* ``header`` — canonical JSON (sorted keys) carrying the format version,
  the full :class:`~repro.core.config.SketchTreeConfig`, a config/ξ-seed
  fingerprint, top-k tracker state (values as decimal strings, so
  pairing-mode big integers survive), the structural summary trie, the
  tree/value counts, and the payload's size and SHA-256 checksum.
* ``payload`` — an ``npz`` archive (``numpy.savez_compressed``, loaded
  with ``allow_pickle=False``) holding one int64 counter array per
  allocated virtual stream, named ``sketch_<residue>``.

Nothing in the format executes code on load: the header is JSON, the
payload is raw arrays.  Loaders *refuse* — with typed
:class:`~repro.errors.SnapshotError` subclasses — anything corrupt,
truncated, version-mismatched, or configured differently than expected,
instead of restoring garbage that would answer queries wrongly.

Version policy: ``FORMAT_VERSION`` is bumped on any incompatible layout
change; a loader accepts exactly the versions it knows how to restore
bit-faithfully and raises :class:`~repro.errors.SnapshotVersionError`
otherwise.  Pre-versioned pickle blobs are handled only by the guarded
:meth:`SketchTree.from_legacy_pickle` loader (deprecated, one release).

Window container format (version 1)
-----------------------------------

:class:`~repro.core.window.WindowedSketchTree` state is a *container* of
per-bucket synopsis snapshots::

    WINDOW_MAGIC (8 bytes) | header length (8 bytes, big-endian) | header
    | length-prefixed SKTSNAP blobs (complete buckets oldest-first, then
      the in-progress bucket)

The header carries the window geometry (``window_trees``,
``bucket_trees``), the absolute stream position (``n_trees_seen``, which
resume skip counts key on), the merge-on-expiry churn counters, and the
same config/fingerprint/checksum discipline as the synopsis format.
Because each nested blob is a full SKTSNAP snapshot, **per-bucket top-k
tracker state rides along versioned** — a restored window compensates
queries exactly like the one that was saved.  :func:`save_snapshot` /
:func:`load_snapshot` and :class:`CheckpointManager` dispatch on the
object type / leading magic, so windows checkpoint and resume through
:class:`~repro.stream.engine.StreamProcessor` unchanged.

Checkpointing
-------------

:class:`CheckpointManager` turns the snapshot format into crash-safe
periodic checkpoints: atomic write-then-rename (a crash mid-write never
clobbers the previous checkpoint), keep-last-N retention, and a
:meth:`~CheckpointManager.load_latest` that falls back to older
checkpoints when the newest fails validation.
:class:`~repro.stream.engine.StreamProcessor` wires this into streaming
runs (``snapshot_every=...``) and recovery (``resume(...)``).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
import zipfile
from collections import deque
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core.window import WindowedSketchTree

import numpy as np

from repro.core.config import XI_SEED_OFFSET, SketchTreeConfig
from repro.core.sketchtree import SketchTree
from repro.obs.registry import BYTE_BUCKETS, Registry, get_default_registry
from repro.errors import (
    ConfigError,
    PatternError,
    SnapshotConfigError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
)
from repro.query.summary import StructuralSummary

#: First 8 bytes of every snapshot; the trailing newline makes accidental
#: text-mode corruption (CRLF translation) fail the magic check loudly.
MAGIC = b"SKTSNAP\n"

#: First 8 bytes of a sliding-window container snapshot.
WINDOW_MAGIC = b"SKTWSNP\n"

#: Current snapshot format version.  Bumped on any incompatible change to
#: the layout, header schema, or payload encoding; see the module
#: docstring for the acceptance policy.
FORMAT_VERSION = 1

#: Current window container format version (independent of the nested
#: synopsis blobs' own versioning).
WINDOW_FORMAT_VERSION = 1

_FORMAT_NAME = "sketchtree-snapshot"
_WINDOW_FORMAT_NAME = "sketchtree-window-snapshot"
_HEADER_LEN_BYTES = 8
_PREFIX_LEN = len(MAGIC) + _HEADER_LEN_BYTES

_REQUIRED_HEADER_KEYS = frozenset(
    {
        "format",
        "format_version",
        "config",
        "fingerprint",
        "n_trees",
        "n_values",
        "trackers",
        "summary",
        "payload_size",
        "payload_sha256",
    }
)


def config_fingerprint(config: SketchTreeConfig) -> str:
    """SHA-256 fingerprint of a config, including the derived ξ seed.

    Two synopses agree on every estimate-relevant random draw iff their
    fingerprints match, which is what checkpoint resume and distributed
    merge check before trusting foreign state.  The derived ξ seed is
    folded in explicitly so the fingerprint documents the randomness it
    covers, not just the knobs it was derived from.
    """
    record: dict[str, Any] = dict(asdict(config))
    record["xi_seed"] = config.seed + XI_SEED_OFFSET
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------

def snapshot_to_bytes(synopsis: SketchTree) -> bytes:
    """Serialise a synopsis into the versioned snapshot format."""
    arrays: dict[str, np.ndarray] = {
        f"sketch_{residue}": matrix.counters
        for residue, matrix in synopsis.streams.iter_sketches()
    }
    payload_io = io.BytesIO()
    np.savez_compressed(payload_io, **arrays)
    payload = payload_io.getvalue()

    trackers: dict[str, list[list[Any]]] = {}
    for residue, tracker in synopsis.streams.iter_trackers():
        state = tracker.snapshot()
        if state:
            trackers[str(residue)] = [
                [str(value), count] for value, count in sorted(state.items())
            ]

    header: dict[str, Any] = {
        "format": _FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "config": asdict(synopsis.config),
        "fingerprint": config_fingerprint(synopsis.config),
        "n_trees": synopsis.n_trees,
        "n_values": synopsis.n_values,
        "trackers": trackers,
        "summary": (
            synopsis.summary.to_dict() if synopsis.summary is not None else None
        ),
        "payload_size": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return (
        MAGIC
        + len(header_bytes).to_bytes(_HEADER_LEN_BYTES, "big")
        + header_bytes
        + payload
    )


# ---------------------------------------------------------------------------
# Deserialisation
# ---------------------------------------------------------------------------

def _split_blob(blob: bytes) -> tuple[dict[str, Any], bytes]:
    """Validate framing and return (header, payload) or raise typed errors."""
    if not blob.startswith(MAGIC[: min(len(blob), len(MAGIC))]) or not blob:
        hint = ""
        if blob[:1] == b"\x80":
            hint = (
                "; this looks like a legacy pickle snapshot — load it with "
                "SketchTree.from_legacy_pickle"
            )
        raise SnapshotFormatError(f"not a SketchTree snapshot (bad magic){hint}")
    if len(blob) < _PREFIX_LEN:
        raise SnapshotIntegrityError(
            f"snapshot truncated inside the {_PREFIX_LEN}-byte prefix"
        )
    header_len = int.from_bytes(blob[len(MAGIC) : _PREFIX_LEN], "big")
    if _PREFIX_LEN + header_len > len(blob):
        raise SnapshotIntegrityError(
            f"snapshot truncated inside its header (need {header_len} bytes, "
            f"have {len(blob) - _PREFIX_LEN})"
        )
    header_bytes = blob[_PREFIX_LEN : _PREFIX_LEN + header_len]
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(f"snapshot header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != _FORMAT_NAME:
        raise SnapshotFormatError(
            "snapshot header is not a sketchtree-snapshot header"
        )
    version = header.get("format_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise SnapshotFormatError(
            f"snapshot format_version must be an integer, got {version!r}"
        )
    if version != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"snapshot format version {version} is not supported by this "
            f"loader (supports exactly {FORMAT_VERSION})"
        )
    missing = _REQUIRED_HEADER_KEYS - header.keys()
    if missing:
        raise SnapshotFormatError(
            f"snapshot header is missing keys: {sorted(missing)}"
        )
    payload = blob[_PREFIX_LEN + header_len :]
    expected_size = header["payload_size"]
    if not isinstance(expected_size, int) or expected_size != len(payload):
        raise SnapshotIntegrityError(
            f"snapshot payload is {len(payload)} bytes, header declares "
            f"{expected_size} — truncated or corrupt"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise SnapshotIntegrityError(
            "snapshot payload checksum mismatch — the snapshot is corrupt"
        )
    return header, payload


def _config_from_header(header: dict[str, Any]) -> SketchTreeConfig:
    raw = header["config"]
    if not isinstance(raw, dict):
        raise SnapshotFormatError("snapshot config must be a mapping")
    try:
        config = SketchTreeConfig(**raw)
    except (TypeError, ConfigError) as exc:
        raise SnapshotFormatError(f"snapshot config is invalid: {exc}") from exc
    if config_fingerprint(config) != header["fingerprint"]:
        raise SnapshotIntegrityError(
            "snapshot config fingerprint mismatch — the header was edited "
            "or corrupted after the snapshot was written"
        )
    return config


def _restore_counters(synopsis: SketchTree, payload: bytes) -> None:
    try:
        npz = np.load(io.BytesIO(payload), allow_pickle=False)
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        raise SnapshotFormatError(
            f"snapshot payload is not a readable npz archive: {exc}"
        ) from exc
    with npz:
        for name in npz.files:
            prefix, _, residue_text = name.partition("_")
            if prefix != "sketch" or not residue_text.isdigit():
                raise SnapshotFormatError(
                    f"unexpected array {name!r} in snapshot payload"
                )
            try:
                synopsis.streams.set_counters(int(residue_text), npz[name])
            except ConfigError as exc:
                raise SnapshotFormatError(
                    f"snapshot counters for {name!r} are invalid: {exc}"
                ) from exc


def _restore_trackers(synopsis: SketchTree, header: dict[str, Any]) -> None:
    trackers = header["trackers"]
    if not isinstance(trackers, dict):
        raise SnapshotFormatError("snapshot tracker state must be a mapping")
    if trackers and not synopsis.config.topk_size:
        raise SnapshotFormatError(
            "snapshot carries top-k tracker state but its config has "
            "topk_size=0 — refusing an inconsistent restore"
        )
    for residue_text, entries in trackers.items():
        try:
            residue = int(residue_text)
            state = {int(value): int(count) for value, count in entries}
        except (TypeError, ValueError) as exc:
            raise SnapshotFormatError(
                f"snapshot tracker state for stream {residue_text!r} is "
                f"malformed: {exc}"
            ) from exc
        if not 0 <= residue < synopsis.config.n_virtual_streams:
            raise SnapshotFormatError(
                f"snapshot tracker stream {residue} outside "
                f"[0, {synopsis.config.n_virtual_streams})"
            )
        # tracker() is non-allocating; make sure the stream (and with it
        # the tracker) exists even if the payload carried no counters.
        synopsis.streams.sketch(residue)
        tracker = synopsis.streams.tracker(residue)
        assert tracker is not None  # topk_size checked above
        try:
            tracker.restore(state)
        except ConfigError as exc:
            raise SnapshotFormatError(
                f"snapshot tracker state for stream {residue} is invalid: "
                f"{exc}"
            ) from exc


def _restore_summary(synopsis: SketchTree, header: dict[str, Any]) -> None:
    summary = header["summary"]
    if synopsis.config.maintain_summary:
        if not isinstance(summary, dict):
            raise SnapshotFormatError(
                "snapshot config maintains a structural summary but the "
                "snapshot carries none — refusing a restore that would "
                "answer extended queries with 0"
            )
        try:
            synopsis.summary = StructuralSummary.from_dict(summary)
        except PatternError as exc:
            raise SnapshotFormatError(
                f"snapshot structural summary is malformed: {exc}"
            ) from exc
    elif summary is not None:
        raise SnapshotFormatError(
            "snapshot carries a structural summary but its config has "
            "maintain_summary=False — refusing an inconsistent restore"
        )


def snapshot_from_bytes(blob: bytes) -> SketchTree:
    """Restore a synopsis from :func:`snapshot_to_bytes` output.

    Raises a :class:`~repro.errors.SnapshotError` subclass — never
    returns a partially restored synopsis — when the blob is corrupt,
    truncated, of an unsupported version, or internally inconsistent.
    """
    header, payload = _split_blob(blob)
    config = _config_from_header(header)
    synopsis = SketchTree(config)
    n_trees, n_values = header["n_trees"], header["n_values"]
    for label, count in (("n_trees", n_trees), ("n_values", n_values)):
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise SnapshotFormatError(
                f"snapshot {label} must be a non-negative integer, got {count!r}"
            )
    _restore_counters(synopsis, payload)
    _restore_trackers(synopsis, header)
    _restore_summary(synopsis, header)
    synopsis.n_trees = n_trees
    synopsis.n_values = n_values
    return synopsis


# ---------------------------------------------------------------------------
# Window container format
# ---------------------------------------------------------------------------

_WINDOW_REQUIRED_KEYS = frozenset(
    {
        "format",
        "format_version",
        "config",
        "fingerprint",
        "window_trees",
        "bucket_trees",
        "n_trees_seen",
        "n_refolds",
        "n_refold_candidates",
        "n_buckets",
        "payload_size",
        "payload_sha256",
    }
)


def window_to_bytes(window: "WindowedSketchTree") -> bytes:
    """Serialise a sliding window into the versioned container format.

    Every retained bucket (complete buckets oldest-first, then the
    in-progress one) becomes a nested :func:`snapshot_to_bytes` blob —
    counters, per-bucket top-k tracker state, bookkeeping — so the
    restore compensates queries exactly like the saved window did.
    """
    with window._lock:
        buckets = [*window._complete, window._current]
        n_trees_seen = window.n_trees_seen
    blobs = [snapshot_to_bytes(bucket) for bucket in buckets]
    payload = b"".join(
        len(blob).to_bytes(_HEADER_LEN_BYTES, "big") + blob for blob in blobs
    )
    header: dict[str, Any] = {
        "format": _WINDOW_FORMAT_NAME,
        "format_version": WINDOW_FORMAT_VERSION,
        "config": asdict(window.config),
        "fingerprint": config_fingerprint(window.config),
        "window_trees": window.window_trees,
        "bucket_trees": window.bucket_trees,
        "n_trees_seen": n_trees_seen,
        "n_refolds": window.n_refolds,
        "n_refold_candidates": window.n_refold_candidates,
        "n_buckets": len(blobs),
        "payload_size": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return (
        WINDOW_MAGIC
        + len(header_bytes).to_bytes(_HEADER_LEN_BYTES, "big")
        + header_bytes
        + payload
    )


def _split_window_blob(blob: bytes) -> tuple[dict[str, Any], bytes]:
    """Validate window-container framing; return (header, payload)."""
    if not blob.startswith(WINDOW_MAGIC[: min(len(blob), len(WINDOW_MAGIC))]) or not blob:
        raise SnapshotFormatError(
            "not a SketchTree window snapshot (bad magic)"
        )
    if len(blob) < _PREFIX_LEN:
        raise SnapshotIntegrityError(
            f"window snapshot truncated inside the {_PREFIX_LEN}-byte prefix"
        )
    header_len = int.from_bytes(blob[len(WINDOW_MAGIC) : _PREFIX_LEN], "big")
    if _PREFIX_LEN + header_len > len(blob):
        raise SnapshotIntegrityError(
            "window snapshot truncated inside its header "
            f"(need {header_len} bytes, have {len(blob) - _PREFIX_LEN})"
        )
    header_bytes = blob[_PREFIX_LEN : _PREFIX_LEN + header_len]
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(
            f"window snapshot header is not valid JSON: {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("format") != _WINDOW_FORMAT_NAME:
        raise SnapshotFormatError(
            "window snapshot header is not a sketchtree-window-snapshot header"
        )
    version = header.get("format_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise SnapshotFormatError(
            f"window format_version must be an integer, got {version!r}"
        )
    if version != WINDOW_FORMAT_VERSION:
        raise SnapshotVersionError(
            f"window snapshot format version {version} is not supported by "
            f"this loader (supports exactly {WINDOW_FORMAT_VERSION})"
        )
    missing = _WINDOW_REQUIRED_KEYS - header.keys()
    if missing:
        raise SnapshotFormatError(
            f"window snapshot header is missing keys: {sorted(missing)}"
        )
    payload = blob[_PREFIX_LEN + header_len :]
    expected_size = header["payload_size"]
    if not isinstance(expected_size, int) or expected_size != len(payload):
        raise SnapshotIntegrityError(
            f"window snapshot payload is {len(payload)} bytes, header "
            f"declares {expected_size} — truncated or corrupt"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise SnapshotIntegrityError(
            "window snapshot payload checksum mismatch — the snapshot is corrupt"
        )
    return header, payload


def window_from_bytes(blob: bytes) -> "WindowedSketchTree":
    """Restore a window from :func:`window_to_bytes` output.

    Raises a :class:`~repro.errors.SnapshotError` subclass — never
    returns a partially restored window — for corrupt, truncated,
    version-mismatched, or internally inconsistent containers (including
    any nested bucket snapshot failing its own validation, or bucket
    geometry disagreeing with the declared window parameters).
    """
    from repro.core.window import WindowedSketchTree

    header, payload = _split_window_blob(blob)
    config = _config_from_header(header)
    for key in ("window_trees", "bucket_trees", "n_buckets"):
        count = header[key]
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise SnapshotFormatError(
                f"window snapshot {key} must be a positive integer, got {count!r}"
            )
    for key in ("n_trees_seen", "n_refolds", "n_refold_candidates"):
        count = header[key]
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise SnapshotFormatError(
                f"window snapshot {key} must be a non-negative integer, "
                f"got {count!r}"
            )
    try:
        window = WindowedSketchTree(
            config, header["window_trees"], header["bucket_trees"]
        )
    except ConfigError as exc:
        raise SnapshotFormatError(
            f"window snapshot geometry is invalid: {exc}"
        ) from exc
    buckets: list[SketchTree] = []
    offset = 0
    while offset < len(payload):
        if offset + _HEADER_LEN_BYTES > len(payload):
            raise SnapshotIntegrityError(
                "window snapshot payload truncated inside a bucket length "
                "prefix"
            )
        length = int.from_bytes(
            payload[offset : offset + _HEADER_LEN_BYTES], "big"
        )
        offset += _HEADER_LEN_BYTES
        if offset + length > len(payload):
            raise SnapshotIntegrityError(
                f"window snapshot payload truncated inside bucket "
                f"{len(buckets)} (need {length} bytes)"
            )
        buckets.append(snapshot_from_bytes(payload[offset : offset + length]))
        offset += length
    if len(buckets) != header["n_buckets"]:
        raise SnapshotIntegrityError(
            f"window snapshot carries {len(buckets)} buckets, header "
            f"declares {header['n_buckets']}"
        )
    if not buckets:
        raise SnapshotFormatError(
            "window snapshot carries no buckets (needs at least the "
            "in-progress one)"
        )
    if len(buckets) - 1 > window.n_buckets:
        raise SnapshotFormatError(
            f"window snapshot carries {len(buckets) - 1} complete buckets, "
            f"geometry retains at most {window.n_buckets}"
        )
    for position, bucket in enumerate(buckets):
        if bucket.config != config:
            raise SnapshotFormatError(
                f"window snapshot bucket {position} was written with a "
                "different config than the container declares"
            )
    for position, bucket in enumerate(buckets[:-1]):
        if bucket.n_trees != window.bucket_trees:
            raise SnapshotFormatError(
                f"window snapshot complete bucket {position} holds "
                f"{bucket.n_trees} trees, expected exactly "
                f"{window.bucket_trees}"
            )
    current = buckets[-1]
    if current.n_trees >= window.bucket_trees:
        raise SnapshotFormatError(
            f"window snapshot in-progress bucket holds {current.n_trees} "
            f"trees, expected fewer than {window.bucket_trees}"
        )
    covered = sum(bucket.n_trees for bucket in buckets)
    if header["n_trees_seen"] < covered:
        raise SnapshotIntegrityError(
            f"window snapshot n_trees_seen={header['n_trees_seen']} is "
            f"smaller than the {covered} trees its buckets cover"
        )
    window._complete = deque(buckets[:-1])
    window._current = current
    window.n_trees_seen = header["n_trees_seen"]
    window.n_refolds = header["n_refolds"]
    window.n_refold_candidates = header["n_refold_candidates"]
    return window


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------

def _serialise(synopsis: "SketchTree | WindowedSketchTree") -> bytes:
    """Dispatch on the synopsis type: plain snapshot or window container."""
    if isinstance(synopsis, SketchTree):
        return snapshot_to_bytes(synopsis)
    from repro.core.window import WindowedSketchTree

    if isinstance(synopsis, WindowedSketchTree):
        return window_to_bytes(synopsis)
    raise ConfigError(
        f"cannot snapshot a {type(synopsis).__name__}: expected a "
        "SketchTree or WindowedSketchTree"
    )


def save_snapshot(
    synopsis: "SketchTree | WindowedSketchTree", path: str | Path
) -> Path:
    """Write a snapshot atomically: temp file, fsync, then rename.

    A crash at any point leaves either the previous file or the new one,
    never a torn mixture — the property periodic checkpointing relies on.
    Accepts plain synopses and sliding windows (dispatching to the
    matching format; see the module docstring).
    """
    target = Path(path)
    blob = _serialise(synopsis)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    if os.name == "posix":
        # Persist the rename itself, not just the file contents.
        dir_fd = os.open(str(target.parent), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return target


def load_snapshot(
    path: str | Path, expected_config: SketchTreeConfig | None = None
) -> "SketchTree | WindowedSketchTree":
    """Load a snapshot file, optionally insisting on a specific config.

    Dispatches on the file's leading magic: a plain synopsis snapshot
    restores a :class:`SketchTree`, a window container restores a
    :class:`~repro.core.window.WindowedSketchTree`.

    ``expected_config`` guards resume paths: restoring a synopsis whose
    config (and therefore ξ randomness) differs from the running job's
    would silently produce garbage estimates, so a mismatch raises
    :class:`~repro.errors.SnapshotConfigError` instead.
    """
    blob = Path(path).read_bytes()
    synopsis: "SketchTree | WindowedSketchTree"
    if blob.startswith(WINDOW_MAGIC):
        synopsis = window_from_bytes(blob)
    else:
        synopsis = snapshot_from_bytes(blob)
    if expected_config is not None and synopsis.config != expected_config:
        raise SnapshotConfigError(
            f"snapshot {path} was written with a different configuration "
            f"(fingerprint {config_fingerprint(synopsis.config)[:12]}… vs "
            f"expected {config_fingerprint(expected_config)[:12]}…)"
        )
    return synopsis


class CheckpointManager:  # sketchlint: thread-safe
    """Crash-safe, keep-last-N checkpoint directory for one synopsis run.

    Checkpoints are snapshot files named ``<prefix>-<n_trees>`` (zero
    padded, so lexicographic order is stream order) written atomically by
    :func:`save_snapshot`.  Retention keeps the newest ``keep_last``
    files; recovery loads the newest checkpoint that validates, falling
    back to older ones if the newest is damaged.

    Thread-safe: one mutex serialises save → prune → recover over the
    directory, so a recovery scan never races retention's unlinks and
    two admin threads cannot interleave a save and a prune.

    ``metrics`` (``None`` → the process default, a no-op) records
    save/load durations and byte totals — timing lives here at the call
    sites, keeping the module-level snapshot functions deterministic.

    >>> manager = CheckpointManager("/tmp/ckpts", keep_last=3)  # doctest: +SKIP
    """

    #: File extension shared by every checkpoint this manager writes.
    SUFFIX = ".sktsnap"

    def __init__(
        self,
        directory: str | Path,
        keep_last: int = 3,
        prefix: str = "checkpoint",
        metrics: Registry | None = None,
    ):
        if keep_last < 1:
            raise ConfigError(f"keep_last must be >= 1, got {keep_last}")
        if not prefix or "/" in prefix:
            raise ConfigError(f"invalid checkpoint prefix {prefix!r}")
        self.directory = Path(directory)
        self.keep_last = keep_last
        self.prefix = prefix
        self.metrics = metrics if metrics is not None else get_default_registry()
        self._lock = threading.Lock()
        #: Lifetime checkpoint saves through this manager (introspection;
        #: surfaced as a pull counter by callers that care).
        self.n_saves = 0
        self.directory.mkdir(parents=True, exist_ok=True)

    def paths(self) -> list[Path]:
        """Existing checkpoint files, oldest first."""
        return sorted(self.directory.glob(f"{self.prefix}-*{self.SUFFIX}"))

    def latest_path(self) -> Path | None:
        """The newest checkpoint file, or ``None`` when none exist."""
        existing = self.paths()
        return existing[-1] if existing else None

    def save(self, synopsis: "SketchTree | WindowedSketchTree") -> Path:
        """Checkpoint ``synopsis`` now and prune to ``keep_last`` files.

        Accepts plain synopses and sliding windows; a window's file is
        named by its absolute stream position (``n_trees_seen``), so
        lexicographic order stays stream order either way.
        """
        name = f"{self.prefix}-{synopsis.n_trees:012d}{self.SUFFIX}"
        obs = self.metrics
        with self._lock:
            if not obs.enabled:
                path = save_snapshot(synopsis, self.directory / name)
            else:
                start = time.perf_counter()
                path = save_snapshot(synopsis, self.directory / name)
                obs.histogram("snapshot_save_seconds").observe(
                    time.perf_counter() - start
                )
                size = path.stat().st_size
                obs.histogram(
                    "snapshot_save_bytes", buckets=BYTE_BUCKETS
                ).observe(size)
                obs.counter(
                    "snapshot_save_bytes_total",
                    help="bytes written by checkpoint saves",
                ).inc(size)
            self.n_saves += 1
            self._prune()
        return path

    def prune(self) -> None:
        """Delete all but the newest ``keep_last`` checkpoints."""
        with self._lock:
            self._prune()

    def _prune(self) -> None:  # sketchlint: guarded-by=_lock
        for stale in self.paths()[: -self.keep_last]:
            stale.unlink(missing_ok=True)

    def load(
        self,
        path: str | Path,
        expected_config: SketchTreeConfig | None = None,
    ) -> "SketchTree | WindowedSketchTree":
        """Load one checkpoint file (see :func:`load_snapshot`)."""
        obs = self.metrics
        if not obs.enabled:
            return load_snapshot(path, expected_config)
        start = time.perf_counter()
        synopsis = load_snapshot(path, expected_config)
        obs.histogram("snapshot_load_seconds").observe(
            time.perf_counter() - start
        )
        size = Path(path).stat().st_size
        obs.histogram("snapshot_load_bytes", buckets=BYTE_BUCKETS).observe(size)
        obs.counter(
            "snapshot_load_bytes_total",
            help="bytes read by checkpoint loads",
        ).inc(size)
        return synopsis

    def load_latest(
        self, expected_config: SketchTreeConfig | None = None
    ) -> "SketchTree | WindowedSketchTree | None":
        """Restore from the newest checkpoint that validates.

        Returns ``None`` when the directory holds no checkpoints.  When
        checkpoints exist but every one fails validation, raises the
        newest checkpoint's error — recovery must not silently start
        from scratch and undercount.
        """
        failures: list[tuple[Path, SnapshotError]] = []
        with self._lock:
            for path in reversed(self.paths()):
                try:
                    return self.load(path, expected_config)
                except SnapshotError as exc:
                    failures.append((path, exc))
        if failures:
            names = ", ".join(path.name for path, _ in failures)
            raise SnapshotIntegrityError(
                f"no loadable checkpoint in {self.directory} "
                f"(all failed validation: {names}); newest error: "
                f"{failures[0][1]}"
            ) from failures[0][1]
        return None

    def __repr__(self) -> str:
        return (
            f"CheckpointManager(directory={str(self.directory)!r}, "
            f"keep_last={self.keep_last}, checkpoints={len(self.paths())})"
        )
