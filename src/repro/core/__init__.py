"""SketchTree core: the paper's primary contribution.

* :class:`~repro.core.sketchtree.SketchTree` — the synopsis: update it
  with every arriving tree, then estimate ordered/unordered pattern
  counts, sums, and arithmetic expressions of counts at any moment.
* :class:`~repro.core.config.SketchTreeConfig` — all tuning knobs
  (``s1``, ``s2``, ``k``, virtual streams, top-k, mapping function).
* :class:`~repro.core.exact.ExactCounter` — the deterministic strawman of
  Section 1 (one counter per distinct pattern); doubles as the
  ground-truth oracle in experiments.
* :mod:`~repro.core.expressions` — the Section 4 query-expression algebra
  (``+``, ``−``, ``×`` over ``COUNT_ord`` atoms) with unbiased estimators.
"""

from repro.core.batch import EncodedBatch
from repro.core.config import SketchTreeConfig
from repro.core.encoding import PatternEncoder
from repro.core.exact import ExactCounter
from repro.core.expressions import (
    Count,
    Expression,
    parse_expression,
    required_independence,
)
from repro.core.intervals import (
    ConfigRecommendation,
    Interval,
    chebyshev_half_width,
    recommend_config,
)
from repro.core.memory import MemoryReport
from repro.core.sketchtree import SketchTree
from repro.core.snapshot import (
    FORMAT_VERSION,
    CheckpointManager,
    config_fingerprint,
    load_snapshot,
    save_snapshot,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.core.topk import TopKTracker
from repro.core.window import WindowedSketchTree
from repro.core.virtual import VirtualStreams, is_prime, next_prime

__all__ = [
    "CheckpointManager",
    "ConfigRecommendation",
    "Count",
    "ExactCounter",
    "FORMAT_VERSION",
    "Interval",
    "chebyshev_half_width",
    "config_fingerprint",
    "load_snapshot",
    "parse_expression",
    "recommend_config",
    "save_snapshot",
    "snapshot_from_bytes",
    "snapshot_to_bytes",
    "EncodedBatch",
    "Expression",
    "MemoryReport",
    "PatternEncoder",
    "SketchTree",
    "SketchTreeConfig",
    "TopKTracker",
    "VirtualStreams",
    "WindowedSketchTree",
    "is_prime",
    "next_prime",
    "required_independence",
]
