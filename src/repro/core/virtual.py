"""Virtual streams: partitioning the value stream to shrink self-join size.

Section 5.3: the one-dimensional stream ``S`` is split into ``p`` (prime)
disjoint virtual streams by residue ``t mod p``, each sketched separately
— like COUNT-sketch buckets.  Every per-stream sketch shares one ξ family
("the sketches can share the same random seed"), so the sketch of a union
of streams is simply the sum of their counters; that is how queries whose
values land in different streams (sums, products, unordered counts) are
served.

When top-k tracking is enabled there is one tracker per virtual stream,
as the paper prescribes for the combined strategy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.topk import TopKTracker, refold

if TYPE_CHECKING:
    from repro.core.batch import EncodedBatch
from repro.errors import ConfigError
from repro.sketch.ams import _CHUNK, SketchMatrix
from repro.sketch.xi import XiGenerator


def is_prime(n: int) -> bool:
    """Deterministic primality check by trial division (small n)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    d = 3
    while d * d <= n:
        if n % d == 0:
            return False
        d += 2
    return True


def next_prime(n: int) -> int:
    """Smallest prime ``>= n``."""
    candidate = max(2, n)
    while not is_prime(candidate):
        candidate += 1
    return candidate


class VirtualStreams:  # sketchlint: single-writer
    """``p`` lazily-allocated per-residue sketch matrices + top-k trackers.

    Single-writer: the owning shard's ingest thread performs all
    allocation and counter mutation; query threads only combine already
    allocated counters (see docs/concurrency.md).  :meth:`tracker` is
    deliberately non-allocating so the query path never mutates the
    stream table.

    Parameters
    ----------
    n_streams:
        The prime ``p``; 1 means a single (non-partitioned) stream.
    s1, s2:
        Sketch-matrix dimensions, shared by every stream.
    independence, seed:
        ξ-family parameters; one generator is built and shared.
    topk_size:
        Per-stream top-k capacity; 0 disables tracking.
    """

    def __init__(
        self,
        n_streams: int,
        s1: int,
        s2: int,
        independence: int = 4,
        seed: int = 0,
        topk_size: int = 0,
        xi_family: str = "polynomial",
    ):
        if n_streams > 1 and not is_prime(n_streams):
            raise ConfigError(f"n_streams must be prime, got {n_streams}")
        if n_streams < 1:
            raise ConfigError(f"n_streams must be >= 1, got {n_streams}")
        self.n_streams = n_streams
        self.s1 = s1
        self.s2 = s2
        self.topk_size = topk_size
        if xi_family == "polynomial":
            self.xi = XiGenerator(s1 * s2, independence=independence, seed=seed)
        elif xi_family == "bch":
            from repro.sketch.bch import BchXiGenerator

            self.xi = BchXiGenerator(s1 * s2, seed=seed)
        else:
            raise ConfigError(f"unknown xi_family {xi_family!r}")
        self._sketches: dict[int, SketchMatrix] = {}
        self._trackers: dict[int, TopKTracker] = {}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def residue(self, value: int) -> int:
        """Which virtual stream ``value`` belongs to."""
        return value % self.n_streams

    def sketch(self, residue: int) -> SketchMatrix:
        """The sketch of stream ``residue``, allocating it on first use."""
        matrix = self._sketches.get(residue)
        if matrix is None:
            matrix = SketchMatrix(self.s1, self.s2, xi=self.xi)
            self._sketches[residue] = matrix
            if self.topk_size:
                self._trackers[residue] = TopKTracker(self.topk_size, matrix)
        return matrix

    def sketch_if_allocated(self, residue: int) -> SketchMatrix | None:
        return self._sketches.get(residue)

    def update_batch(self, batch: "EncodedBatch") -> None:
        """Route a whole :class:`~repro.core.batch.EncodedBatch` at once.

        One ``lexsort`` over (residue, value) replaces both the per-value
        dict dispatch of the legacy path and the per-group ``np.unique``
        of the first columnar pass: duplicate (residue, value) rows are
        collapsed into single rows with summed counts (ξ depends only on
        the field value, so ``c1·ξ(v) + c2·ξ(v) = (c1+c2)·ξ(v)`` exactly
        in int64, and real streams repeat values heavily), ξ is evaluated
        once over the deduplicated rows in bounded-memory chunks (the
        same ``(n_instances, chunk)`` peak as
        :meth:`SketchMatrix.update_batch`), and each touched stream
        receives one int64 matmul per chunk it appears in.  Counters are
        exact int64 sums, so the result is bit-identical to per-value
        updates in any order and grouping.
        """
        n = len(batch)
        if n == 0:
            return
        order = np.lexsort((batch.values, batch.residues))
        values = batch.values[order]
        counts = batch.counts[order]
        residues = batch.residues[order]
        # Row starts of distinct (residue, value) pairs in the sorted view.
        fresh = np.empty(n, dtype=bool)
        fresh[0] = True
        np.not_equal(values[1:], values[:-1], out=fresh[1:])
        fresh[1:] |= residues[1:] != residues[:-1]
        starts = np.flatnonzero(fresh)
        values = values[starts]
        residues = residues[starts]
        counts = np.add.reduceat(counts, starts)
        xi = self.xi
        sketch = self.sketch
        for lo in range(0, len(values), _CHUNK):
            hi = min(lo + _CHUNK, len(values))
            signs = xi.xi_batch(values[lo:hi])  # (n_instances, hi - lo)
            chunk_residues = residues[lo:hi]
            change = np.flatnonzero(chunk_residues[1:] != chunk_residues[:-1]) + 1
            # Group edges [0, *change, hi - lo] without growing an array
            # per iteration (this is the ingest hot loop).
            edges = np.empty(len(change) + 2, dtype=np.int64)
            edges[0] = 0
            edges[1:-1] = change
            edges[-1] = hi - lo
            for g in range(len(edges) - 1):
                first, stop = int(edges[g]), int(edges[g + 1])
                sketch(int(chunk_residues[first])).counters += (
                    signs[:, first:stop] @ counts[lo + first : lo + stop]
                )

    def set_counters(self, residue: int, counters: np.ndarray) -> None:
        """Install counters for stream ``residue`` (snapshot restore path).

        Allocates the stream if needed and validates residue range, shape
        and dtype, so a malformed snapshot cannot plant a matrix whose
        estimates silently broadcast or truncate.
        """
        if not 0 <= residue < self.n_streams:
            raise ConfigError(
                f"residue {residue} outside [0, {self.n_streams})"
            )
        counters = np.asarray(counters)
        if counters.shape != (self.s1 * self.s2,):
            raise ConfigError(
                f"counters for stream {residue} have shape {counters.shape}, "
                f"expected ({self.s1 * self.s2},)"
            )
        self.sketch(residue).counters = counters.astype(np.int64).copy()

    def tracker(self, residue: int) -> TopKTracker | None:
        """The stream's top-k tracker, or ``None`` when disabled/unused.

        Non-allocating: an unallocated stream has tracked nothing, so
        queries get ``None`` (no compensation) without mutating the
        stream table — ingest allocates via :meth:`sketch` first.
        """
        if not self.topk_size:
            return None
        return self._trackers.get(residue)

    def refold_tracker(
        self, residue: int, candidates: Iterable[int]
    ) -> TopKTracker:
        """Replace stream ``residue``'s tracker via the fold/unfold
        protocol (:func:`repro.core.topk.refold`).

        The caller must have restored the stream's counters to pure
        linear sums first (every contributing tracker unfolded) — this
        is the merge/expiry composition point, writer-side only.
        """
        if not self.topk_size:
            raise ConfigError("refold_tracker needs topk_size > 0")
        tracker = refold(self.sketch(residue), candidates, self.topk_size)
        self._trackers[residue] = tracker
        return tracker

    # ------------------------------------------------------------------
    # Query-side combination
    # ------------------------------------------------------------------
    def combined_counters(self, residues: Iterable[int]) -> np.ndarray:
        """Sum of the counters of the given streams (zeros when empty).

        Valid because all streams share one ξ family: the sum sketches
        the union of the streams.
        """
        total = np.zeros(self.s1 * self.s2, dtype=np.int64)
        for residue in dict.fromkeys(residues):
            matrix = self._sketches.get(residue)
            if matrix is not None:
                total += matrix.counters
        return total

    def combined_adjustment(self, values: Iterable[int]) -> np.ndarray | None:
        """Top-k compensation ``Σ ξ_q f_q`` across all streams touched by
        the query values (``None`` when nothing is tracked)."""
        if not self.topk_size:
            return None
        by_residue: dict[int, list[int]] = {}
        for value in dict.fromkeys(values):
            by_residue.setdefault(self.residue(value), []).append(value)
        total: np.ndarray | None = None
        for residue, stream_values in by_residue.items():
            tracker = self._trackers.get(residue)
            if tracker is None:
                continue
            part = tracker.adjustment(stream_values)
            if part is not None:
                total = part if total is None else total + part
        return total

    def estimate_sum_grouped(self, values: Iterable[int]) -> float:
        """Estimate ``Σ f_q`` by per-stream partial sums.

        Query values are grouped by residue and each group is estimated
        with *its own* stream's Theorem 2 estimator (top-k compensated);
        the partial estimates are added.  This is never worse than summing
        counters first: it keeps every estimate's variance bounded by its
        own stream's (small) self-join size instead of the union's, while
        remaining unbiased — a refinement the partitioning of Section 5.3
        makes available for purely linear queries.
        """
        by_residue: dict[int, list[int]] = {}
        for value in dict.fromkeys(values):
            by_residue.setdefault(self.residue(value), []).append(value)
        total = 0.0
        for residue, stream_values in by_residue.items():
            matrix = self._sketches.get(residue)
            if matrix is None:
                continue  # stream never received a value: exact zero
            tracker = self._trackers.get(residue)
            adjust = tracker.adjustment(stream_values) if tracker else None
            total += matrix.estimate_sum(stream_values, adjust=adjust)
        return total

    def view(self, residues: Iterable[int], values: Iterable[int]) -> SketchMatrix:
        """A temporary sketch over the union of streams, with top-k
        compensation for the given query values already applied."""
        combined = SketchMatrix(self.s1, self.s2, xi=self.xi)
        combined.counters = self.combined_counters(residues)
        adjust = self.combined_adjustment(values)
        if adjust is not None:
            combined.counters = combined.counters + adjust
        return combined

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_allocated(self) -> int:
        """Streams that have received at least one value."""
        return len(self._sketches)

    def iter_sketches(self):
        """Yield ``(residue, SketchMatrix)`` for allocated streams."""
        return iter(self._sketches.items())

    def iter_trackers(self):
        """Yield ``(residue, TopKTracker)`` for allocated trackers."""
        return iter(self._trackers.items())

    def __repr__(self) -> str:
        return (
            f"VirtualStreams(p={self.n_streams}, allocated={len(self._sketches)}, "
            f"s1={self.s1}, s2={self.s2}, topk={self.topk_size})"
        )
