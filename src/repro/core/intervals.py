"""Self-reported error bars and adaptive sketch sizing.

Theorem 1 bounds the estimator's variance by the stream's self-join size
``SJ(S)``; since an AMS sketch also *estimates* ``SJ(S)`` (its original
F2 purpose — ``E[X²] = Σf²``), a SketchTree synopsis can report a
confidence interval around every point estimate using nothing but its
own counters:

    Var[Y] ≤ SJ(S) / s1                (Y = mean over an s1-group)
    Chebyshev:  P(|Y − f_q| ≥ a) ≤ SJ(S) / (s1 a²)

so ``a = sqrt(SJ / (s1 · γ))`` is a ``1 − γ`` half-width per group, and
the median-of-s2-groups sharpens the confidence further (the paper's
boosting argument).  These bars are conservative — Chebyshev always is —
but they are *sound* and come for free.

:func:`recommend_config` closes the loop: given a target (ε, δ) and an
observed or estimated self-join size and query frequency, it sizes
``s1``/``s2`` per Theorems 1/2 and reports the paper-style memory the
configuration would occupy.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from repro.errors import ConfigError
from repro.sketch.estimators import (
    s1_for_point_query,
    s1_for_sum_query,
    s2_for_confidence,
)


@dataclass(frozen=True)
class Interval:
    """A point estimate with a conservative (Chebyshev) confidence bar."""

    estimate: float
    half_width: float
    confidence: float
    self_join_estimate: float

    @property
    def low(self) -> float:
        return self.estimate - self.half_width

    @property
    def high(self) -> float:
        return self.estimate + self.half_width

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __repr__(self) -> str:
        return (
            f"Interval({self.estimate:.1f} ± {self.half_width:.1f} "
            f"@ {self.confidence:.0%})"
        )


def chebyshev_half_width(
    self_join_size: float, s1: int, confidence: float = 0.9
) -> float:
    """Half-width ``a`` with ``P(|Y − f_q| < a) ≥ confidence`` per group.

    From ``Var[Y] ≤ SJ/s1`` and Chebyshev's inequality with failure
    budget ``γ = 1 − confidence``.
    """
    if not 0 < confidence < 1:
        raise ConfigError(f"confidence must be in (0, 1), got {confidence}")
    if s1 < 1:
        raise ConfigError(f"s1 must be >= 1, got {s1}")
    if self_join_size < 0:
        raise ConfigError(f"self-join size must be >= 0, got {self_join_size}")
    gamma = 1 - confidence
    return sqrt(self_join_size / (s1 * gamma))


@dataclass(frozen=True)
class ConfigRecommendation:
    """Theorem 1/2-derived sketch dimensions for a target guarantee."""

    s1: int
    s2: int
    epsilon: float
    delta: float
    #: paper-style counter memory for ``n_virtual_streams`` streams
    sketch_bytes: int

    def __repr__(self) -> str:
        return (
            f"ConfigRecommendation(s1={self.s1}, s2={self.s2}, "
            f"~{self.sketch_bytes // 1024} KB)"
        )


def recommend_config(
    self_join_size: float,
    frequency: float,
    epsilon: float,
    delta: float,
    n_patterns: int = 1,
    n_virtual_streams: int = 229,
) -> ConfigRecommendation:
    """Size ``s1``/``s2`` for estimating a (sum of) count(s) of a given
    magnitude within relative error ``epsilon`` at confidence ``1−delta``.

    ``frequency`` is the (anticipated) total count of the query
    pattern(s); ``self_join_size`` the stream's (estimated) ``Σf²`` —
    e.g. from :meth:`repro.sketch.ams.SketchMatrix.estimate_self_join_size`
    on a pilot synopsis.
    """
    s1 = s1_for_sum_query(self_join_size, frequency, n_patterns, epsilon)
    s2 = s2_for_confidence(delta)
    return ConfigRecommendation(
        s1=s1,
        s2=s2,
        epsilon=epsilon,
        delta=delta,
        sketch_bytes=s1 * s2 * n_virtual_streams * 8,
    )
