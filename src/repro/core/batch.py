"""Columnar carrier for the encoded ingest pipeline.

The paper's Algorithm 1 is value-at-a-time: each enumerated pattern
becomes one encoded value, routed to one virtual stream, updating one
sketch.  Because the AMS projection is *linear* — counters are exact
int64 sums of ``count × ξ(value)`` terms, and int64 addition is
associative and commutative — any regrouping of the same (value, count)
multiset produces bit-identical counters.  :class:`EncodedBatch`
exploits exactly that freedom: it carries a whole batch of encoded
pattern occurrences as parallel int64 columns so every downstream layer
(virtual-stream routing, ξ evaluation, sketch updates) can run
vectorised, one numpy call per touched stream instead of one Python
dispatch per value.

Columns
-------

``values``
    Field-reduced encoded values (the ξ family's canonical domain, via
    ``xi.to_field``), ready for :meth:`XiGenerator.xi_batch`.
``counts``
    Signed occurrence counts (negative = deletion).
``residues``
    The virtual-stream routing key ``raw_value mod p``, computed from
    the *unreduced* encoded value — routing and field reduction use
    different moduli, so the residue must be taken before narrowing.

``raw`` keeps the original Python-int encoded values alongside the
columns: the top-k tracker (Algorithm 4) keys its frequency map by the
exact encoded value, and pairing-mode values are arbitrary-precision
integers that do not fit any fixed dtype.  ``tree_offsets`` optionally
records per-tree segment boundaries so order-sensitive consumers (top-k
tracking) can walk a multi-tree batch tree by tree.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ConfigError

__all__ = ["EncodedBatch", "FieldReducer"]


@runtime_checkable
class FieldReducer(Protocol):
    """What a ξ family must expose for batch building: the canonical
    value → field-domain reduction, scalar-iterable and vectorised."""

    def to_field(self, values: Iterable[int], count: int = -1) -> np.ndarray:
        ...  # pragma: no cover - protocol

    def to_field_array(self, values: np.ndarray) -> np.ndarray:
        ...  # pragma: no cover - protocol


class EncodedBatch:
    """A batch of encoded pattern occurrences in columnar form.

    Construct via :meth:`build` (from raw encoded values) rather than
    directly; the constructor trusts its inputs.
    """

    __slots__ = ("values", "counts", "residues", "raw", "tree_offsets")

    def __init__(
        self,
        values: np.ndarray,
        counts: np.ndarray,
        residues: np.ndarray,
        raw: Sequence[int],
        tree_offsets: np.ndarray | None = None,
    ):
        self.values = values
        self.counts = counts
        self.residues = residues
        self.raw = raw
        self.tree_offsets = tree_offsets

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        raw_values: Sequence[int],
        n_streams: int,
        xi: FieldReducer,
        counts: np.ndarray | Sequence[int] | None = None,
        count: int = 1,
        tree_offsets: Sequence[int] | None = None,
    ) -> "EncodedBatch":
        """Build the columns from raw encoded values.

        Parameters
        ----------
        raw_values:
            The encoder's output, as Python ints.  Rabin-mode values are
            bounded (< 2^61) and take a fully vectorised path; pairing
            values may be arbitrary-precision and fall back to exact
            per-value Python arithmetic — in both cases the residue is
            computed from the *unreduced* value, so routing is identical.
        n_streams:
            The virtual-stream prime ``p`` (1 = unpartitioned).
        xi:
            The ξ family whose ``to_field`` / ``to_field_array`` defines
            the canonical value → field reduction for the sketch side.
        counts:
            Per-value signed counts; default is ``count`` for every value.
        count:
            Scalar count used when ``counts`` is omitted.
        tree_offsets:
            Optional cumulative per-tree boundaries (``offsets[t]`` is
            the first row of tree ``t``; length ``n_trees + 1``).
        """
        n = len(raw_values)
        try:
            arr = np.asarray(raw_values, dtype=np.int64)
        except OverflowError:
            # Pairing-mode big integers: reduce exactly in Python first
            # (mod p for routing, to_field for the sketch domain) and only
            # then narrow — never the other way around.
            residues = np.fromiter(
                (v % n_streams for v in raw_values), dtype=np.int64, count=n
            )
            values = xi.to_field(raw_values, count=n)
        else:
            residues = arr % n_streams
            values = xi.to_field_array(arr)
        if counts is None:
            counts = np.full(n, count, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if len(counts) != n:
                raise ConfigError(
                    f"counts has length {len(counts)}, expected {n}"
                )
        offsets = (
            None
            if tree_offsets is None
            else np.asarray(tree_offsets, dtype=np.int64)
        )
        if offsets is not None and (
            len(offsets) < 1 or offsets[0] != 0 or offsets[-1] != n
        ):
            raise ConfigError(
                f"tree_offsets must run from 0 to {n}, got {offsets!r}"
            )
        return cls(values, counts, residues, raw_values, offsets)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    @property
    def n_trees(self) -> int:
        """Trees represented (0 when no per-tree boundaries were kept)."""
        if self.tree_offsets is None:
            return 0
        return len(self.tree_offsets) - 1

    def total_count(self) -> int:
        """Signed sum of the count column (the ``n_values`` delta)."""
        return int(self.counts.sum())

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def segment(self, start: int, stop: int) -> "EncodedBatch":
        """A zero-copy row-range view (numpy slices share memory)."""
        return EncodedBatch(
            self.values[start:stop],
            self.counts[start:stop],
            self.residues[start:stop],
            self.raw[start:stop],
            None,
        )

    def tree_segments(self) -> Iterator[tuple[int, int]]:
        """Per-tree ``(start, stop)`` row ranges, in arrival order."""
        if self.tree_offsets is None:
            raise ConfigError("batch was built without tree_offsets")
        offsets = self.tree_offsets
        for t in range(len(offsets) - 1):
            yield int(offsets[t]), int(offsets[t + 1])

    def iter_residue_groups(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(residue, row_indices)`` for each touched stream.

        One stable argsort over the residue column replaces the
        per-value dict routing of the legacy path; ``row_indices`` keeps
        each group's rows in arrival order, so order-sensitive consumers
        (top-k bulk emulation) see the same sequence the per-value loop
        produced.  Counter updates are order-independent regardless
        (exact int64 sums).
        """
        n = len(self.residues)
        if n == 0:
            return
        order = np.argsort(self.residues, kind="stable")
        sorted_residues = self.residues[order]
        boundaries = np.flatnonzero(sorted_residues[1:] != sorted_residues[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [n]))
        for start, stop in zip(starts, stops):
            yield int(sorted_residues[start]), order[start:stop]

    def __repr__(self) -> str:
        return (
            f"EncodedBatch(n={len(self)}, trees={self.n_trees or '?'}, "
            f"streams={len(np.unique(self.residues)) if len(self) else 0})"
        )
