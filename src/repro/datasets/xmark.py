"""XMark-like stream: auction-site documents (the classic XML benchmark).

The paper evaluates on TREEBANK and DBLP; XMark — the standard synthetic
XML benchmark of the era — is the natural third corpus for stressing a
*mixed* shape profile that sits between them:

* three record species (items, people, open auctions) with different
  field layouts — so the pattern distribution is multi-modal;
* moderate depth (3-6) *and* moderate fan-out, unlike TREEBANK
  (deep/narrow) and DBLP (shallow/bushy);
* genuine structural recursion in item descriptions
  (``parlist → listitem → parlist → …``), XMark's signature feature.

Used by the appendix experiment (`repro.experiments.appendix_xmark`) to
check that SketchTree's behaviour interpolates between the two paper
corpora rather than being an artifact of either shape.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.datasets.zipf import ZipfSampler
from repro.errors import ConfigError
from repro.trees.node import TreeNode
from repro.trees.tree import LabeledTree

_SPECIES = ("item", "person", "open_auction")
_SPECIES_PROBABILITIES = (0.4, 0.3, 0.3)


class XMarkGenerator:
    """Deterministic stream of XMark-like auction-site records.

    Parameters
    ----------
    seed:
        Seed for every draw; the stream is reproducible.
    n_categories, n_cities, n_words:
        Vocabulary sizes for the Zipf-distributed values.
    max_description_depth:
        Recursion bound for the ``parlist``/``listitem`` structure.
    """

    def __init__(
        self,
        seed: int = 0,
        n_categories: int = 60,
        n_cities: int = 40,
        n_words: int = 150,
        max_description_depth: int = 3,
    ):
        if min(n_categories, n_cities, n_words) < 1:
            raise ConfigError("vocabulary sizes must be >= 1")
        if max_description_depth < 1:
            raise ConfigError("max_description_depth must be >= 1")
        self.seed = seed
        self.n_categories = n_categories
        self.n_cities = n_cities
        self.n_words = n_words
        self.max_description_depth = max_description_depth

    def generate(self, n_trees: int) -> Iterator[LabeledTree]:
        """Yield ``n_trees`` records lazily (same seed → same stream)."""
        rng = np.random.default_rng(self.seed)
        categories = ZipfSampler(
            [f"category_{i:03d}" for i in range(self.n_categories)], 1.0, rng
        )
        cities = ZipfSampler(
            [f"city_{i:03d}" for i in range(self.n_cities)], 1.0, rng
        )
        words = ZipfSampler(
            [f"word_{i:03d}" for i in range(self.n_words)], 1.1, rng
        )
        for _ in range(n_trees):
            species = _SPECIES[
                int(rng.choice(len(_SPECIES), p=_SPECIES_PROBABILITIES))
            ]
            if species == "item":
                yield self._item(rng, categories, words)
            elif species == "person":
                yield self._person(rng, cities, categories, words)
            else:
                yield self._auction(rng, words)

    __call__ = generate

    # ------------------------------------------------------------------
    # Species
    # ------------------------------------------------------------------
    def _item(self, rng, categories: ZipfSampler, words: ZipfSampler) -> LabeledTree:
        root = TreeNode("item")
        root.add("location").add(f"loc_{int(rng.integers(0, 12)):02d}")
        root.add("quantity").add(str(int(rng.integers(1, 6))))
        root.add("name").add(words.sample())
        root.add_child(self._description(rng, words))
        for _ in range(int(rng.integers(1, 4))):
            root.add("incategory").add(categories.sample())
        if rng.random() < 0.5:
            root.add("shipping").add(f"ship_{int(rng.integers(0, 4))}")
        return LabeledTree(root)

    def _person(
        self, rng, cities: ZipfSampler, categories: ZipfSampler, words: ZipfSampler
    ) -> LabeledTree:
        root = TreeNode("person")
        root.add("name").add(words.sample())
        root.add("emailaddress").add(f"mail_{int(rng.integers(0, 400)):03d}")
        if rng.random() < 0.6:
            address = root.add("address")
            address.add("street").add(words.sample())
            address.add("city").add(cities.sample())
            address.add("country").add(f"country_{int(rng.integers(0, 15)):02d}")
        profile = root.add("profile")
        for _ in range(int(rng.integers(0, 4))):
            profile.add("interest").add(categories.sample())
        if rng.random() < 0.4:
            profile.add("education").add(f"edu_{int(rng.integers(0, 5))}")
        return LabeledTree(root)

    def _auction(self, rng, words: ZipfSampler) -> LabeledTree:
        root = TreeNode("open_auction")
        root.add("initial").add(f"p{int(rng.integers(1, 80))}")
        for _ in range(int(rng.integers(0, 5))):
            bidder = root.add("bidder")
            bidder.add("date").add(f"d{int(rng.integers(0, 30)):02d}")
            bidder.add("increase").add(f"p{int(rng.integers(1, 20))}")
        root.add("current").add(f"p{int(rng.integers(1, 200))}")
        root.add("itemref").add(f"item_{int(rng.integers(0, 500)):03d}")
        root.add("seller").add(f"person_{int(rng.integers(0, 300)):03d}")
        interval = root.add("interval")
        interval.add("start").add(f"d{int(rng.integers(0, 30)):02d}")
        interval.add("end").add(f"d{int(rng.integers(0, 30)):02d}")
        return LabeledTree(root)

    # ------------------------------------------------------------------
    # The recursive description structure (XMark's hallmark)
    # ------------------------------------------------------------------
    def _description(self, rng, words: ZipfSampler) -> TreeNode:
        description = TreeNode("description")
        description.add_child(self._parlist(rng, words, depth=1))
        return description

    def _parlist(self, rng, words: ZipfSampler, depth: int) -> TreeNode:
        parlist = TreeNode("parlist")
        for _ in range(int(rng.integers(1, 4))):
            listitem = parlist.add("listitem")
            recurse = (
                depth < self.max_description_depth and rng.random() < 0.3
            )
            if recurse:
                listitem.add_child(self._parlist(rng, words, depth + 1))
            else:
                listitem.add("text").add(words.sample())
        return parlist

    def __repr__(self) -> str:
        return f"XMarkGenerator(seed={self.seed})"
