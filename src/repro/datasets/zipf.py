"""Zipf-distributed sampling over a finite vocabulary.

Real-world label and value distributions (author names, journals,
publication years) are heavy-tailed; the generators use this sampler to
reproduce the skew the paper's DBLP results hinge on ("the distribution
of tree patterns in DBLP had higher degree of skew").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError


class ZipfSampler:
    """Samples items from a vocabulary with Zipf(``skew``) probabilities.

    Item ``i`` (0-based rank) is drawn with probability proportional to
    ``1 / (i + 1)^skew``; ``skew = 0`` is uniform.
    """

    def __init__(self, vocabulary: Sequence[str], skew: float, rng: np.random.Generator):
        if not vocabulary:
            raise ConfigError("vocabulary must be non-empty")
        if skew < 0:
            raise ConfigError(f"skew must be >= 0, got {skew}")
        self.vocabulary = list(vocabulary)
        self.skew = skew
        weights = 1.0 / np.arange(1, len(self.vocabulary) + 1) ** skew
        self._probabilities = weights / weights.sum()
        self._rng = rng

    def sample(self) -> str:
        """Draw one item."""
        index = self._rng.choice(len(self.vocabulary), p=self._probabilities)
        return self.vocabulary[int(index)]

    def sample_many(self, n: int) -> list[str]:
        """Draw ``n`` items independently."""
        indexes = self._rng.choice(len(self.vocabulary), size=n, p=self._probabilities)
        return [self.vocabulary[int(i)] for i in indexes]

    def __repr__(self) -> str:
        return f"ZipfSampler(|V|={len(self.vocabulary)}, skew={self.skew})"
