"""TREEBANK-like stream: deep, narrow parse trees with recursive tags.

A probabilistic phrase grammar over Penn-Treebank-style tags.  The real
TREEBANK's salient properties for the paper's experiments are:

* narrow and deep trees (long NP/PP/SBAR recursions);
* recursive element names (an NP inside an NP inside a VP …);
* queries use element names only (the corpus values are encrypted);
* a moderately skewed pattern distribution (accuracy improves *gradually*
  with the top-k size, unlike DBLP — Section 7.7's comparison point).

The grammar below reproduces those properties: expansion probabilities
favour chain-like recursive productions, depth is limited to keep trees
finite, and leaves are bare tag nodes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.trees.node import TreeNode
from repro.trees.tree import LabeledTree

# Productions: nonterminal -> list of (probability, expansion labels).
# An expansion label that has its own productions recurses; others become
# leaf tag nodes.  Probabilities per nonterminal sum to 1.
_GRAMMAR: dict[str, list[tuple[float, tuple[str, ...]]]] = {
    "S": [
        (0.55, ("NP", "VP")),
        (0.20, ("NP", "VP", "PP")),
        (0.10, ("ADVP", "NP", "VP")),
        (0.10, ("SBAR", "NP", "VP")),
        (0.05, ("S", "CC", "S")),
    ],
    "NP": [
        (0.25, ("DT", "NN")),
        (0.15, ("DT", "JJ", "NN")),
        (0.12, ("NNP",)),
        (0.12, ("PRP",)),
        (0.10, ("NN",)),
        (0.08, ("NNS",)),
        (0.10, ("NP", "PP")),
        (0.05, ("NP", "SBAR")),
        (0.03, ("DT", "NN", "NN")),
    ],
    "VP": [
        (0.22, ("VBD", "NP")),
        (0.15, ("VBZ", "NP")),
        (0.12, ("VBP", "NP")),
        (0.10, ("VBD",)),
        (0.10, ("VBD", "NP", "PP")),
        (0.08, ("MD", "VP")),
        (0.08, ("VBG", "NP")),
        (0.08, ("VP", "PP")),
        (0.07, ("VBZ", "SBAR")),
    ],
    "PP": [
        (0.85, ("IN", "NP")),
        (0.15, ("TO", "NP")),
    ],
    "SBAR": [
        (0.50, ("IN", "S")),
        (0.30, ("WHNP", "S")),
        (0.20, ("WHADVP", "S")),
    ],
    "ADVP": [
        (0.70, ("RB",)),
        (0.30, ("RB", "RB")),
    ],
    "WHNP": [
        (0.60, ("WP",)),
        (0.40, ("WDT", "NN")),
    ],
    "WHADVP": [
        (1.00, ("WRB",)),
    ],
}

# Fallback expansions used once the depth limit is hit: the shortest
# non-recursive production per nonterminal.
_TERMINAL_FALLBACK: dict[str, tuple[str, ...]] = {
    "S": ("NP", "VP"),
    "NP": ("NN",),
    "VP": ("VBD",),
    "PP": ("IN", "NP"),
    "SBAR": ("IN", "S"),
    "ADVP": ("RB",),
    "WHNP": ("WP",),
    "WHADVP": ("WRB",),
}

# Depth past the limit at which even fallbacks must ground out: every
# fallback chain reaches leaves within this many extra levels.
_FALLBACK_SLACK = 4


class TreebankGenerator:
    """Deterministic stream of TREEBANK-like parse trees.

    Parameters
    ----------
    seed:
        Seed for the expansion draws; the stream is reproducible.
    max_depth:
        Recursion budget for the grammar; deeper requests fall back to
        minimal productions (real parse trees are depth-bounded too).
    """

    def __init__(self, seed: int = 0, max_depth: int = 9):
        if max_depth < 2:
            raise ConfigError(f"max_depth must be >= 2, got {max_depth}")
        self.seed = seed
        self.max_depth = max_depth
        self._choices = {
            tag: (
                np.asarray([p for p, _ in productions]),
                [expansion for _, expansion in productions],
            )
            for tag, productions in _GRAMMAR.items()
        }

    def generate(self, n_trees: int) -> Iterator[LabeledTree]:
        """Yield ``n_trees`` trees lazily (restartable: same seed → same
        stream)."""
        rng = np.random.default_rng(self.seed)
        for _ in range(n_trees):
            yield self._sentence(rng)

    __call__ = generate

    def _sentence(self, rng: np.random.Generator) -> LabeledTree:
        root = TreeNode("S")
        stack = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            productions = self._choices.get(node.label)
            if productions is None:
                continue  # leaf tag
            if depth >= self.max_depth:
                expansion = _TERMINAL_FALLBACK[node.label]
                if depth >= self.max_depth + _FALLBACK_SLACK:
                    continue  # ground out unconditionally
            else:
                probabilities, expansions = productions
                expansion = expansions[int(rng.choice(len(expansions), p=probabilities))]
            for label in expansion:
                stack.append((node.add(label), depth + 1))
        return LabeledTree(root)

    def __repr__(self) -> str:
        return f"TreebankGenerator(seed={self.seed}, max_depth={self.max_depth})"
