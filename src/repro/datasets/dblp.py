"""DBLP-like stream: shallow, bushy bibliography records with skewed values.

The real DBLP's salient properties for the paper's experiments are:

* shallow, bushy trees (a record element with many field children, each
  field holding one text value);
* queries mixing element names and CDATA values;
* a *highly* skewed pattern distribution — a handful of record shapes
  dominate, which is why a top-k of just 50 already slashed the error in
  Figures 10(c,d).

The generator draws a record type, a fan-out of author fields, and field
values from Zipf-distributed vocabularies, reproducing the shape and the
skew.  Text values become leaf children of their field element, matching
:mod:`repro.trees.xml`'s document mapping.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.datasets.zipf import ZipfSampler
from repro.errors import ConfigError
from repro.trees.node import TreeNode
from repro.trees.tree import LabeledTree

_RECORD_TYPES = ("article", "inproceedings", "book", "phdthesis", "www")
_RECORD_PROBABILITIES = (0.52, 0.34, 0.07, 0.04, 0.03)

#: Per-record-type optional fields with inclusion probabilities (besides
#: the always-present author(s), title and year).
_OPTIONAL_FIELDS: dict[str, tuple[tuple[str, float], ...]] = {
    "article": (("journal", 0.95), ("volume", 0.8), ("pages", 0.75), ("ee", 0.4)),
    "inproceedings": (("booktitle", 0.97), ("pages", 0.8), ("ee", 0.45), ("crossref", 0.3)),
    "book": (("publisher", 0.9), ("isbn", 0.6), ("series", 0.3)),
    "phdthesis": (("school", 0.95), ("publisher", 0.2)),
    "www": (("url", 0.98), ("note", 0.3)),
}


class DblpGenerator:
    """Deterministic stream of DBLP-like bibliography records.

    Parameters
    ----------
    seed:
        Seed for every draw; the stream is reproducible.
    n_authors, n_venues, n_title_words:
        Vocabulary sizes for the Zipf-distributed values; smaller
        vocabularies concentrate the pattern distribution further.
    value_skew:
        Zipf exponent of the value vocabularies (1.0 ≈ natural skew).
    """

    def __init__(
        self,
        seed: int = 0,
        n_authors: int = 300,
        n_venues: int = 40,
        n_title_words: int = 120,
        value_skew: float = 1.0,
    ):
        if min(n_authors, n_venues, n_title_words) < 1:
            raise ConfigError("vocabulary sizes must be >= 1")
        self.seed = seed
        self.n_authors = n_authors
        self.n_venues = n_venues
        self.n_title_words = n_title_words
        self.value_skew = value_skew

    def generate(self, n_trees: int) -> Iterator[LabeledTree]:
        """Yield ``n_trees`` record trees lazily (same seed → same stream)."""
        rng = np.random.default_rng(self.seed)
        skew = self.value_skew
        authors = ZipfSampler(
            [f"author_{i:04d}" for i in range(self.n_authors)], skew, rng
        )
        venues = ZipfSampler(
            [f"venue_{i:03d}" for i in range(self.n_venues)], skew, rng
        )
        words = ZipfSampler(
            [f"word_{i:03d}" for i in range(self.n_title_words)], skew, rng
        )
        years = ZipfSampler(
            [str(year) for year in range(2005, 1969, -1)], 1.2, rng
        )
        for _ in range(n_trees):
            yield self._record(rng, authors, venues, words, years)

    __call__ = generate

    def _record(
        self,
        rng: np.random.Generator,
        authors: ZipfSampler,
        venues: ZipfSampler,
        words: ZipfSampler,
        years: ZipfSampler,
    ) -> LabeledTree:
        record_type = _RECORD_TYPES[
            int(rng.choice(len(_RECORD_TYPES), p=_RECORD_PROBABILITIES))
        ]
        root = TreeNode(record_type)
        # 1-5 authors, skewed towards fewer (real DBLP's author-count law).
        n_authors = int(rng.choice([1, 2, 3, 4, 5], p=[0.35, 0.33, 0.19, 0.09, 0.04]))
        for _ in range(n_authors):
            root.add("author").add(authors.sample())
        root.add("title").add(words.sample())
        root.add("year").add(years.sample())
        for field, probability in _OPTIONAL_FIELDS[record_type]:
            if rng.random() < probability:
                node = root.add(field)
                if field in ("journal", "booktitle", "publisher", "school", "series"):
                    node.add(venues.sample())
                elif field in ("pages", "volume"):
                    node.add(f"v{int(rng.integers(1, 60))}")
                elif field in ("ee", "url", "crossref", "note", "isbn"):
                    node.add(f"ref_{int(rng.integers(0, 25)):02d}")
        return LabeledTree(root)

    def __repr__(self) -> str:
        return (
            f"DblpGenerator(seed={self.seed}, authors={self.n_authors}, "
            f"venues={self.n_venues})"
        )
