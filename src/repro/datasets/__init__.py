"""Synthetic dataset substrate standing in for the paper's XML corpora.

The paper evaluates on two real XML collections from the UW repository:

* **TREEBANK** — 28,699 parsed-sentence trees, *narrow and deep* with
  recursive element names; values encrypted, so queries use element names
  only.
* **DBLP** — 98,061 bibliography records, *shallow and bushy*; queries
  mix element names and CDATA values; the pattern distribution is highly
  skewed (a few record shapes dominate).

Neither corpus ships with this reproduction, so we implement generators
producing streams with the same structural signatures (see DESIGN.md §3
for the substitution argument):

* :class:`~repro.datasets.treebank.TreebankGenerator` — a probabilistic
  English-like phrase grammar yielding deep, narrow, recursive trees over
  Penn-Treebank-style tags.
* :class:`~repro.datasets.dblp.DblpGenerator` — bibliography records with
  Zipf-distributed field values, yielding shallow bushy trees with a
  heavily skewed pattern distribution.

Both are deterministic given their seed and stream lazily.
"""

from repro.datasets.dblp import DblpGenerator
from repro.datasets.treebank import TreebankGenerator
from repro.datasets.xmark import XMarkGenerator
from repro.datasets.zipf import ZipfSampler

__all__ = ["DblpGenerator", "TreebankGenerator", "XMarkGenerator", "ZipfSampler"]
