"""The HTTP transport: routing, JSON codec, error mapping.

A thin adapter from :class:`http.server.ThreadingHTTPServer` onto
:class:`~repro.serve.service.ShardedService` — the handler owns *no*
state of its own beyond the request it is parsing, which is what makes
the one-handler-instance-per-request model of ``http.server`` safe:
every shared object the handler touches (the service, the registry)
carries its own thread-safety contract.

Endpoints::

    GET  /healthz                 liveness (200 ok / 503 failing)
    GET  /readyz                  readiness (200 ready / 503 not yet)
    GET  /metrics                 Prometheus text exposition, live
    GET  /stats                   per-shard JSON introspection
    GET  /window/topk[?limit=N]   the live window's trending patterns
    GET  /admin/topk[?limit=N]    quiesce + merge(): whole-stream top-k
    POST /ingest                  {"trees": ["(A (B))", ...]}
    POST /estimate/<kind>         lock-free sum of per-shard estimates
    POST /window/estimate/<kind>  same, over the shards' sliding windows
    POST /admin/estimate/<kind>   quiesce + merge(): the exact answer
    POST /admin/drain             quiesce only (apply every queued batch)
    POST /admin/snapshot          quiesce + checkpoint every shard

``<kind>`` is one of ``ordered``, ``unordered``, ``sum``, ``xpath``
(window estimates: no ``xpath``).  The top-k and window surfaces need
the service configured with ``--topk`` / ``--window-trees`` — without
them those routes answer 409.

Error mapping (one place, for every route): :class:`ApiError` carries
its own status; ``queue.Full`` is 503 backpressure with a
``Retry-After``; other :class:`~repro.errors.ReproError` subtypes are
400s (the request named an invalid pattern/config) except
:class:`~repro.errors.SnapshotError`, which is a 500 (the server failed
the durable part).
"""

from __future__ import annotations

import json
import queue
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError, SnapshotError
from repro.obs.export import to_prometheus_text
from repro.serve.models import (
    ApiError,
    parse_estimate_request,
    parse_ingest_request,
    parse_topk_limit,
)
from repro.serve.service import ShardedService

__all__ = ["ApiHandler", "ServingHTTPServer", "make_server"]

#: Largest request body accepted, in bytes (64 MiB) — bounds one
#: handler thread's parse memory before tree validation even starts.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServingHTTPServer(ThreadingHTTPServer):  # sketchlint: thread-safe
    """A ``ThreadingHTTPServer`` carrying the service it fronts.

    Thread-safe: the two attributes added here are assigned once before
    ``serve_forever`` and only read by handler threads.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ShardedService):
        super().__init__(address, ApiHandler)
        self.service = service


class ApiHandler(BaseHTTPRequestHandler):  # sketchlint: thread-confined
    """One instance per request, on that request's handler thread.

    Thread-confined by the ``http.server`` model; all sharing goes
    through ``self.server.service`` (thread-safe) and the registry.
    """

    server: ServingHTTPServer
    protocol_version = "HTTP/1.1"
    #: Quiet by default; ``repro.serve.app`` flips this for ``--verbose``.
    log_requests = False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server's naming
        try:
            parts = urlsplit(self.path)
            path, params = parts.path, parse_qs(parts.query)
            if path == "/healthz":
                health = self.server.service.health()
                self._send_json(
                    health, status=200 if health["status"] == "ok" else 503
                )
            elif path == "/readyz":
                ready = self.server.service.ready()
                self._send_json(ready, status=200 if ready["ready"] else 503)
            elif path == "/metrics":
                self._send_text(
                    to_prometheus_text(self.server.service.metrics),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/stats":
                self._send_json(self.server.service.stats())
            elif path == "/window/topk":
                limit = parse_topk_limit(params)
                self._send_json(self.server.service.window_topk(limit))
            elif path == "/admin/topk":
                limit = parse_topk_limit(params)
                self._send_json(self.server.service.topk(limit))
            else:
                self._send_json({"error": f"no such path {path!r}"}, 404)
        except Exception as exc:  # noqa: BLE001 — boundary: map, don't crash
            self._send_error(exc)

    def do_POST(self) -> None:  # noqa: N802 — http.server's naming
        try:
            service = self.server.service
            if self.path == "/ingest":
                trees = parse_ingest_request(self._read_json())
                self._send_json(service.submit(trees), status=202)
            elif self.path.startswith("/estimate/"):
                kind = self.path[len("/estimate/"):]
                parsed = parse_estimate_request(kind, self._read_json())
                self._send_json(service.estimate(kind, parsed))
            elif self.path.startswith("/window/estimate/"):
                kind = self.path[len("/window/estimate/"):]
                parsed = parse_estimate_request(kind, self._read_json())
                self._send_json(service.window_estimate(kind, parsed))
            elif self.path.startswith("/admin/estimate/"):
                kind = self.path[len("/admin/estimate/"):]
                parsed = parse_estimate_request(kind, self._read_json())
                self._send_json(service.admin_estimate(kind, parsed))
            elif self.path == "/admin/drain":
                self._send_json(service.drain())
            elif self.path == "/admin/snapshot":
                paths = service.snapshot()
                self._send_json({"checkpoints": [str(p) for p in paths]})
            else:
                self._send_json({"error": f"no such path {self.path!r}"}, 404)
        except Exception as exc:  # noqa: BLE001 — boundary: map, don't crash
            self._send_error(exc)

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError("request needs a JSON body (Content-Length > 0)")
        if length > MAX_BODY_BYTES:
            raise ApiError(
                f"request body over {MAX_BODY_BYTES} bytes", status=413
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ApiError(f"request body is not valid JSON: {exc}") from exc

    def _send_json(
        self, payload: dict, status: int = 200, extra_headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: Exception) -> None:
        """The one error-mapping table for every route."""
        if isinstance(exc, ApiError):
            self._send_json({"error": str(exc)}, status=exc.status)
        elif isinstance(exc, queue.Full):
            self._send_json(
                {"error": "ingest queue full, retry with backoff"},
                status=503,
                extra_headers={"Retry-After": "1"},
            )
        elif isinstance(exc, SnapshotError):
            self._send_json({"error": f"checkpoint failed: {exc}"}, status=500)
        elif isinstance(exc, ReproError):
            self._send_json({"error": str(exc)}, status=400)
        else:
            self._send_json(
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
                status=500,
            )

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.log_requests:
            super().log_message(format, *args)


def make_server(
    service: ShardedService, host: str = "127.0.0.1", port: int = 0
) -> ServingHTTPServer:
    """Bind a serving socket (``port=0`` picks an ephemeral port).

    Starts nothing: the caller starts the shards and runs
    ``serve_forever`` (see :mod:`repro.serve.app`); the actually bound
    port is ``server.server_address[1]``.
    """
    return ServingHTTPServer((host, port), service)
