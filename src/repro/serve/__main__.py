"""``python -m repro.serve`` — run the serving tier standalone."""

import sys

from repro.serve.app import main

if __name__ == "__main__":
    sys.exit(main())
