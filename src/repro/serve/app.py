"""Process lifecycle for the serving tier: args, signals, graceful stop.

Wires :class:`~repro.serve.service.ShardedService` to
:class:`~repro.serve.api.ServingHTTPServer` and runs the accept loop in
a background thread while the main thread waits for a shutdown signal.
``SIGTERM``/``SIGINT`` trigger the graceful sequence: stop accepting
connections, drain every shard queue (every acknowledged batch is
applied), then write a final per-shard checkpoint when a checkpoint
directory is configured — so ``--resume`` on the next start loses
nothing that was ever acknowledged with a 202.

Run standalone (``python -m repro.serve --port 0`` prints the bound
ephemeral port) or through the CLI (``sketchtree-experiments serve``),
which shares this module's argument table.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.core.config import SketchTreeConfig
from repro.errors import ReproError
from repro.obs.registry import MetricsRegistry
from repro.serve.api import ApiHandler, ServingHTTPServer, make_server
from repro.serve.service import ShardedService

__all__ = [
    "ServerApp",
    "add_serve_arguments",
    "build_parser",
    "config_from_args",
    "main",
    "run_from_args",
    "service_from_args",
]


class ServerApp:  # sketchlint: thread-confined
    """One serving process: HTTP accept loop + shard threads + shutdown.

    Thread-confined to the main thread: :meth:`start`,
    :meth:`wait_for_signal` and :meth:`shutdown` are called there (and
    Python delivers signal handlers on the main thread); only the accept
    loop runs on the background thread, via the thread-safe server
    object.
    """

    def __init__(
        self,
        service: ShardedService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.httpd: ServingHTTPServer = make_server(service, host=host, port=port)
        self._accept_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="sketchtree-http-accept",
            daemon=True,
        )
        self._stop_requested = threading.Event()

    @property
    def port(self) -> int:
        """The actually bound port (meaningful after construction even
        for ``--port 0``, which binds an ephemeral port)."""
        return self.httpd.server_address[1]

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    def start(self) -> None:
        """Start the shard drain threads, then the HTTP accept loop."""
        self.service.start()
        self._accept_thread.start()

    def install_signal_handlers(self) -> None:
        """Route ``SIGTERM``/``SIGINT`` into :meth:`wait_for_signal`.

        Main thread only (a CPython restriction on ``signal.signal``).
        """
        def _request_stop(signum: int, frame: object) -> None:
            self._stop_requested.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    def request_stop(self) -> None:
        """Programmatic equivalent of receiving ``SIGTERM``."""
        self._stop_requested.set()

    def wait_for_signal(self) -> None:
        """Block the main thread until a stop is requested."""
        self._stop_requested.wait()

    def shutdown(self) -> list:
        """The graceful sequence; returns final checkpoint paths.

        Order matters: close the listening socket first (no new work can
        arrive), then stop the service — which gates ingress, drains
        every queued batch into the shard synopses, joins the drain
        threads, and writes final checkpoints if configured.
        """
        self.httpd.shutdown()
        if self._accept_thread.is_alive():
            self._accept_thread.join()
        self.httpd.server_close()
        return self.service.stop()


# ---------------------------------------------------------------------------
# Arguments (shared with the `sketchtree-experiments serve` subcommand)
# ---------------------------------------------------------------------------

def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the serving tier's options (service + synopsis) to a parser."""
    group = parser.add_argument_group("serving")
    group.add_argument("--host", default="127.0.0.1", help="bind address")
    group.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 = ephemeral; the bound port is printed)",
    )
    group.add_argument(
        "--shards", type=int, default=4, help="ingest shards (drain threads)"
    )
    group.add_argument(
        "--queue-batches",
        type=int,
        default=64,
        help="per-shard queue capacity in batches; a full queue answers "
        "503 backpressure (default 64)",
    )
    group.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="enable /admin/snapshot and shutdown checkpoints into DIR",
    )
    group.add_argument(
        "--keep", type=int, default=3, help="checkpoints retained per shard"
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="restore each shard from its newest checkpoint in "
        "--checkpoint-dir before serving",
    )
    group.add_argument(
        "--window-trees",
        type=int,
        default=0,
        metavar="N",
        help="run a sliding window of ~N trees per shard, enabling the "
        "/window/* query surface (0 = no windows)",
    )
    group.add_argument(
        "--bucket-trees",
        type=int,
        default=None,
        metavar="N",
        help="window bucket granularity in trees (default window/8)",
    )
    group.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    synopsis = parser.add_argument_group("synopsis configuration")
    synopsis.add_argument(
        "--s1", type=int, default=50, help="AMS instances per group"
    )
    synopsis.add_argument(
        "--s2", type=int, default=7, help="median-of-means groups"
    )
    synopsis.add_argument("--k", type=int, default=3, help="max pattern edges")
    synopsis.add_argument(
        "--streams", type=int, default=229, help="virtual streams (prime)"
    )
    synopsis.add_argument(
        "--summary",
        action="store_true",
        help="maintain the structural summary (enables * and // queries)",
    )
    synopsis.add_argument(
        "--topk",
        type=int,
        default=0,
        metavar="K",
        help="track the K heaviest values per virtual stream (Section "
        "5.2); enables /admin/topk and, with --window-trees, "
        "/window/topk (0 = off)",
    )
    synopsis.add_argument("--seed", type=int, default=0, help="master seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Sharded always-on SketchTree serving tier "
        "(see docs/serving.md for the endpoint reference).",
    )
    add_serve_arguments(parser)
    return parser


def config_from_args(args: argparse.Namespace) -> SketchTreeConfig:
    return SketchTreeConfig(
        s1=args.s1,
        s2=args.s2,
        max_pattern_edges=args.k,
        n_virtual_streams=args.streams,
        topk_size=args.topk,
        maintain_summary=args.summary,
        seed=args.seed,
    )


def service_from_args(args: argparse.Namespace) -> ShardedService:
    return ShardedService(
        config_from_args(args),
        n_shards=args.shards,
        max_pending=args.queue_batches,
        metrics=MetricsRegistry(),
        checkpoint_dir=args.checkpoint_dir,
        keep_last=args.keep,
        resume=args.resume,
        window_trees=args.window_trees,
        bucket_trees=args.bucket_trees,
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Build, serve, wait for a signal, shut down gracefully."""
    try:
        service = service_from_args(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.verbose:
        ApiHandler.log_requests = True
    app = ServerApp(service, host=args.host, port=args.port)
    app.install_signal_handlers()
    app.start()
    resumed = sum(shard.synopsis.n_trees for shard in service.shards)
    if resumed:
        print(f"resumed {resumed} trees from {args.checkpoint_dir}", flush=True)
    # The smoke test and orchestration scripts parse this line for the
    # ephemeral port — keep its shape stable.
    print(
        f"serving on http://{app.host}:{app.port} "
        f"({args.shards} shards, queue {args.queue_batches}/shard)",
        flush=True,
    )
    app.wait_for_signal()
    print("shutting down: draining shard queues...", flush=True)
    checkpoints = app.shutdown()
    for path in checkpoints:
        print(f"wrote final checkpoint {path}", flush=True)
    print("stopped cleanly", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))
