"""The sharded always-on serving tier.

A long-lived, stdlib-only HTTP service over the paper's synopsis: N
ingest *shards* — each a single-writer thread draining a bounded queue
into its own :class:`~repro.core.sketchtree.SketchTree` built from one
shared config/seed — and a query tier that answers ``estimate_*`` by
summing per-shard estimates (lock-free reads under the single-writer
contract) or, for exact-merge admin queries, by quiescing the queues and
:meth:`~repro.core.sketchtree.SketchTree.merge`-ing the shards.  AMS
linearity is the scale-out story: shard synopses built with the same
config/seed merge bit-identically to one synopsis over the concatenated
stream, so sharding changes throughput, never answers.

Layering (the api / services split):

======================  ==================================================
``repro.serve.models``  request/response schemas, validation, API errors
``repro.serve.shards``  ``IngestShard`` — queue + drain thread + synopsis
``repro.serve.service`` ``ShardedService`` — routing, estimates, admin
``repro.serve.api``     HTTP handler: routing table, JSON, error mapping
``repro.serve.app``     process lifecycle: args, signals, graceful stop
======================  ==================================================

Run it::

    sketchtree-experiments serve --shards 4 --port 8080
    python -m repro.serve --port 0          # ephemeral port, printed

See docs/serving.md for the endpoint reference and the restart/resume
semantics, and docs/concurrency.md for the threading model the
``http-handlers`` / ``shard-ingest`` sketchlint entrypoint groups check.
"""

from repro.serve.models import ApiError, ESTIMATE_KINDS
from repro.serve.service import ShardedService
from repro.serve.shards import IngestShard

__all__ = ["ApiError", "ESTIMATE_KINDS", "IngestShard", "ShardedService"]
