"""Ingest shards: one bounded queue, one drain thread, one synopsis.

Each :class:`IngestShard` owns a private
:class:`~repro.core.sketchtree.SketchTree` and the *only* thread that
ever mutates it — the drain loop — so the synopsis' single-writer
contract (docs/concurrency.md) holds by construction.  Producers (HTTP
handler threads) talk to the shard exclusively through its bounded
``queue.Queue``: a full queue is backpressure (the API answers 503),
never an unbounded buffer.

Quiescing uses the queue's task accounting: :meth:`IngestShard.drain`
is ``Queue.join()``, which returns only when every enqueued batch has
been *applied* to the synopsis, not merely dequeued.  That is what lets
the service layer run exact ``merge()`` queries and checkpoints against
shard synopses with no in-flight updates.
"""

from __future__ import annotations

import queue
import threading

from repro.core.config import SketchTreeConfig
from repro.core.sketchtree import SketchTree
from repro.core.window import WindowedSketchTree
from repro.errors import ConfigError
from repro.obs.registry import Registry
from repro.trees.tree import LabeledTree

__all__ = ["IngestShard"]

#: How often the drain loop re-checks its stop flag while idle (seconds).
_IDLE_POLL_SECONDS = 0.05


class IngestShard:  # sketchlint: thread-safe
    """A single-writer ingest lane: bounded queue → drain thread → synopsis.

    Thread-safe surface: any thread may :meth:`submit`, :meth:`drain`,
    :meth:`stop`, or read :attr:`pending`/:meth:`error` concurrently —
    the queue carries its own synchronisation and the one mutable flag
    (:attr:`_error`) is lock-guarded.  The ``synopsis`` attribute itself
    is assigned once in the constructor and mutated only by the drain
    thread; readers (the query tier) follow the synopsis' own
    single-writer read contract.

    Parameters
    ----------
    index:
        Shard number (naming for threads, checkpoints, logs).
    config:
        The shared synopsis configuration — every shard of a service
        must use the same config/seed for ``merge()`` and summed
        estimates to be sound.
    max_pending:
        Queue capacity in *batches*; a full queue raises ``queue.Full``
        to the submitter (backpressure), bounding shard memory.
    synopsis:
        A restored synopsis to adopt (checkpoint resume); ``None``
        builds a fresh one from ``config``.
    window:
        An optional :class:`~repro.core.window.WindowedSketchTree` the
        drain thread feeds alongside the whole-stream synopsis — the
        shard's slice of the service's sliding window.  Same
        single-writer contract: only the drain thread mutates it.
    """

    def __init__(
        self,
        index: int,
        config: SketchTreeConfig,
        metrics: Registry | None = None,
        max_pending: int = 64,
        synopsis: SketchTree | None = None,
        window: WindowedSketchTree | None = None,
    ):
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        if synopsis is not None and synopsis.config != config:
            raise ConfigError(
                f"restored synopsis for shard {index} was built with a "
                "different config than the service's"
            )
        self.index = index
        self.config = config
        self.synopsis = (
            synopsis if synopsis is not None else SketchTree(config, metrics=metrics)
        )
        if synopsis is not None and metrics is not None:
            self.synopsis.set_metrics(metrics)
        if window is not None and window.config != config:
            raise ConfigError(
                f"window for shard {index} was built with a different "
                "config than the service's"
            )
        self.window = window
        self._queue: queue.Queue[list[LabeledTree]] = queue.Queue(
            maxsize=max_pending
        )
        self._stop = threading.Event()
        self._started = threading.Event()
        self._lock = threading.Lock()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._drain_loop, name=f"sketchtree-shard-{index}", daemon=True
        )

    # ------------------------------------------------------------------
    # Producer side (any thread)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the drain thread (idempotent-unsafe: call exactly once)."""
        self._thread.start()
        self._started.wait()

    def submit(self, trees: list[LabeledTree]) -> None:
        """Enqueue one batch without blocking.

        Raises ``queue.Full`` when the shard is saturated — the caller
        surfaces that as 503 backpressure rather than buffering
        unboundedly — and :class:`~repro.errors.ConfigError` after
        :meth:`stop`.
        """
        if self._stop.is_set():
            raise ConfigError(f"shard {self.index} is stopped")
        self._queue.put_nowait(trees)

    def drain(self) -> None:
        """Block until every batch enqueued so far has been *applied*."""
        self._queue.join()

    def stop(self, drain: bool = True) -> None:
        """Stop the drain thread, by default after emptying the queue."""
        if drain and self._thread.is_alive():
            self._queue.join()
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join()

    # ------------------------------------------------------------------
    # Drain side (the shard's own thread — the synopsis' single writer)
    # ------------------------------------------------------------------
    def _drain_loop(self) -> None:
        """Apply queued batches to the synopsis until stopped.

        The one writer of ``self.synopsis`` (and of ``self.window``,
        when the service configured one).  A batch that raises is
        recorded as the shard's fault (surfaced through ``/healthz``)
        and the shard stops *applying* — but keeps consuming and
        acknowledging batches, so ``Queue.join()``-based quiescing can
        never deadlock on a faulted shard.
        """
        self._started.set()
        while True:
            try:
                batch = self._queue.get(timeout=_IDLE_POLL_SECONDS)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            try:
                if self.error() is None:
                    self.synopsis.update_batch(batch)
                    if self.window is not None:
                        self.window.update_batch(batch)
            except BaseException as exc:  # noqa: BLE001 — recorded, not raised
                with self._lock:
                    self._error = exc
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    # Introspection (any thread)
    # ------------------------------------------------------------------
    def error(self) -> BaseException | None:
        """The first ingest fault, or ``None`` while healthy."""
        with self._lock:
            return self._error

    @property
    def started(self) -> bool:
        return self._started.is_set()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def pending(self) -> int:
        """Batches enqueued but not yet applied (approximate, racy read)."""
        return self._queue.qsize()

    @property
    def capacity(self) -> int:
        return self._queue.maxsize

    def __repr__(self) -> str:
        return (
            f"IngestShard({self.index}, trees={self.synopsis.n_trees}, "
            f"pending={self.pending}/{self.capacity}, "
            f"alive={self.alive})"
        )
