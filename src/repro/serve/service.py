"""The service layer: shard routing, query fan-out, admin operations.

:class:`ShardedService` is what the HTTP handlers call into — it owns
the shard set and implements the three interaction patterns of the tier:

* **Ingest** — round-robin routing of tree batches onto the shards'
  bounded queues (backpressure propagates as ``queue.Full``).
* **Read path** — ``estimate_*`` sums the per-shard estimates with no
  locks taken: shard synopses follow the single-writer contract, whose
  racy-but-benign concurrent reads are exactly the AMS-linearity
  argument of docs/concurrency.md.  A summed estimate is therefore an
  estimate over *some* valid prefix of each shard's sub-stream.
* **Admin path** — operations needing a serialisation point (exact
  ``merge()`` queries, checkpoints, drain, shutdown) hold the *admin
  gate*, which new ingest submissions also take briefly: while an admin
  operation runs, ingress stalls, the queues drain to empty, and the
  shard synopses are quiesced — making ``merge()`` sound per its
  contract (bit-identical to one synopsis over the concatenated
  stream).

Health/readiness are *derived from the metrics registry's gauges* (not
from privileged internal state): the service registers pull gauges for
queue depth, shards started/alive and faults, and :meth:`health` /
:meth:`ready` read those same gauges a scraper sees on ``/metrics``.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.core.config import SketchTreeConfig
from repro.core.sketchtree import SketchTree
from repro.core.snapshot import CheckpointManager
from repro.core.window import WindowedSketchTree
from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry, Registry
from repro.serve.models import ESTIMATE_KINDS, ApiError, render_topk_entries
from repro.serve.shards import IngestShard
from repro.trees.tree import LabeledTree

__all__ = ["ShardedService"]


class ShardedService:  # sketchlint: thread-safe
    """N single-writer ingest shards behind one query/admin facade.

    Thread-safe: every public method may be called from any HTTP
    handler thread.  The round-robin cursor is lock-guarded, admin
    operations serialise on the admin gate, and everything else is
    either immutable after construction or delegates to components
    carrying their own contracts (shards, checkpoint managers, the
    registry).

    Parameters
    ----------
    config:
        The one synopsis configuration every shard shares — the
        ``merge()`` contract (same config and seed) is what makes both
        summed estimates and exact-merge admin queries sound.
        ``topk_size > 0`` runs per-shard trackers freely: the fold/
        unfold protocol of :mod:`repro.core.topk` lets quiesce-and-merge
        compose them, and ``/admin/topk`` serves the merged heavy-hitter
        list.
    n_shards:
        Ingest parallelism (one drain thread per shard).
    window_trees, bucket_trees:
        ``window_trees > 0`` additionally runs one
        :class:`~repro.core.window.WindowedSketchTree` per shard (fed by
        that shard's drain thread), enabling the ``/window/*`` query
        surface — sliding-window estimates and, with ``topk_size > 0``,
        the live trending-pattern list of ``/window/topk``.  Each shard
        windows its *own* sub-stream, so the served window covers the
        last ``≈ n_shards × window_trees`` trees of the interleaved
        stream; size ``window_trees`` accordingly.  Windows are
        in-memory only: checkpoints persist the whole-stream synopses,
        and a resumed service re-fills its windows from live traffic.
    max_pending:
        Per-shard queue capacity in batches (backpressure bound).
    metrics:
        The registry health and ``/metrics`` are served from; ``None``
        builds a private :class:`~repro.obs.registry.MetricsRegistry`
        (the serving tier always runs with live metrics — they are its
        health surface).
    checkpoint_dir:
        Directory for per-shard checkpoints (``shard00-*.sktsnap``, …);
        ``None`` disables snapshot/resume endpoints.
    resume:
        Restore each shard from its newest valid checkpoint before
        serving (missing checkpoints start that shard fresh).
    """

    def __init__(
        self,
        config: SketchTreeConfig,
        n_shards: int = 4,
        max_pending: int = 64,
        metrics: Registry | None = None,
        checkpoint_dir: str | Path | None = None,
        keep_last: int = 3,
        resume: bool = False,
        window_trees: int = 0,
        bucket_trees: int | None = None,
    ):
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        if window_trees < 0:
            raise ConfigError(f"window_trees must be >= 0, got {window_trees}")
        if resume and checkpoint_dir is None:
            raise ConfigError("resume=True needs a checkpoint_dir")
        self.config = config
        self.metrics: Registry = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.checkpoints: tuple[CheckpointManager, ...] = ()
        if checkpoint_dir is not None:
            self.checkpoints = tuple(
                CheckpointManager(
                    checkpoint_dir,
                    keep_last=keep_last,
                    prefix=f"shard{index:02d}",
                    metrics=self.metrics,
                )
                for index in range(n_shards)
            )
        self.window_trees = window_trees
        self.bucket_trees = bucket_trees
        self.shards: tuple[IngestShard, ...] = tuple(
            IngestShard(
                index,
                config,
                metrics=self.metrics,
                max_pending=max_pending,
                synopsis=(
                    self._resumed_synopsis(index) if resume else None
                ),
                window=(
                    WindowedSketchTree(config, window_trees, bucket_trees)
                    if window_trees
                    else None
                ),
            )
            for index in range(n_shards)
        )
        self._route_lock = threading.Lock()
        self._next_shard = 0
        #: The admin gate: held (briefly) by every ingest submission and
        #: (for the whole operation) by quiescing admin paths.
        self._gate = threading.Lock()
        self._stopped = False
        self._register_metrics()

    def _resumed_synopsis(self, index: int) -> SketchTree | None:
        """Shard ``index``'s newest checkpoint, narrowed to a synopsis.

        Shard checkpoints are whole-stream :class:`SketchTree` snapshots;
        a window container in the shard's slot means the directory is
        being shared with some other producer — refuse rather than adopt
        the wrong synopsis type.
        """
        restored = self.checkpoints[index].load_latest(
            expected_config=self.config
        )
        if restored is not None and not isinstance(restored, SketchTree):
            raise ConfigError(
                f"checkpoint for shard {index} holds a windowed snapshot; "
                "shard checkpoints are whole-stream synopses"
            )
        return restored

    # ------------------------------------------------------------------
    # Observability (the health surface)
    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        shards = self.shards
        obs = self.metrics
        obs.gauge(
            "serve_shards",
            help="configured ingest shards",
            fn=lambda: len(shards),
        )
        obs.gauge(
            "serve_shards_started",
            help="shards whose drain thread has started",
            fn=lambda: sum(1 for shard in shards if shard.started),
        )
        obs.gauge(
            "serve_shards_alive",
            help="shards whose drain thread is running",
            fn=lambda: sum(1 for shard in shards if shard.alive),
        )
        obs.gauge(
            "serve_shard_faults",
            help="shards that recorded an ingest fault",
            fn=lambda: sum(1 for shard in shards if shard.error() is not None),
        )
        # The multi-line help string doubles as live coverage of the
        # exporter's HELP escaping (a raw newline would corrupt the
        # exposition text) — tests parse /metrics and round-trip it.
        obs.gauge(
            "serve_queue_depth",
            help=(
                "ingest batches waiting in shard queues\n"
                "(bounded per shard; a full queue answers 503 backpressure)"
            ),
            fn=lambda: sum(shard.pending for shard in shards),
        )
        obs.gauge(
            "serve_queue_capacity",
            help="total ingest queue capacity across shards (batches)",
            fn=lambda: sum(shard.capacity for shard in shards),
        )
        obs.counter(
            "serve_trees_total",
            help="trees absorbed into shard synopses since (re)start",
            fn=lambda: sum(shard.synopsis.n_trees for shard in shards),
        )
        if self.config.topk_size:
            obs.gauge(
                "serve_topk_deleted_self_join_mass",
                help="self-join mass held out of the whole-stream counters "
                "by the shards' top-k trackers",
                fn=lambda: float(
                    sum(
                        shard.synopsis.deleted_self_join_mass()
                        for shard in shards
                    )
                ),
            )
        if self.window_trees:
            obs.gauge(
                "serve_window_trees_covered",
                help="trees currently covered by the shards' sliding windows",
                fn=lambda: sum(
                    shard.window.window_size_actual
                    for shard in shards
                    if shard.window is not None
                ),
            )
            if self.config.topk_size:
                obs.counter(
                    "serve_window_topk_refolds_total",
                    help="per-stream trackers refolded on window bucket "
                    "expiry, summed across shards",
                    fn=lambda: sum(
                        shard.window.n_refolds
                        for shard in shards
                        if shard.window is not None
                    ),
                )
                obs.gauge(
                    "serve_window_topk_deleted_self_join_mass",
                    help="self-join mass deleted by the live window "
                    "buckets' trackers, summed across shards",
                    fn=lambda: float(
                        sum(
                            shard.window.deleted_self_join_mass()
                            for shard in shards
                            if shard.window is not None
                        )
                    ),
                )

    def health(self) -> dict:
        """Liveness, derived from the registry's gauges.

        Healthy while no shard has faulted and every started drain
        thread is still running — the same numbers a scraper reads off
        ``/metrics``.
        """
        obs = self.metrics
        alive = obs.gauge("serve_shards_alive").value
        started = obs.gauge("serve_shards_started").value
        faults = obs.gauge("serve_shard_faults").value
        healthy = faults == 0 and alive >= started
        return {
            "status": "ok" if healthy else "failing",
            "shards": len(self.shards),
            "alive": int(alive),
            "faults": int(faults),
        }

    def ready(self) -> dict:
        """Readiness: started, running, and accepting ingest.

        Not ready before every drain thread is up, after :meth:`stop`,
        or while the queues are saturated (backpressure — tell the load
        balancer to back off rather than queueing 503s).
        """
        obs = self.metrics
        started = obs.gauge("serve_shards_started").value
        alive = obs.gauge("serve_shards_alive").value
        depth = obs.gauge("serve_queue_depth").value
        capacity = obs.gauge("serve_queue_capacity").value
        ready = (
            not self._stopped
            and started == len(self.shards)
            and alive == len(self.shards)
            and depth < capacity
        )
        return {
            "ready": ready,
            "started": int(started),
            "queue_depth": int(depth),
            "queue_capacity": int(capacity),
        }

    def stats(self) -> dict:
        """Per-shard introspection for the ``/stats`` endpoint."""
        return {
            "config": {
                "s1": self.config.s1,
                "s2": self.config.s2,
                "max_pattern_edges": self.config.max_pattern_edges,
                "n_virtual_streams": self.config.n_virtual_streams,
                "seed": self.config.seed,
                "maintain_summary": self.config.maintain_summary,
                "topk_size": self.config.topk_size,
            },
            "window": (
                {
                    "window_trees": self.window_trees,
                    "bucket_trees": self.shards[0].window.bucket_trees,
                    "trees_covered": sum(
                        shard.window.window_size_actual
                        for shard in self.shards
                        if shard.window is not None
                    ),
                }
                if self.window_trees
                else None
            ),
            "n_trees": sum(shard.synopsis.n_trees for shard in self.shards),
            "shards": [
                {
                    "index": shard.index,
                    "trees": shard.synopsis.n_trees,
                    "pending": shard.pending,
                    "alive": shard.alive,
                    "fault": (
                        None if shard.error() is None else repr(shard.error())
                    ),
                }
                for shard in self.shards
            ],
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every shard's drain thread."""
        for shard in self.shards:
            shard.start()

    def stop(self) -> list[Path]:
        """Graceful shutdown: gate ingress, drain, stop, checkpoint.

        The SIGTERM path: new submissions are refused, every queued
        batch is applied, the drain threads exit, and (when a
        checkpoint directory is configured) each quiesced shard writes
        a final checkpoint — so a restart with ``resume=True`` loses
        nothing that was ever acknowledged.  Returns the checkpoint
        paths written (empty without a checkpoint directory).
        """
        with self._gate:
            if self._stopped:
                return []
            self._stopped = True
            for shard in self.shards:
                shard.stop(drain=True)
            return self._checkpoint_quiesced()

    # ------------------------------------------------------------------
    # Ingest path (HTTP handler threads)
    # ------------------------------------------------------------------
    def submit(self, trees: list[LabeledTree]) -> dict:
        """Route one batch to the next shard (round-robin), non-blocking.

        Raises ``queue.Full`` (→ 503) when the chosen shard is
        saturated and :class:`ApiError` 503 after shutdown began.  The
        admin gate is held only for the enqueue itself, so ingest
        stalls exactly while a quiescing admin operation runs.
        """
        with self._gate:
            if self._stopped:
                raise ApiError("service is shutting down", status=503)
            with self._route_lock:
                index = self._next_shard
                self._next_shard = (index + 1) % len(self.shards)
            self.shards[index].submit(trees)
        return {"accepted": len(trees), "shard": index}

    # ------------------------------------------------------------------
    # Read path (lock-free: sums of per-shard estimates)
    # ------------------------------------------------------------------
    def estimate_ordered(self, query: str) -> float:
        return sum(s.synopsis.estimate_ordered(query) for s in self.shards)

    def estimate_unordered(self, query: str) -> float:
        return sum(s.synopsis.estimate_unordered(query) for s in self.shards)

    def estimate_sum(self, queries: list[str]) -> float:
        queries = list(queries)  # one materialised list for every shard
        return sum(s.synopsis.estimate_sum(queries) for s in self.shards)

    def estimate_xpath(self, query: str) -> float:
        return sum(s.synopsis.estimate_xpath(query) for s in self.shards)

    def estimate(self, kind: str, parsed: object) -> dict:
        """Dispatch a validated ``/estimate/<kind>`` request."""
        if kind == "sum":
            estimate = self.estimate_sum(parsed)  # type: ignore[arg-type]
        elif kind == "ordered":
            estimate = self.estimate_ordered(parsed)  # type: ignore[arg-type]
        elif kind == "unordered":
            estimate = self.estimate_unordered(parsed)  # type: ignore[arg-type]
        elif kind == "xpath":
            estimate = self.estimate_xpath(parsed)  # type: ignore[arg-type]
        else:  # pragma: no cover — parse_estimate_request rejects first
            raise ApiError(f"unknown estimate kind {kind!r}", status=404)
        return {
            "kind": kind,
            "estimate": estimate,
            "shards": len(self.shards),
            "n_trees": sum(s.synopsis.n_trees for s in self.shards),
        }

    # ------------------------------------------------------------------
    # Window read path (lock-free, like /estimate)
    # ------------------------------------------------------------------
    def _windows(self) -> list[WindowedSketchTree]:
        """Every shard's window, or a 409 when none were configured."""
        if not self.window_trees:
            raise ApiError(
                "no sliding window configured (--window-trees)", status=409
            )
        return [
            shard.window for shard in self.shards if shard.window is not None
        ]

    def window_estimate(self, kind: str, parsed: object) -> dict:
        """A ``/window/estimate/<kind>`` request: the same lock-free
        sum-of-shards read path as :meth:`estimate`, over the shards'
        sliding windows instead of their whole-stream synopses."""
        windows = self._windows()
        if kind == "sum":
            queries = list(parsed)  # type: ignore[call-overload]
            estimate = sum(w.estimate_sum(queries) for w in windows)
        elif kind == "ordered":
            estimate = sum(w.estimate_ordered(parsed) for w in windows)
        elif kind == "unordered":
            estimate = sum(w.estimate_unordered(parsed) for w in windows)
        else:
            raise ApiError(
                f"window estimates support ordered, unordered and sum, "
                f"not {kind!r}",
                status=404,
            )
        return {
            "kind": kind,
            "estimate": estimate,
            "window_trees": self.window_trees,
            "trees_covered": sum(w.window_size_actual for w in windows),
        }

    def window_topk(self, limit: int | None = None) -> dict:
        """``GET /window/topk``: the live window's trending patterns.

        Aggregates every shard window's tracked-pattern list (each shard
        windows its own sub-stream; tracked frequencies of the same
        value add across shards, exactly as in a tracker merge) without
        quiescing — the racy-benign read semantics of the whole tier.
        """
        windows = self._windows()
        if not self.config.topk_size:
            raise ApiError(
                "top-k tracking disabled (topk_size=0, see --topk)",
                status=409,
            )
        merged: dict[int, dict] = {}
        for window in windows:
            for entry in window.tracked_patterns():
                slot = merged.get(entry["value"])
                if slot is None:
                    merged[entry["value"]] = dict(entry)
                else:
                    slot["frequency"] += entry["frequency"]
                    if slot["pattern"] is None:
                        slot["pattern"] = entry["pattern"]
        ranked = sorted(
            merged.values(), key=lambda e: (-e["frequency"], e["value"])
        )
        if limit is not None:
            ranked = ranked[:limit]
        return {
            "window_trees": self.window_trees,
            "trees_covered": sum(w.window_size_actual for w in windows),
            "patterns": render_topk_entries(ranked),
        }

    # ------------------------------------------------------------------
    # Admin path (quiesce-and-merge under the gate)
    # ------------------------------------------------------------------
    def merged_synopsis(self) -> SketchTree:
        """Quiesce the shards and merge them into one fresh synopsis.

        Holds the admin gate (stalling new ingest), drains every queue
        to empty — so no updates are in flight — then ``merge()``s the
        shard synopses.  By linearity the result is bit-identical to a
        single-threaded synopsis over the concatenated stream; the
        caller owns the returned copy, which no shard mutates later.
        """
        with self._gate:
            return self._merge_quiesced()

    def admin_estimate(self, kind: str, parsed: object) -> dict:
        """An exact-merge estimate: one answer over one merged synopsis.

        Unlike the lock-free read path (sum of per-shard medians), this
        is the estimate a single-node synopsis over the whole stream
        would produce — the bit-identical reference for audits and
        tests, at the cost of stalling ingest while it runs.
        """
        merged = self.merged_synopsis()
        if kind == "sum":
            estimate = merged.estimate_sum(parsed)
        elif kind == "ordered":
            estimate = merged.estimate_ordered(parsed)
        elif kind == "unordered":
            estimate = merged.estimate_unordered(parsed)
        elif kind == "xpath":
            estimate = merged.estimate_xpath(parsed)
        else:
            raise ApiError(f"unknown estimate kind {kind!r}", status=404)
        return {
            "kind": kind,
            "estimate": estimate,
            "merged": True,
            "n_trees": merged.n_trees,
        }

    def topk(self, limit: int | None = None) -> dict:
        """``GET /admin/topk``: the whole stream's heavy hitters, exact-merged.

        Quiesces the shards and merges them (fold/unfold composition of
        the per-shard trackers, see :meth:`SketchTree.merge`), then
        lists the merged trackers' state — the heavy hitters the
        refolded trackers selected over the *combined* stream.  The
        merged synopsis' encoder is fresh, so pattern names are
        re-resolved from the shard encoders that actually saw the
        stream.
        """
        if not self.config.topk_size:
            raise ApiError(
                "top-k tracking disabled (topk_size=0, see --topk)",
                status=409,
            )
        merged = self.merged_synopsis()
        entries = merged.tracked_patterns(limit)
        missing = [e["value"] for e in entries if e["pattern"] is None]
        names: dict[int, object] = {}
        for shard in self.shards:
            if not missing:
                break
            names.update(shard.synopsis.encoder.lookup_values(missing))
            missing = [v for v in missing if v not in names]
        for entry in entries:
            if entry["pattern"] is None:
                entry["pattern"] = names.get(entry["value"])
        return {
            "merged": True,
            "n_trees": merged.n_trees,
            "patterns": render_topk_entries(entries),
        }

    def drain(self) -> dict:
        """Quiesce: stall ingress, wait until every queue is applied."""
        with self._gate:
            for shard in self.shards:
                shard.drain()
        return {"drained": True, "n_trees": sum(
            shard.synopsis.n_trees for shard in self.shards
        )}

    def snapshot(self) -> list[Path]:
        """Checkpoint every shard at a common quiesced point."""
        if not self.checkpoints:
            raise ApiError(
                "no checkpoint directory configured (--checkpoint-dir)",
                status=409,
            )
        with self._gate:
            for shard in self.shards:
                shard.drain()
            return self._checkpoint_quiesced()

    def _merge_quiesced(self) -> SketchTree:  # sketchlint: guarded-by=_gate
        for shard in self.shards:
            shard.drain()
        merged = SketchTree(self.config)
        for shard in self.shards:
            merged = merged.merge(shard.synopsis)
        return merged

    def _checkpoint_quiesced(self) -> list[Path]:  # sketchlint: guarded-by=_gate
        if not self.checkpoints:
            return []
        return [
            manager.save(shard.synopsis)
            for manager, shard in zip(self.checkpoints, self.shards)
        ]

    def __repr__(self) -> str:
        return (
            f"ShardedService(shards={len(self.shards)}, "
            f"trees={sum(s.synopsis.n_trees for s in self.shards)}, "
            f"stopped={self._stopped})"
        )


#: Re-exported for the API layer's dispatch table.
assert set(ESTIMATE_KINDS) == {"ordered", "unordered", "sum", "xpath"}
