"""Request/response schemas for the serving tier's JSON API.

Pure functions from already-decoded JSON payloads to validated domain
objects (trees, queries) and back.  Everything a handler rejects is
raised as :class:`ApiError` carrying the HTTP status the API layer
should answer with, so the transport code never inspects error types.

Trees travel as s-expressions (``"(A (B) (C))"`` — the repository's
canonical text form, see :func:`repro.trees.builders.from_sexpr`);
queries travel as s-expressions or, for ``/estimate/xpath``, as the
XPath subset of :mod:`repro.query.xpath`.
"""

from __future__ import annotations

from repro.errors import ReproError, TreeError
from repro.trees.builders import from_nested, from_sexpr, to_sexpr
from repro.trees.tree import LabeledTree

__all__ = [
    "ESTIMATE_KINDS",
    "MAX_TREES_PER_REQUEST",
    "ApiError",
    "parse_estimate_request",
    "parse_ingest_request",
    "parse_topk_limit",
    "render_topk_entries",
    "require_mapping",
]

#: Estimate endpoints the query tier serves (``POST /estimate/<kind>``).
ESTIMATE_KINDS = ("ordered", "unordered", "sum", "xpath")

#: Upper bound on trees accepted per ``POST /ingest`` call; bounds the
#: parse cost and queue-slot size one request can claim.
MAX_TREES_PER_REQUEST = 10_000


class ApiError(ReproError):
    """A rejected request, carrying the HTTP status code to answer with."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def require_mapping(payload: object) -> dict:
    """The request body as a JSON object, or a 400."""
    if not isinstance(payload, dict):
        raise ApiError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_ingest_request(payload: object) -> list[LabeledTree]:
    """Validate a ``POST /ingest`` body: ``{"trees": ["(A (B))", ...]}``."""
    body = require_mapping(payload)
    texts = body.get("trees")
    if not isinstance(texts, list) or not texts:
        raise ApiError('ingest body needs a non-empty "trees" list')
    if len(texts) > MAX_TREES_PER_REQUEST:
        raise ApiError(
            f"at most {MAX_TREES_PER_REQUEST} trees per request, "
            f"got {len(texts)}",
            status=413,
        )
    trees: list[LabeledTree] = []
    for position, text in enumerate(texts):
        if not isinstance(text, str):
            raise ApiError(
                f'trees[{position}] is not an s-expression string '
                f"(got {type(text).__name__})"
            )
        try:
            trees.append(from_sexpr(text))
        except TreeError as exc:
            raise ApiError(f"trees[{position}]: {exc}") from exc
    return trees


def parse_estimate_request(kind: str, payload: object) -> object:
    """Validate a ``POST /estimate/<kind>`` body.

    Returns the single query string for ``ordered``/``unordered``/
    ``xpath`` (``{"query": ...}``) or the list of query strings for
    ``sum`` (``{"queries": [...]}``) — validation of the *patterns*
    themselves is left to the synopsis, whose typed errors the API layer
    maps to 400s.
    """
    if kind not in ESTIMATE_KINDS:
        raise ApiError(
            f"unknown estimate kind {kind!r}; one of {', '.join(ESTIMATE_KINDS)}",
            status=404,
        )
    body = require_mapping(payload)
    if kind == "sum":
        queries = body.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ApiError('estimate/sum body needs a non-empty "queries" list')
        for position, query in enumerate(queries):
            if not isinstance(query, str):
                raise ApiError(
                    f'queries[{position}] is not a pattern string '
                    f"(got {type(query).__name__})"
                )
        return list(queries)
    query = body.get("query")
    if not isinstance(query, str) or not query:
        raise ApiError(f'estimate/{kind} body needs a "query" string')
    return query


def parse_topk_limit(params: dict) -> int | None:
    """The optional ``?limit=N`` of the top-k endpoints, or a 400.

    ``params`` is ``urllib.parse.parse_qs`` output; absence means "all
    tracked patterns" (the list is bounded by ``topk_size ×`` streams).
    """
    raw = params.get("limit")
    if raw is None:
        return None
    try:
        limit = int(raw[-1])
    except (TypeError, ValueError) as exc:
        raise ApiError(f"limit must be an integer, got {raw[-1]!r}") from exc
    if limit < 1:
        raise ApiError(f"limit must be >= 1, got {limit}")
    return limit


def render_topk_entries(entries: list[dict]) -> list[dict]:
    """Tracked-pattern entries → JSON-safe wire form.

    Encoded values travel as decimal strings (pairing-mode values exceed
    the 2⁵³ integers JSON consumers handle exactly); patterns travel as
    s-expressions, or ``null`` when no live encoder still names the
    value (LRU eviction — the count is real, the name is lost).
    """
    return [
        {
            "value": str(entry["value"]),
            "frequency": entry["frequency"],
            "pattern": (
                None
                if entry["pattern"] is None
                else to_sexpr(from_nested(entry["pattern"]))
            ),
        }
        for entry in entries
    ]
