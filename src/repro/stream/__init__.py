"""Stream-processing engine: ties datasets to synopses with timing.

:class:`~repro.stream.engine.StreamProcessor` feeds an iterable of trees
into any object exposing ``update(tree)`` (a
:class:`~repro.core.sketchtree.SketchTree`, an
:class:`~repro.core.exact.ExactCounter`, or several at once), records
wall-clock cost, and can fire checkpoint callbacks — the "query at time
t₃" model of the paper's Figure 2.
"""

from repro.stream.engine import ProcessingStats, StreamProcessor
from repro.stream.sax import (
    SaxPatternEnumerator,
    iter_xml_patterns,
    sketch_xml_stream,
)

__all__ = [
    "ProcessingStats",
    "SaxPatternEnumerator",
    "StreamProcessor",
    "iter_xml_patterns",
    "sketch_xml_stream",
]
