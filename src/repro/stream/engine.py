"""Driving trees through synopses, with instrumentation.

The paper's Sections 7.6/7.7 report stream-processing *cost ratios*
(doubling ``s1`` multiplied processing time by ≈2.3; growing top-k was
nearly free).  :class:`StreamProcessor` captures the timings those claims
are checked against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigError
from repro.trees.tree import LabeledTree


@dataclass
class ProcessingStats:
    """Wall-clock accounting of one streaming run."""

    n_trees: int = 0
    total_nodes: int = 0
    elapsed_seconds: float = 0.0
    checkpoint_results: list = field(default_factory=list)

    @property
    def trees_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.n_trees / self.elapsed_seconds


class StreamProcessor:
    """Feeds a tree stream into one or more synopses.

    Parameters
    ----------
    consumers:
        Objects with an ``update(tree)`` method, all fed every tree.
    checkpoint_every:
        Fire ``on_checkpoint`` after every this many trees (0 = never).
    on_checkpoint:
        ``callback(n_trees_so_far) -> result``; results are collected in
        the returned stats.  This is the Figure 2 "issue a count query at
        time t" hook.
    """

    def __init__(
        self,
        consumers: Sequence,
        checkpoint_every: int = 0,
        on_checkpoint: Callable[[int], object] | None = None,
    ):
        if not consumers:
            raise ConfigError("at least one consumer is required")
        for consumer in consumers:
            if not hasattr(consumer, "update"):
                raise ConfigError(
                    f"consumer {type(consumer).__name__} has no update() method"
                )
        if checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        self.consumers = list(consumers)
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint

    def run(self, trees: Iterable[LabeledTree]) -> ProcessingStats:
        """Process the whole stream; returns timing statistics.

        Only the consumers' ``update`` calls are inside the timed region,
        so generator cost does not pollute the processing-cost ratios.
        """
        stats = ProcessingStats()
        clock = time.perf_counter
        for tree in trees:
            start = clock()
            for consumer in self.consumers:
                consumer.update(tree)
            stats.elapsed_seconds += clock() - start
            stats.n_trees += 1
            stats.total_nodes += tree.n_nodes
            if (
                self.checkpoint_every
                and self.on_checkpoint is not None
                and stats.n_trees % self.checkpoint_every == 0
            ):
                stats.checkpoint_results.append(self.on_checkpoint(stats.n_trees))
        return stats
