"""Driving trees through synopses, with instrumentation and recovery.

The paper's Sections 7.6/7.7 report stream-processing *cost ratios*
(doubling ``s1`` multiplied processing time by ≈2.3; growing top-k was
nearly free).  :class:`StreamProcessor` captures the timings those claims
are checked against, and — for long-running deployments — can checkpoint
the synopsis crash-safely while the stream flows and resume an
interrupted run from the last checkpoint
(:mod:`repro.core.snapshot`).  Windowed consumers
(:class:`~repro.core.window.WindowedSketchTree`) checkpoint the same
way: the snapshot layer writes their multi-bucket container format and
restores the right class on resume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import ConfigError
from repro.obs.registry import (
    COUNT_BUCKETS,
    Registry,
    get_default_registry,
)
from repro.trees.tree import LabeledTree

if TYPE_CHECKING:
    from repro.core.snapshot import CheckpointManager


@dataclass
class ProcessingStats:
    """Wall-clock accounting of one streaming run."""

    n_trees: int = 0
    total_nodes: int = 0
    elapsed_seconds: float = 0.0
    checkpoint_results: list = field(default_factory=list)
    #: Snapshot files written during the run, in order.
    snapshot_paths: list = field(default_factory=list)
    #: Trees recovered from a checkpoint (skipped, not reprocessed) when
    #: the run was started by :meth:`StreamProcessor.resume`.
    resumed_from: int = 0

    @property
    def stream_position(self) -> int:
        """Absolute position in the stream: restored + processed trees.

        Checkpoint/snapshot boundaries and ``on_checkpoint`` arguments
        are expressed in this coordinate, so a resumed run fires events
        exactly where an uninterrupted run would.
        """
        return self.resumed_from + self.n_trees

    @property
    def trees_per_second(self) -> float:
        """Throughput of the run; 0.0 for an empty or unmeasured run."""
        if self.n_trees <= 0 or self.elapsed_seconds <= 0:
            return 0.0
        return self.n_trees / self.elapsed_seconds


class StreamProcessor:  # sketchlint: single-writer
    """Feeds a tree stream into one or more synopses.

    Single-writer: one thread drives :meth:`run`/:meth:`resume`; the
    consumers it feeds follow the same ownership contract (see
    docs/concurrency.md).

    Parameters
    ----------
    consumers:
        Objects with an ``update(tree)`` method, all fed every tree.
    checkpoint_every:
        Fire ``on_checkpoint`` after every this many trees (0 = never).
    on_checkpoint:
        ``callback(n_trees_so_far) -> result``; results are collected in
        the returned stats.  This is the Figure 2 "issue a count query at
        time t" hook.
    snapshot_every:
        Write a crash-safe snapshot of the *first* consumer after every
        this many trees (0 = never).  Requires ``checkpoints`` and a
        first consumer with ``to_bytes()`` (a
        :class:`~repro.core.sketchtree.SketchTree`).
    checkpoints:
        The :class:`~repro.core.snapshot.CheckpointManager` that owns the
        snapshot directory, retention, and recovery.
    batch_trees:
        Cross-tree micro-batch size (1 = the classic per-tree loop).
        Consumers exposing ``update_batch(trees)`` (a
        :class:`~repro.core.sketchtree.SketchTree`) receive whole
        micro-batches — bit-identical state, much less per-tree
        dispatch; consumers with only ``update`` are fed tree by tree
        inside the batch.  Checkpoint and snapshot boundaries are
        preserved exactly: a micro-batch is flushed early rather than
        ever straddling a ``checkpoint_every``/``snapshot_every``
        multiple, so callbacks observe the same tree counts and synopsis
        states as an unbatched run.
    """

    def __init__(
        self,
        consumers: Sequence,
        checkpoint_every: int = 0,
        on_checkpoint: Callable[[int], object] | None = None,
        snapshot_every: int = 0,
        checkpoints: "CheckpointManager | None" = None,
        batch_trees: int = 1,
        metrics: Registry | None = None,
    ):
        if not consumers:
            raise ConfigError("at least one consumer is required")
        for consumer in consumers:
            if not hasattr(consumer, "update"):
                raise ConfigError(
                    f"consumer {type(consumer).__name__} has no update() method"
                )
        if checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if snapshot_every < 0:
            raise ConfigError("snapshot_every must be >= 0")
        if batch_trees < 1:
            raise ConfigError("batch_trees must be >= 1")
        if snapshot_every and checkpoints is None:
            raise ConfigError(
                "snapshot_every needs a CheckpointManager (checkpoints=...)"
            )
        if checkpoints is not None and not hasattr(consumers[0], "to_bytes"):
            raise ConfigError(
                "checkpointing snapshots the first consumer, which must "
                f"support to_bytes(); {type(consumers[0]).__name__} does not"
            )
        self.consumers = list(consumers)
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        self.snapshot_every = snapshot_every
        self.checkpoints = checkpoints
        self.batch_trees = batch_trees
        self.metrics = metrics if metrics is not None else get_default_registry()

    def run(self, trees: Iterable[LabeledTree]) -> ProcessingStats:
        """Process the whole stream; returns timing statistics.

        Only the consumers' ``update``/``update_batch`` calls are inside
        the timed region, so neither generator cost nor snapshot I/O
        pollutes the processing-cost ratios.
        """
        return self._run(trees, resumed_from=0)

    def _run(
        self, trees: Iterable[LabeledTree], resumed_from: int
    ) -> ProcessingStats:
        """The shared run loop; ``resumed_from`` offsets every boundary.

        Flush limits, checkpoint/snapshot modulos, and the
        ``on_checkpoint`` argument all use the *absolute* stream position
        (``resumed_from + n_trees``), so a resumed run fires events at
        the same tree counts, with the same callback arguments, as the
        uninterrupted run it replaces.
        """
        stats = ProcessingStats(resumed_from=resumed_from)
        chunk: list[LabeledTree] = []
        for tree in trees:
            chunk.append(tree)
            if len(chunk) >= self._flush_limit(stats.stream_position):
                self._flush(chunk, stats)
        if chunk:
            self._flush(chunk, stats)
        return stats

    def _flush_limit(self, position: int) -> int:
        """Trees the current micro-batch may hold before flushing.

        Capped so that no batch ever straddles a checkpoint or snapshot
        boundary: those events must observe the exact tree counts the
        per-tree loop would have produced.  ``position`` is the absolute
        stream position (restored + processed trees), so the cap aligns
        with the original stream even after a resume.
        """
        limit = self.batch_trees
        for every in (self.checkpoint_every, self.snapshot_every):
            if every:
                limit = min(limit, every - position % every)
        return limit

    def _flush(self, chunk: list[LabeledTree], stats: ProcessingStats) -> None:
        """Feed one micro-batch to every consumer; fire boundary events."""
        clock = time.perf_counter
        n_chunk = len(chunk)
        start = clock()
        for consumer in self.consumers:
            update_batch = getattr(consumer, "update_batch", None)
            if update_batch is not None and n_chunk > 1:
                update_batch(chunk)
            else:
                for tree in chunk:
                    consumer.update(tree)
        elapsed = clock() - start
        stats.elapsed_seconds += elapsed
        stats.n_trees += n_chunk
        stats.total_nodes += sum(tree.n_nodes for tree in chunk)
        chunk.clear()
        obs = self.metrics
        if obs.enabled:
            obs.histogram("stream_flush_seconds").observe(elapsed)
            obs.histogram(
                "stream_batch_trees", buckets=COUNT_BUCKETS
            ).observe(n_chunk)
            obs.counter(
                "stream_trees_total", help="trees fed to the consumers"
            ).inc(n_chunk)
        position = stats.stream_position
        if (
            self.checkpoint_every
            and self.on_checkpoint is not None
            and position % self.checkpoint_every == 0
        ):
            if obs.enabled:
                with obs.span("stream_checkpoint_seconds"):
                    result = self.on_checkpoint(position)
            else:
                result = self.on_checkpoint(position)
            stats.checkpoint_results.append(result)
        if (
            self.snapshot_every
            and self.checkpoints is not None
            and position % self.snapshot_every == 0
        ):
            if obs.enabled:
                with obs.span("stream_snapshot_seconds"):
                    path = self.snapshot_now()
            else:
                path = self.snapshot_now()
            stats.snapshot_paths.append(path)

    def snapshot_now(self) -> Path:
        """Checkpoint the first consumer immediately (crash-safe write)."""
        if self.checkpoints is None:
            raise ConfigError("no CheckpointManager configured")
        return self.checkpoints.save(self.consumers[0])

    def resume(self, trees: Iterable[LabeledTree]) -> ProcessingStats:
        """Recover from the latest checkpoint, then continue the run.

        ``trees`` must replay the *same stream in the same order* as the
        interrupted run (the deterministic-replay model: regenerate the
        dataset, re-read the log, re-parse the forest).  The newest valid
        checkpoint replaces the first consumer — read it back from
        ``processor.consumers[0]`` afterwards — and exactly the
        ``n_trees`` trees it already absorbed are skipped, so the
        finished synopsis is identical to an uninterrupted run.  Flush,
        checkpoint and snapshot boundaries — and the ``on_checkpoint``
        argument — are offset by the restored tree count, so the resumed
        run fires events at the same *absolute* stream positions as an
        uninterrupted run (read them off
        :attr:`ProcessingStats.stream_position`).  With no checkpoint on
        disk this is simply :meth:`run`.

        Any additional consumers are *not* restored; they see only the
        suffix of the stream.  Keep auxiliary consumers out of resumed
        runs or restore them yourself.
        """
        if self.checkpoints is None:
            raise ConfigError("resume() needs a CheckpointManager")
        expected = getattr(self.consumers[0], "config", None)
        restored = self.checkpoints.load_latest(expected_config=expected)
        if restored is None:
            return self.run(trees)
        skip = restored.n_trees
        self.consumers[0] = restored
        iterator = iter(trees)
        skipped = 0
        while skipped < skip and next(iterator, None) is not None:
            skipped += 1
        return self._run(iterator, resumed_from=skipped)
