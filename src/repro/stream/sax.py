"""SAX-style streaming enumeration: sketch XML without building trees.

The paper's streaming model reads each document once; for very large
documents even materialising one tree can be wasteful.  Because EnumTree
is a bottom-up recurrence, a node's pattern table depends only on its
children's finished tables — which is exactly the information available
the moment a SAX ``close`` event fires.  :class:`SaxPatternEnumerator`
therefore consumes open/text/close events directly:

* ``open`` pushes an empty child-table frame;
* ``close`` builds the node's table (:func:`repro.enumtree.node_table`),
  emits every pattern rooted at the node, and hands the table up to the
  parent frame.

Peak memory is the tables of the *completed siblings along the open
path* rather than the whole tree — a real win for the deep, narrow
documents (TREEBANK-like) the paper processes.

:func:`iter_xml_patterns` ties this to the XML event tokenizer, and
:func:`sketch_xml_stream` feeds a :class:`~repro.core.sketchtree.SketchTree`
synopsis straight from XML text.  Both produce the identical pattern
multiset to ``parse_forest`` + ``enumerate_patterns`` (tested).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.enumtree.enumerate import NodeTable, node_table
from repro.errors import ConfigError, TreeError
from repro.trees.tree import Nested
from repro.trees.xml import iter_events


class SaxPatternEnumerator:
    """Incremental EnumTree over open/text/close events.

    Parameters
    ----------
    k:
        Maximum pattern size in edges (EnumTree's bound).
    emit:
        Called once per pattern occurrence, with the nested-tuple
        pattern, as soon as its root node closes.
    """

    __slots__ = ("k", "emit", "n_patterns", "_frames")

    def __init__(self, k: int, emit: Callable[[Nested], None]):
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        self.k = k
        self.emit = emit
        self.n_patterns = 0
        # Each frame: [label, list of finished child tables].
        self._frames: list[list] = []

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------
    def open(self, label: str) -> None:
        """A start tag / the beginning of a node."""
        self._frames.append([label, []])

    def text(self, value: str) -> None:
        """Character data: a leaf child of the current node (matching the
        document mapping of :mod:`repro.trees.xml`)."""
        self.open(value)
        self.close()

    def close(self) -> None:
        """An end tag: finalise the node, emit its rooted patterns."""
        if not self._frames:
            raise TreeError("close event without a matching open")
        label, child_tables = self._frames.pop()
        table = node_table(label, child_tables, self.k)
        emit = self.emit
        for j in range(1, self.k + 1):
            for pattern in table[j]:
                emit(pattern)
                self.n_patterns += 1
        if self._frames:
            self._frames[-1][1].append(table)

    def feed(self, event: tuple) -> None:
        """Dispatch one ``("open", label)`` / ``("text", v)`` / ``("close",)``."""
        kind = event[0]
        if kind == "open":
            self.open(event[1])
        elif kind == "text":
            self.text(event[1])
        elif kind == "close":
            self.close()
        else:
            raise TreeError(f"unknown event kind {kind!r}")

    @property
    def depth(self) -> int:
        """Currently open elements (0 between documents)."""
        return len(self._frames)

    def frontier_tables(self) -> int:
        """Completed child tables currently held (the memory frontier)."""
        return sum(len(frame[1]) for frame in self._frames)


def iter_xml_patterns(
    xml_text: str, k: int, keep_attributes: bool = True
) -> Iterator[Nested]:
    """Every pattern occurrence in a forest of XML documents, streamed.

    Equivalent to ``enumerate_patterns`` over ``parse_forest(xml_text)``
    but without materialising any tree.
    """
    pending: list[Nested] = []
    enumerator = SaxPatternEnumerator(k, pending.append)
    for event in iter_events(xml_text, keep_attributes=keep_attributes):
        enumerator.feed(event)
        if pending:
            yield from pending
            pending.clear()
    if enumerator.depth:
        raise TreeError("event stream ended with unclosed elements")


def sketch_xml_stream(synopsis, xml_text: str, keep_attributes: bool = True):
    """Feed an XML forest into a SketchTree synopsis, SAX-style.

    Per closed top-level document the synopsis' tree/value counters are
    advanced exactly as :meth:`~repro.core.sketchtree.SketchTree.update`
    would (sketch state is identical by linearity); the structural
    summary, which needs whole trees, is not maintained on this path.
    Returns the synopsis for chaining.
    """
    k = synopsis.config.max_pattern_edges
    document: list[Nested] = []
    enumerator = SaxPatternEnumerator(k, document.append)
    for event in iter_events(xml_text, keep_attributes=keep_attributes):
        enumerator.feed(event)
        if enumerator.depth == 0 and event[0] == "close":
            # The top-level element just closed: one document finished
            # (possibly with zero patterns, e.g. a single-node tree).
            synopsis.update_from_patterns(document)
            document.clear()
    if enumerator.depth:
        raise TreeError("event stream ended with unclosed elements")
    return synopsis
