"""Immutable ordered labeled trees with postorder numbering.

:class:`LabeledTree` is the representation every algorithm in this library
consumes: the stream elements, the inputs to
:func:`~repro.enumtree.enumerate_patterns`, and (via nested-tuple form) the
query patterns.

The paper numbers tree nodes in *postorder* starting from 1 (the root of an
``n``-node tree gets number ``n``); we follow that convention exactly so the
worked examples in the paper can be replayed verbatim in tests.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

from repro.errors import TreeError
from repro.trees.node import TreeNode

#: Canonical hashable form of an ordered labeled tree / tree pattern:
#: ``(label, (child, child, ...))`` where each child is again a ``Nested``.
Nested = tuple  # recursive alias: tuple[str, tuple["Nested", ...]]


class LabeledTree:
    """An immutable ordered labeled tree with precomputed postorder arrays.

    Construction normally goes through :func:`repro.trees.from_nested`,
    :func:`repro.trees.from_sexpr` or :func:`repro.trees.parse_xml`; the
    constructor itself accepts a fully-built :class:`TreeNode` root (which
    is deep-copied, so later mutation of the builder cannot corrupt the
    tree).

    Attributes
    ----------
    labels:
        ``labels[i]`` is the label of the node whose postorder number is
        ``i + 1``.
    parents:
        ``parents[i]`` is the 1-based postorder number of the parent of the
        node with postorder number ``i + 1``, or ``0`` for the root.
    children:
        ``children[i]`` is a tuple of the 1-based postorder numbers of the
        children of node ``i + 1``, in document (left-to-right) order.
    """

    __slots__ = ("_labels", "_parents", "_children", "_nested", "_hash")

    def __init__(self, root: TreeNode):
        if not isinstance(root, TreeNode):
            raise TreeError(f"expected a TreeNode root, got {type(root).__name__}")
        labels: list[str] = []
        parents: list[int] = []
        children: list[tuple[int, ...]] = []
        # Iterative postorder: push (node, parent_slot); a node's number is
        # assigned when all its children have been numbered.
        post_of: dict[int, int] = {}
        stack: list[tuple[TreeNode, TreeNode | None, bool]] = [(root, None, False)]
        while stack:
            node, parent, expanded = stack.pop()
            if expanded:
                number = len(labels) + 1
                post_of[id(node)] = number
                labels.append(node.label)
                parents.append(0)  # patched below once the parent is numbered
                children.append(tuple(post_of[id(c)] for c in node.children))
            else:
                stack.append((node, parent, True))
                for child in reversed(node.children):
                    stack.append((child, node, False))
        # Patch parent pointers now that every node has a number.
        for num, kids in enumerate(children, start=1):
            for kid in kids:
                parents[kid - 1] = num
        self._labels = tuple(labels)
        self._parents = tuple(parents)
        self._children = tuple(children)
        self._nested: Nested | None = None
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def parents(self) -> tuple[int, ...]:
        return self._parents

    @property
    def children(self) -> tuple[tuple[int, ...], ...]:
        return self._children

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the tree."""
        return len(self._labels)

    @property
    def n_edges(self) -> int:
        """Number of edges (``n_nodes - 1``)."""
        return len(self._labels) - 1

    @property
    def root(self) -> int:
        """Postorder number of the root (always ``n_nodes``)."""
        return len(self._labels)

    def label_of(self, postorder_number: int) -> str:
        """Label of the node with the given 1-based postorder number."""
        self._check_number(postorder_number)
        return self._labels[postorder_number - 1]

    def parent_of(self, postorder_number: int) -> int:
        """Parent's postorder number, or ``0`` when the node is the root."""
        self._check_number(postorder_number)
        return self._parents[postorder_number - 1]

    def children_of(self, postorder_number: int) -> tuple[int, ...]:
        """Children's postorder numbers in document order."""
        self._check_number(postorder_number)
        return self._children[postorder_number - 1]

    def fanout_of(self, postorder_number: int) -> int:
        """Number of children of the given node."""
        return len(self.children_of(postorder_number))

    def is_leaf(self, postorder_number: int) -> bool:
        """``True`` when the node has no children."""
        return not self.children_of(postorder_number)

    def _check_number(self, number: int) -> None:
        if not 1 <= number <= len(self._labels):
            raise TreeError(
                f"postorder number {number} out of range 1..{len(self._labels)}"
            )

    # ------------------------------------------------------------------
    # Traversal and shape metrics
    # ------------------------------------------------------------------
    def iter_postorder(self) -> Iterator[int]:
        """Yield postorder numbers ``1..n`` in postorder (trivially sorted)."""
        return iter(range(1, len(self._labels) + 1))

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield ``(parent, child)`` postorder-number pairs."""
        for child, parent in enumerate(self._parents, start=1):
            if parent:
                yield (parent, child)

    def depth(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        # Process in reverse postorder so a parent is seen before children.
        depths = [0] * (len(self._labels) + 1)
        best = 0
        for num in range(len(self._labels), 0, -1):
            d = depths[num]
            best = max(best, d)
            for kid in self._children[num - 1]:
                depths[kid] = d + 1
        return best

    def max_fanout(self) -> int:
        """Largest number of children of any node."""
        return max((len(kids) for kids in self._children), default=0)

    def leaf_count(self) -> int:
        """Number of leaves."""
        return sum(1 for kids in self._children if not kids)

    def path_to_root(self, postorder_number: int) -> list[int]:
        """Postorder numbers from the node up to (and including) the root."""
        self._check_number(postorder_number)
        path = [postorder_number]
        while self._parents[path[-1] - 1]:
            path.append(self._parents[path[-1] - 1])
        return path

    def label_path(self, postorder_number: int) -> tuple[str, ...]:
        """Labels from the root down to the node (root first)."""
        return tuple(
            self._labels[num - 1] for num in reversed(self.path_to_root(postorder_number))
        )

    # ------------------------------------------------------------------
    # Canonical forms, equality
    # ------------------------------------------------------------------
    def to_nested(self) -> Nested:
        """Canonical nested-tuple form ``(label, (child, ...))`` (cached)."""
        if self._nested is None:
            built: list[Nested | None] = [None] * (len(self._labels) + 1)
            for num in range(1, len(self._labels) + 1):
                kids = tuple(built[kid] for kid in self._children[num - 1])
                built[num] = (self._labels[num - 1], kids)
            self._nested = built[len(self._labels)]
        return self._nested

    def to_node(self) -> TreeNode:
        """Thaw back into a mutable :class:`TreeNode` structure."""
        nodes = [TreeNode(label) for label in self._labels]
        for num, kids in enumerate(self._children, start=1):
            nodes[num - 1].children = [nodes[kid - 1] for kid in kids]
        return nodes[-1]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledTree):
            return NotImplemented
        return self._labels == other._labels and self._children == other._children

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._labels, self._children))
        return self._hash

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return f"LabeledTree(n_nodes={self.n_nodes}, root={self._labels[-1]!r})"
