"""A from-scratch XML tokenizer/parser and serializer for labeled trees.

The paper streams XML documents (TREEBANK and DBLP) as ordered labeled
trees.  This module implements the subset of XML those corpora use, with
the mapping the paper's evaluation implies:

* an element becomes a node labeled with the element name;
* non-whitespace character data (CDATA / text) becomes a *leaf child* of
  the enclosing element, labeled with the text — this is how the paper's
  DBLP queries can mix "element names as well as values (CDATA)";
* attributes become child nodes labeled ``@name`` with a single text leaf
  child holding the value (DBLP uses attributes sparingly; this keeps the
  information without special cases downstream);
* comments, processing instructions, the XML declaration and DOCTYPE are
  skipped.

The parser is a deliberate hand-rolled recursive-descent tokenizer rather
than a wrapper over :mod:`xml.etree`: it is a substrate of the reproduction
and gives precise, position-annotated errors
(:class:`~repro.errors.XmlParseError`).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XmlParseError
from repro.trees.node import TreeNode
from repro.trees.tree import LabeledTree

_ENTITY_MAP = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


def parse_xml(text: str, keep_attributes: bool = True) -> LabeledTree:
    """Parse one XML document into a :class:`LabeledTree`.

    Parameters
    ----------
    text:
        The XML document text.  Exactly one root element is expected.
    keep_attributes:
        When ``False``, attributes are dropped instead of becoming
        ``@name`` child nodes.
    """
    trees = list(iter_parse_forest(text, keep_attributes=keep_attributes))
    if len(trees) != 1:
        raise XmlParseError(f"expected exactly one root element, found {len(trees)}")
    return trees[0]


def parse_forest(text: str, keep_attributes: bool = True) -> list[LabeledTree]:
    """Parse a sequence of sibling XML elements into a list of trees.

    This is the paper's stream construction: "a forest of trees were
    created by removing the root tag of the document".
    """
    return list(iter_parse_forest(text, keep_attributes=keep_attributes))


def iter_parse_forest(text: str, keep_attributes: bool = True) -> Iterator[LabeledTree]:
    """Lazily parse top-level elements, yielding one tree per element.

    This is the streaming entry point: each yielded tree can be fed to
    :meth:`repro.SketchTree.update` without materialising the whole forest.
    """
    parser = _Parser(text, keep_attributes)
    while True:
        tree = parser.next_tree()
        if tree is None:
            return
        yield tree


def iter_events(text: str, keep_attributes: bool = True):
    """SAX-style event stream over a sequence of top-level XML elements.

    Yields tuples:

    * ``("open", label)`` — a start tag (attributes, when kept, follow
      immediately as an ``open``/``text``/``close`` triple per attribute,
      mirroring :func:`parse_xml`'s ``@name`` mapping);
    * ``("text", value)`` — non-whitespace character data / CDATA;
    * ``("close",)`` — the matching end tag.

    Each top-level element produces a balanced open/close bracket; the
    event stream applied to a tree builder reproduces
    :func:`iter_parse_forest` exactly (tested), but lets consumers — such
    as :class:`repro.stream.sax.SaxPatternEnumerator` — process documents
    without materialising whole trees.
    """
    parser = _Parser(text, keep_attributes)
    while True:
        parser._skip_intertag_noise()
        if parser.pos >= len(parser.text):
            return
        if parser.text[parser.pos] != "<":
            raise XmlParseError(
                "unexpected character data at the top level", parser.pos
            )
        yield from parser.iter_element_events()


class _Parser:
    """Recursive-descent parser over a single text buffer."""

    def __init__(self, text: str, keep_attributes: bool):
        self.text = text
        self.pos = 0
        self.keep_attributes = keep_attributes

    # -- top level -----------------------------------------------------
    def next_tree(self) -> LabeledTree | None:
        """Parse one top-level element by folding its event stream.

        Building on :meth:`iter_element_events` keeps parsing fully
        iterative — arbitrarily deep documents cannot overflow the
        recursion limit — and guarantees the tree and SAX paths agree by
        construction.
        """
        self._skip_intertag_noise()
        if self.pos >= len(self.text):
            return None
        if self.text[self.pos] != "<":
            raise XmlParseError(
                "unexpected character data at the top level", self.pos
            )
        stack: list[TreeNode] = []
        root: TreeNode | None = None
        for event in self.iter_element_events():
            kind = event[0]
            if kind == "open":
                node = TreeNode(event[1])
                if stack:
                    stack[-1].add_child(node)
                stack.append(node)
            elif kind == "text":
                stack[-1].add(event[1])
            else:
                root = stack.pop()
        assert root is not None and not stack  # events are balanced
        return LabeledTree(root)

    def _skip_intertag_noise(self) -> None:
        """Skip whitespace, comments, PIs, declarations between elements."""
        text = self.text
        while self.pos < len(text):
            if text[self.pos].isspace():
                self.pos += 1
            elif text.startswith("<!--", self.pos):
                self._skip_until("-->")
            elif text.startswith("<?", self.pos):
                self._skip_until("?>")
            elif text.startswith("<!", self.pos):
                self._skip_until(">")
            else:
                return

    def _skip_until(self, terminator: str) -> None:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise XmlParseError(f"unterminated construct, expected {terminator!r}", self.pos)
        self.pos = end + len(terminator)

    # -- lexical helpers -------------------------------------------------
    def _parse_name(self) -> str:
        start = self.pos
        text = self.text
        while self.pos < len(text) and not text[self.pos].isspace() and text[
            self.pos
        ] not in "<>/=":
            self.pos += 1
        if self.pos == start:
            raise XmlParseError("expected a name", start)
        return text[start : self.pos]

    def _skip_spaces(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _parse_attribute_list(self) -> list[tuple[str, str]]:
        """Consume the attribute region of a start tag, returning pairs."""
        text = self.text
        out: list[tuple[str, str]] = []
        while True:
            self._skip_spaces()
            if self.pos >= len(text):
                raise XmlParseError("unterminated start tag", self.pos)
            if text[self.pos] in "/>":
                return out
            name = self._parse_name()
            self._skip_spaces()
            if not text.startswith("=", self.pos):
                raise XmlParseError(f"attribute {name!r} missing '='", self.pos)
            self.pos += 1
            self._skip_spaces()
            quote = text[self.pos : self.pos + 1]
            if quote not in ("'", '"'):
                raise XmlParseError(f"attribute {name!r} value must be quoted", self.pos)
            end = text.find(quote, self.pos + 1)
            if end < 0:
                raise XmlParseError(f"unterminated value for attribute {name!r}", self.pos)
            out.append((name, _unescape(text[self.pos + 1 : end], self.pos + 1)))
            self.pos = end + 1

    # -- event mode (SAX-style) -------------------------------------------
    def iter_element_events(self):
        """Yield open/text/close events for one top-level element."""
        depth = 0
        names: list[str] = []
        text = self.text
        # First start tag.
        yield from self._open_tag_events(names)
        depth = len(names)
        if depth == 0:
            return  # self-closing top-level element
        buffer: list[str] = []
        while depth:
            if self.pos >= len(text):
                raise XmlParseError(f"unterminated element <{names[-1]}>", self.pos)
            if text.startswith("</", self.pos):
                chunk = "".join(buffer).strip()
                buffer.clear()
                if chunk:
                    yield ("text", chunk)
                self.pos += 2
                close = self._parse_name()
                if close != names[-1]:
                    raise XmlParseError(
                        f"mismatched close tag </{close}> for <{names[-1]}>",
                        self.pos,
                    )
                self._skip_spaces()
                if not text.startswith(">", self.pos):
                    raise XmlParseError(f"malformed close tag </{close}>", self.pos)
                self.pos += 1
                names.pop()
                depth -= 1
                yield ("close",)
            elif text.startswith("<!--", self.pos):
                self._skip_until("-->")
            elif text.startswith("<![CDATA[", self.pos):
                end = text.find("]]>", self.pos)
                if end < 0:
                    raise XmlParseError("unterminated CDATA section", self.pos)
                buffer.append(text[self.pos + 9 : end])
                self.pos = end + 3
            elif text.startswith("<?", self.pos):
                self._skip_until("?>")
            elif text.startswith("<", self.pos):
                chunk = "".join(buffer).strip()
                buffer.clear()
                if chunk:
                    yield ("text", chunk)
                before = len(names)
                yield from self._open_tag_events(names)
                depth += len(names) - before
            else:
                nxt = text.find("<", self.pos)
                if nxt < 0:
                    raise XmlParseError(
                        f"unterminated element <{names[-1]}>", self.pos
                    )
                buffer.append(_unescape(text[self.pos : nxt], self.pos))
                self.pos = nxt

    def _open_tag_events(self, names: list[str]):
        """Consume one start tag; emit its open (+ attribute) events.

        Pushes the element name onto ``names`` unless the tag is
        self-closing (in which case the close event is emitted here).
        """
        start = self.pos
        if not self.text.startswith("<", self.pos):
            raise XmlParseError("expected '<'", self.pos)
        self.pos += 1
        name = self._parse_name()
        yield ("open", name)
        for attr_name, value in self._parse_attribute_list():
            if self.keep_attributes:
                yield ("open", f"@{attr_name}")
                if value:
                    yield ("text", value)
                yield ("close",)
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            yield ("close",)
            return
        if not self.text.startswith(">", self.pos):
            raise XmlParseError(f"malformed start tag for <{name}>", start)
        self.pos += 1
        names.append(name)


def _unescape(text: str, base: int = 0) -> str:
    """Resolve the five predefined entities plus numeric references.

    ``base`` is the absolute document offset of ``text``, so malformed
    numeric character references are reported at their real position.
    """
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end < 0:
            out.append(ch)
            i += 1
            continue
        entity = text[i + 1 : end]
        if entity in _ENTITY_MAP:
            out.append(_ENTITY_MAP[entity])
        elif entity.startswith("#x") or entity.startswith("#X"):
            out.append(_char_reference(entity[2:], 16, base + i))
        elif entity.startswith("#"):
            out.append(_char_reference(entity[1:], 10, base + i))
        else:
            out.append(text[i : end + 1])  # unknown entity: keep verbatim
        i = end + 1
    return "".join(out)


def _char_reference(digits: str, radix: int, position: int) -> str:
    """Decode one numeric character reference, refusing malformed input.

    ``int``/``chr`` raise ``ValueError``/``OverflowError`` on empty or
    non-numeric digit runs and out-of-range code points; callers of the
    parser expect every malformed-input defect as ``XmlParseError``.
    """
    try:
        return chr(int(digits, radix))
    except (ValueError, OverflowError):
        raise XmlParseError(
            f"malformed numeric character reference &#{'x' if radix == 16 else ''}"
            f"{digits};",
            position,
        ) from None


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _escape_attribute(text: str) -> str:
    # Attribute values are always emitted between double quotes, so a
    # literal '"' must become &quot; (a bare single quote is fine there).
    return _escape(text).replace('"', "&quot;")


def to_xml(tree: LabeledTree) -> str:
    """Serialise a tree to XML.

    Nodes whose labels are valid element names become elements; leaf nodes
    whose labels are *not* valid element names (they contain whitespace or
    markup characters) are emitted as text content.  ``@name`` nodes with a
    single leaf child are emitted as attributes, inverting the parser's
    attribute mapping.
    """
    parts: list[str] = []
    # Iterative with explicit close markers so arbitrarily deep trees
    # serialise without hitting the recursion limit.
    stack: list = [("node", tree.root)]
    while stack:
        kind, payload = stack.pop()
        if kind == "close":
            parts.append(payload)
            continue
        closer, content = _emit_open(tree, payload, parts)
        if closer is not None:
            stack.append(("close", closer))
            for kid in reversed(content):
                stack.append(("node", kid))
    return "".join(parts)


def _is_name(label: str) -> bool:
    return bool(label) and not any(c.isspace() or c in "<>&'\"=/" for c in label)


def _emit_open(
    tree: LabeledTree, num: int, parts: list[str]
) -> tuple[str | None, tuple[int, ...]]:
    """Emit a node's text or start tag.

    Returns ``(close_string, content_children)``; ``close_string`` is
    ``None`` when the node is already complete (text or empty element).
    """
    label = tree.label_of(num)
    kids = tree.children_of(num)
    if not kids and not _is_name(label):
        parts.append(_escape(label))
        return None, ()
    if not _is_name(label):
        raise XmlParseError(f"label {label!r} cannot be an XML element name")
    attrs: list[str] = []
    content: list[int] = []
    for kid in kids:
        kid_label = tree.label_of(kid)
        kid_kids = tree.children_of(kid)
        if kid_label.startswith("@") and len(kid_kids) <= 1:
            value = tree.label_of(kid_kids[0]) if kid_kids else ""
            attrs.append(f' {kid_label[1:]}="{_escape_attribute(value)}"')
        else:
            content.append(kid)
    parts.append(f"<{label}{''.join(attrs)}")
    if not content:
        parts.append("/>")
        return None, ()
    parts.append(">")
    return f"</{label}>", tuple(content)
