"""Ordered labeled trees: the data substrate SketchTree streams over.

This subpackage provides:

* :class:`~repro.trees.node.TreeNode` — a mutable node used while building
  trees;
* :class:`~repro.trees.tree.LabeledTree` — an immutable ordered labeled tree
  with postorder numbering (the representation every other subsystem
  consumes);
* builders for nested tuples and s-expressions
  (:func:`~repro.trees.builders.from_nested`,
  :func:`~repro.trees.builders.from_sexpr`);
* a from-scratch XML tokenizer/parser and serializer
  (:func:`~repro.trees.xml.parse_xml`, :func:`~repro.trees.xml.to_xml`,
  :func:`~repro.trees.xml.parse_forest`);
* structural statistics (:class:`~repro.trees.stats.TreeStatistics`,
  :class:`~repro.trees.stats.ForestStatistics`).
"""

from repro.trees.builders import from_nested, from_sexpr, to_sexpr
from repro.trees.node import TreeNode
from repro.trees.stats import ForestStatistics, TreeStatistics
from repro.trees.tree import LabeledTree, Nested
from repro.trees.xml import iter_events, parse_forest, parse_xml, to_xml

__all__ = [
    "ForestStatistics",
    "LabeledTree",
    "Nested",
    "TreeNode",
    "TreeStatistics",
    "from_nested",
    "from_sexpr",
    "iter_events",
    "parse_forest",
    "parse_xml",
    "to_sexpr",
    "to_xml",
]
