"""Structural statistics for trees and forests.

These feed Table 1 of the paper (dataset characteristics) and the dataset
generators' self-checks ("narrow and deep" vs "shallow and bushy").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.trees.tree import LabeledTree


@dataclass(frozen=True)
class TreeStatistics:
    """Shape metrics of a single tree."""

    n_nodes: int
    n_edges: int
    depth: int
    max_fanout: int
    leaf_count: int
    n_distinct_labels: int

    @classmethod
    def of(cls, tree: LabeledTree) -> "TreeStatistics":
        return cls(
            n_nodes=tree.n_nodes,
            n_edges=tree.n_edges,
            depth=tree.depth(),
            max_fanout=tree.max_fanout(),
            leaf_count=tree.leaf_count(),
            n_distinct_labels=len(set(tree.labels)),
        )


@dataclass(frozen=True)
class ForestStatistics:
    """Aggregate shape metrics of a stream (forest) of trees."""

    n_trees: int
    total_nodes: int
    mean_nodes: float
    max_nodes: int
    mean_depth: float
    max_depth: int
    mean_fanout: float
    max_fanout: int
    n_distinct_labels: int

    @classmethod
    def of(cls, trees: Iterable[LabeledTree]) -> "ForestStatistics":
        n_trees = 0
        total_nodes = 0
        max_nodes = 0
        depth_sum = 0
        max_depth = 0
        fanout_sum = 0.0
        max_fanout = 0
        labels: set[str] = set()
        for tree in trees:
            n_trees += 1
            total_nodes += tree.n_nodes
            max_nodes = max(max_nodes, tree.n_nodes)
            d = tree.depth()
            depth_sum += d
            max_depth = max(max_depth, d)
            f = tree.max_fanout()
            fanout_sum += f
            max_fanout = max(max_fanout, f)
            labels.update(tree.labels)
        if n_trees == 0:
            return cls(0, 0, 0.0, 0, 0.0, 0, 0.0, 0, 0)
        return cls(
            n_trees=n_trees,
            total_nodes=total_nodes,
            mean_nodes=total_nodes / n_trees,
            max_nodes=max_nodes,
            mean_depth=depth_sum / n_trees,
            max_depth=max_depth,
            mean_fanout=fanout_sum / n_trees,
            max_fanout=max_fanout,
            n_distinct_labels=len(labels),
        )
