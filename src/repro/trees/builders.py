"""Builders converting compact textual/structural forms into trees.

Two interchange forms are supported:

* **nested tuples** — ``("A", (("B", ()), ("C", ())))``; this is the
  canonical :data:`~repro.trees.tree.Nested` form used for tree patterns
  everywhere in the library.  A bare label with no children may be written
  ``("A", ())`` or simply ``"A"`` (string shorthand accepted on input).
* **s-expressions** — ``"(A (B) (C))"``; convenient in tests and examples.
"""

from __future__ import annotations

from repro.errors import TreeError
from repro.trees.node import TreeNode
from repro.trees.tree import LabeledTree, Nested


def from_nested(nested: Nested | str) -> LabeledTree:
    """Build a :class:`LabeledTree` from nested-tuple form.

    Accepts ``(label, (child, ...))`` where each child is again nested form,
    or a bare label string as shorthand for a single-node tree.

    >>> from_nested(("A", (("B", ()), ("C", ())))).labels
    ('B', 'C', 'A')
    """
    return LabeledTree(node_from_nested(nested))


def node_from_nested(nested: Nested | str) -> TreeNode:
    """Build a mutable :class:`TreeNode` structure from nested-tuple form."""
    root_label, root_kids = _split(nested)
    root = TreeNode(root_label)
    stack = [(root, root_kids)]
    while stack:
        node, kids = stack.pop()
        for kid in kids:
            label, grandkids = _split(kid)
            child = node.add(label)
            stack.append((child, grandkids))
    return root


def _split(nested: Nested | str) -> tuple[str, tuple]:
    """Normalise one nested element into ``(label, children_tuple)``."""
    if isinstance(nested, str):
        return nested, ()
    if (
        isinstance(nested, tuple)
        and len(nested) == 2
        and isinstance(nested[0], str)
        and isinstance(nested[1], tuple)
    ):
        return nested[0], nested[1]
    raise TreeError(f"not a valid nested tree form: {nested!r}")


def from_sexpr(text: str) -> LabeledTree:
    """Parse an s-expression such as ``"(A (B) (C (D)))"`` into a tree.

    Labels run until whitespace or a parenthesis; backslash escapes are not
    supported (labels with spaces should use nested-tuple form instead).
    A bare label without parentheses denotes a single-node tree.
    """
    tokens = _tokenize_sexpr(text)
    if not tokens:
        raise TreeError("empty s-expression")
    pos = 0

    def parse_node() -> TreeNode:
        nonlocal pos
        if tokens[pos] == "(":
            pos += 1
            if pos >= len(tokens) or tokens[pos] in "()":
                raise TreeError("expected a label after '('")
            node = TreeNode(tokens[pos])
            pos += 1
            while pos < len(tokens) and tokens[pos] != ")":
                node.add_child(parse_node())
            if pos >= len(tokens):
                raise TreeError("unbalanced s-expression: missing ')'")
            pos += 1  # consume ')'
            return node
        if tokens[pos] == ")":
            raise TreeError("unexpected ')'")
        node = TreeNode(tokens[pos])
        pos += 1
        return node

    root = parse_node()
    if pos != len(tokens):
        raise TreeError(f"trailing tokens after tree: {tokens[pos:]!r}")
    return LabeledTree(root)


def _tokenize_sexpr(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        else:
            j = i
            while j < len(text) and not text[j].isspace() and text[j] not in "()":
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def to_sexpr(tree: LabeledTree) -> str:
    """Serialise a tree back into s-expression form (inverse of parse).

    Round-trip property: ``from_sexpr(to_sexpr(t)) == t`` for every tree
    whose labels contain no whitespace or parentheses.
    """
    parts: list[str] = []
    # Iterative preorder with explicit close markers.
    stack: list[object] = [tree.root]
    while stack:
        item = stack.pop()
        if item is None:
            parts.append(")")
            continue
        parts.append(f"({tree.label_of(item)}")
        stack.append(None)
        for kid in reversed(tree.children_of(item)):
            stack.append(kid)
    return " ".join(parts).replace("( ", "(").replace(" )", ")")
