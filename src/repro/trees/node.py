"""Mutable tree nodes used while constructing labeled trees.

:class:`TreeNode` is deliberately small: a label plus an ordered list of
children.  Once a tree is fully built it is normally frozen into a
:class:`~repro.trees.tree.LabeledTree`, which precomputes the postorder
arrays every algorithm in this library works with.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TreeError


class TreeNode:
    """One node of an ordered labeled tree under construction.

    Parameters
    ----------
    label:
        Node label.  Any non-empty string is accepted; XML element names,
        parts-of-speech tags and CDATA values are all just labels to this
        library.
    children:
        Optional initial children, kept in the given (document) order.
    """

    __slots__ = ("label", "children")

    def __init__(self, label: str, children: Iterable["TreeNode"] | None = None):
        if not isinstance(label, str) or not label:
            raise TreeError(f"node label must be a non-empty string, got {label!r}")
        self.label = label
        self.children: list[TreeNode] = list(children) if children is not None else []

    def add_child(self, child: "TreeNode") -> "TreeNode":
        """Append ``child`` as the rightmost child and return it."""
        if not isinstance(child, TreeNode):
            raise TreeError(f"child must be a TreeNode, got {type(child).__name__}")
        self.children.append(child)
        return child

    def add(self, label: str) -> "TreeNode":
        """Create a new node with ``label``, append it and return it."""
        return self.add_child(TreeNode(label))

    @property
    def is_leaf(self) -> bool:
        """``True`` when the node has no children."""
        return not self.children

    def size(self) -> int:
        """Number of nodes in the subtree rooted here (iterative)."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def iter_preorder(self) -> Iterator["TreeNode"]:
        """Yield the subtree's nodes in preorder (parent before children)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def to_nested(self) -> tuple:
        """Return the canonical nested-tuple form of the subtree.

        The nested form ``(label, (child, child, ...))`` is hashable and is
        used as the canonical identity of tree patterns throughout the
        library.
        """
        # Iterative post-order conversion so very deep trees do not hit the
        # Python recursion limit.
        out: dict[int, tuple] = {}
        stack: list[tuple[TreeNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                kids = tuple(out.pop(id(child)) for child in node.children)
                out[id(node)] = (node.label, kids)
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))
        return out[id(self)]

    def copy(self) -> "TreeNode":
        """Return a deep copy of the subtree rooted here."""
        root = TreeNode(self.label)
        stack = [(self, root)]
        while stack:
            src, dst = stack.pop()
            for child in src.children:
                new = TreeNode(child.label)
                dst.children.append(new)
                stack.append((child, new))
        return root

    def __repr__(self) -> str:
        return f"TreeNode({self.label!r}, {len(self.children)} children)"
