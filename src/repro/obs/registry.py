"""Zero-dependency runtime metrics: counters, gauges, histograms, spans.

The paper's evaluation (Sections 7.5–7.7) is built on measured
quantities — per-stage processing cost, synopsis memory, top-k churn —
that a deployment needs to surface from a *running* synopsis, not just
from offline benchmark scripts.  This module is the instrumentation
substrate: a :class:`MetricsRegistry` holding three numpy-backed
instrument kinds plus a :meth:`~MetricsRegistry.span` timing context,
and a :class:`NullRegistry` no-op twin that is the process-wide default.

Design constraints, in order:

1. **The disabled path costs one attribute check.**  Every instrumented
   hot path reads ``registry.enabled`` once and skips all metric work
   when it is ``False``.  The default registry is :data:`NULL_REGISTRY`,
   so code that never opts in pays (almost) nothing — `bench_obs.py`
   measures this.
2. **Zero dependencies.**  Counters and gauges are plain Python numbers;
   histograms are fixed-bucket int64 arrays (`numpy`, already a core
   dependency).  There is no background thread, no socket, no client
   library — exporters (:mod:`repro.obs.export`) render on demand.
3. **Metrics never change estimates.**  No instrument touches sketch
   state, and nothing here is serialised into snapshots; attaching,
   detaching, or swapping a registry cannot alter any counter the
   synopsis owns (pinned by ``tests/test_obs.py``).

Pull instruments: a counter or gauge constructed with ``fn=...`` reads
its value from the callback at collection time instead of storing one —
zero hot-path cost for state-derived metrics (allocated virtual streams,
counter L2 mass, top-k deleted mass).  Registering a name again with a
new callback rebinds it (last owner wins), which is what lets a restored
or rebuilt synopsis take over its gauges.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "BYTE_BUCKETS",
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Registry",
    "Span",
    "get_default_registry",
    "set_default_registry",
    "use_registry",
]

#: Default span buckets: half-decade log spacing, 10 µs … 10 s.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-05, 3.162e-05, 1e-04, 3.162e-04, 1e-03, 3.162e-03,
    1e-02, 3.162e-02, 1e-01, 3.162e-01, 1.0, 3.162, 10.0,
)

#: Buckets for small cardinalities (batch sizes, patterns per tree).
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

#: Buckets for payload sizes in bytes, 1 KiB … 256 MiB.
BYTE_BUCKETS: tuple[float, ...] = tuple(
    float(1 << exp) for exp in range(10, 29, 2)
)


class Counter:  # sketchlint: thread-safe
    """A monotonically increasing total (or a pull callback thereof).

    ``inc`` is atomic under the instrument's own lock, so totals are
    exact even when every thread in the process increments the same
    counter (pinned by ``tests/test_thread_safety.py``).
    """

    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    def __init__(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def rebind(self, fn: Callable[[], float]) -> None:
        """Atomically rebind a pull counter's callback (last owner wins)."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        """Current total; pull counters read their callback instead."""
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Gauge:  # sketchlint: thread-safe
    """A point-in-time value, set directly or pulled from a callback."""

    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    def __init__(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def rebind(self, fn: Callable[[], float]) -> None:
        """Atomically rebind a pull gauge's callback (last owner wins)."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:  # sketchlint: thread-safe
    """A fixed-bucket histogram over non-negative observations.

    ``buckets`` are the inclusive upper bounds (Prometheus ``le``
    semantics); one implicit ``+Inf`` bucket catches the overflow.  The
    per-bucket counts live in one int64 array, so ``observe`` is a
    single ``searchsorted`` plus an increment.
    """

    __slots__ = (
        "name", "help", "bounds", "bucket_counts", "total", "count", "_lock"
    )

    def __init__(self, name: str, buckets: tuple[float, ...], help: str = ""):
        bounds = np.asarray(buckets, dtype=np.float64)
        if len(bounds) == 0:
            raise ConfigError(f"histogram {name!r} needs at least one bucket")
        if np.any(np.diff(bounds) <= 0):
            raise ConfigError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        self.bucket_counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = int(np.searchsorted(self.bounds, value, side="left"))
        with self._lock:
            self.bucket_counts[index] += 1
            self.total += float(value)
            self.count += 1

    def observe_batch(self, values: "np.ndarray | Sequence[float]") -> None:
        """Record many observations with one bucket pass and one acquire.

        Equivalent to calling :meth:`observe` per value, but the bucket
        search is a single vectorised ``searchsorted`` and the lock is
        taken once — what per-element instrumentation inside ingest
        loops must use instead (sketchlint SKL305).
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        indices = np.searchsorted(self.bounds, arr, side="left")
        increments = np.bincount(indices, minlength=len(self.bucket_counts))
        with self._lock:
            self.bucket_counts += increments
            self.total += float(arr.sum())
            self.count += int(arr.size)

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            running = np.cumsum(self.bucket_counts)
        pairs = [
            (float(bound), int(running[i])) for i, bound in enumerate(self.bounds)
        ]
        pairs.append((float("inf"), int(running[-1])))
        return pairs


class Span:  # sketchlint: thread-confined
    """A ``with``-block timer recording its duration into a histogram.

    Thread-confined by construction: a Span is created, entered, and
    exited by one thread; only the Histogram it records into is shared
    (and that is locked).
    """

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _NullInstrument:
    """Accepts every instrument and span operation; records nothing."""

    __slots__ = ()

    value = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_batch(self, values: object) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:  # sketchlint: thread-safe
    """A live registry: instruments are created on first use by name.

    Re-requesting a name returns the existing instrument (its buckets
    and help text are fixed by the first registration); passing a new
    ``fn`` rebinds a pull instrument's callback (last owner wins).

    Thread-safe: a registration lock makes each get-or-create atomic, so
    two threads requesting the same name always receive the same
    instrument; the instruments themselves carry their own locks.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instruments ---------------------------------------------------
    def counter(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name, help, fn)
            elif fn is not None:
                counter.rebind(fn)
            return counter

    def gauge(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name, help, fn)
            elif fn is not None:
                gauge.rebind(fn)
            return gauge

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name, buckets, help)
            return histogram

    def span(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Span:
        """A timing context recording into histogram ``name``."""
        return Span(self.histogram(name, buckets=buckets))

    # -- collection ----------------------------------------------------
    def all_counters(self) -> list[Counter]:
        with self._lock:
            return [self._counters[name] for name in sorted(self._counters)]

    def all_gauges(self) -> list[Gauge]:
        with self._lock:
            return [self._gauges[name] for name in sorted(self._gauges)]

    def all_histograms(self) -> list[Histogram]:
        with self._lock:
            return [self._histograms[name] for name in sorted(self._histograms)]


class NullRegistry:
    """The no-op twin: hot paths check ``enabled`` and skip everything.

    Every factory returns one shared inert instrument, so even code that
    does not guard on ``enabled`` (cold paths, tests) works unchanged.
    """

    enabled = False

    def counter(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        help: str = "",
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def all_counters(self) -> list[Counter]:
        return []

    def all_gauges(self) -> list[Gauge]:
        return []

    def all_histograms(self) -> list[Histogram]:
        return []


#: Either registry flavour; what instrumented code accepts.
Registry = MetricsRegistry | NullRegistry

#: The process-wide default when no registry is attached explicitly.
NULL_REGISTRY = NullRegistry()

_default_registry: Registry = NULL_REGISTRY

#: Guards the process-wide default; swaps are rare and never on a hot path.
_DEFAULT_LOCK = threading.Lock()


def get_default_registry() -> Registry:
    """The registry newly-constructed components attach to by default."""
    return _default_registry


def set_default_registry(registry: Registry | None) -> Registry:
    """Install a process-wide default registry; returns the previous one.

    ``None`` restores :data:`NULL_REGISTRY`.  Only components constructed
    *after* the call pick the new default up — existing synopses keep the
    registry they were built with (re-attach via
    ``SketchTree.set_metrics``).
    """
    global _default_registry
    with _DEFAULT_LOCK:
        previous = _default_registry
        _default_registry = registry if registry is not None else NULL_REGISTRY
        return previous


@contextmanager
def use_registry(registry: Registry | None) -> Iterator[Registry]:
    """Scope a default registry to a ``with`` block (always restores)."""
    previous = set_default_registry(registry)
    try:
        yield get_default_registry()
    finally:
        set_default_registry(previous)
