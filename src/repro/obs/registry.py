"""Zero-dependency runtime metrics: counters, gauges, histograms, spans.

The paper's evaluation (Sections 7.5–7.7) is built on measured
quantities — per-stage processing cost, synopsis memory, top-k churn —
that a deployment needs to surface from a *running* synopsis, not just
from offline benchmark scripts.  This module is the instrumentation
substrate: a :class:`MetricsRegistry` holding three numpy-backed
instrument kinds plus a :meth:`~MetricsRegistry.span` timing context,
and a :class:`NullRegistry` no-op twin that is the process-wide default.

Design constraints, in order:

1. **The disabled path costs one attribute check.**  Every instrumented
   hot path reads ``registry.enabled`` once and skips all metric work
   when it is ``False``.  The default registry is :data:`NULL_REGISTRY`,
   so code that never opts in pays (almost) nothing — `bench_obs.py`
   measures this.
2. **Zero dependencies.**  Counters and gauges are plain Python numbers;
   histograms are fixed-bucket int64 arrays (`numpy`, already a core
   dependency).  There is no background thread, no socket, no client
   library — exporters (:mod:`repro.obs.export`) render on demand.
3. **Metrics never change estimates.**  No instrument touches sketch
   state, and nothing here is serialised into snapshots; attaching,
   detaching, or swapping a registry cannot alter any counter the
   synopsis owns (pinned by ``tests/test_obs.py``).

Pull instruments: a counter or gauge constructed with ``fn=...`` reads
its value from the callback at collection time instead of storing one —
zero hot-path cost for state-derived metrics (allocated virtual streams,
counter L2 mass, top-k deleted mass).  Registering a name again with a
new callback rebinds it (last owner wins), which is what lets a restored
or rebuilt synopsis take over its gauges.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "BYTE_BUCKETS",
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Registry",
    "Span",
    "get_default_registry",
    "set_default_registry",
    "use_registry",
]

#: Default span buckets: half-decade log spacing, 10 µs … 10 s.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-05, 3.162e-05, 1e-04, 3.162e-04, 1e-03, 3.162e-03,
    1e-02, 3.162e-02, 1e-01, 3.162e-01, 1.0, 3.162, 10.0,
)

#: Buckets for small cardinalities (batch sizes, patterns per tree).
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

#: Buckets for payload sizes in bytes, 1 KiB … 256 MiB.
BYTE_BUCKETS: tuple[float, ...] = tuple(
    float(1 << exp) for exp in range(10, 29, 2)
)


class Counter:
    """A monotonically increasing total (or a pull callback thereof)."""

    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        """Current total; pull counters read their callback instead."""
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Gauge:
    """A point-in-time value, set directly or pulled from a callback."""

    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """A fixed-bucket histogram over non-negative observations.

    ``buckets`` are the inclusive upper bounds (Prometheus ``le``
    semantics); one implicit ``+Inf`` bucket catches the overflow.  The
    per-bucket counts live in one int64 array, so ``observe`` is a
    single ``searchsorted`` plus an increment.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "total", "count")

    def __init__(self, name: str, buckets: tuple[float, ...], help: str = ""):
        bounds = np.asarray(buckets, dtype=np.float64)
        if len(bounds) == 0:
            raise ConfigError(f"histogram {name!r} needs at least one bucket")
        if np.any(np.diff(bounds) <= 0):
            raise ConfigError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        self.bucket_counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = int(np.searchsorted(self.bounds, value, side="left"))
        self.bucket_counts[index] += 1
        self.total += float(value)
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        running = np.cumsum(self.bucket_counts)
        pairs = [
            (float(bound), int(running[i])) for i, bound in enumerate(self.bounds)
        ]
        pairs.append((float("inf"), int(running[-1])))
        return pairs


class Span:
    """A ``with``-block timer recording its duration into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _NullInstrument:
    """Accepts every instrument and span operation; records nothing."""

    __slots__ = ()

    value = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """A live registry: instruments are created on first use by name.

    Re-requesting a name returns the existing instrument (its buckets
    and help text are fixed by the first registration); passing a new
    ``fn`` rebinds a pull instrument's callback (last owner wins).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------
    def counter(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name, help, fn)
        elif fn is not None:
            counter._fn = fn
        return counter

    def gauge(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, help, fn)
        elif fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, buckets, help)
        return histogram

    def span(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Span:
        """A timing context recording into histogram ``name``."""
        return Span(self.histogram(name, buckets=buckets))

    # -- collection ----------------------------------------------------
    def all_counters(self) -> list[Counter]:
        return [self._counters[name] for name in sorted(self._counters)]

    def all_gauges(self) -> list[Gauge]:
        return [self._gauges[name] for name in sorted(self._gauges)]

    def all_histograms(self) -> list[Histogram]:
        return [self._histograms[name] for name in sorted(self._histograms)]


class NullRegistry:
    """The no-op twin: hot paths check ``enabled`` and skip everything.

    Every factory returns one shared inert instrument, so even code that
    does not guard on ``enabled`` (cold paths, tests) works unchanged.
    """

    enabled = False

    def counter(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(
        self, name: str, help: str = "", fn: Callable[[], float] | None = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        help: str = "",
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def all_counters(self) -> list[Counter]:
        return []

    def all_gauges(self) -> list[Gauge]:
        return []

    def all_histograms(self) -> list[Histogram]:
        return []


#: Either registry flavour; what instrumented code accepts.
Registry = MetricsRegistry | NullRegistry

#: The process-wide default when no registry is attached explicitly.
NULL_REGISTRY = NullRegistry()

_default_registry: Registry = NULL_REGISTRY


def get_default_registry() -> Registry:
    """The registry newly-constructed components attach to by default."""
    return _default_registry


def set_default_registry(registry: Registry | None) -> Registry:
    """Install a process-wide default registry; returns the previous one.

    ``None`` restores :data:`NULL_REGISTRY`.  Only components constructed
    *after* the call pick the new default up — existing synopses keep the
    registry they were built with (re-attach via
    ``SketchTree.set_metrics``).
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Registry | None) -> Iterator[Registry]:
    """Scope a default registry to a ``with`` block (always restores)."""
    previous = set_default_registry(registry)
    try:
        yield get_default_registry()
    finally:
        set_default_registry(previous)
