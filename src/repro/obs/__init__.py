"""Runtime observability: metrics registry, timing spans, exporters.

See :mod:`repro.obs.registry` for the design (one-attribute-check
disabled path, pull instruments) and :doc:`docs/observability.md` for
usage.  Quick start::

    from repro.obs import MetricsRegistry, to_prometheus_text

    registry = MetricsRegistry()
    synopsis = SketchTree(config, metrics=registry)
    synopsis.ingest(trees)
    print(to_prometheus_text(registry))
"""

from repro.obs.export import to_json_dict, to_prometheus_text, write_json
from repro.obs.registry import (
    BYTE_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Registry,
    Span,
    get_default_registry,
    set_default_registry,
    use_registry,
)

__all__ = [
    "BYTE_BUCKETS",
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Registry",
    "Span",
    "get_default_registry",
    "set_default_registry",
    "to_json_dict",
    "to_prometheus_text",
    "use_registry",
    "write_json",
]
