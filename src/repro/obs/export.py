"""Render a :class:`~repro.obs.registry.MetricsRegistry` for consumption.

Two formats, both computed on demand (no background collector):

* **Prometheus text exposition** (:func:`to_prometheus_text`) — the
  ``# HELP`` / ``# TYPE`` / sample-line format every Prometheus-family
  scraper understands; histograms render as cumulative ``_bucket``
  series plus ``_sum`` / ``_count``.
* **JSON** (:func:`to_json_dict` / :func:`write_json`) — a plain nested
  dict for dashboards, tests, and the ``--metrics-out`` CLI flag.

Metric names are sanitised to the Prometheus charset and prefixed (the
default prefix is ``repro``), so ``ingest_encode_seconds`` exports as
``repro_ingest_encode_seconds``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.registry import Registry

__all__ = ["to_json_dict", "to_prometheus_text", "write_json"]

_NAME_SANITISER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    sanitised = _NAME_SANITISER.sub("_", name)
    if prefix and not sanitised.startswith(f"{prefix}_"):
        sanitised = f"{prefix}_{sanitised}"
    if not re.match(r"[a-zA-Z_:]", sanitised):
        sanitised = f"_{sanitised}"
    return sanitised


def _escape_help(text: str) -> str:
    """Escape a HELP string per the text exposition format (0.0.4).

    Backslashes become ``\\\\`` and line feeds become the two-character
    sequence ``\\n`` — a raw newline would terminate the comment line and
    leave the remainder of the help text as a garbage sample line,
    corrupting the whole scrape.  (Backslash must be escaped first so an
    original ``\\n`` in the help text round-trips distinctly.)
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return format(bound, "g")


def to_prometheus_text(registry: Registry, prefix: str = "repro") -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for counter in registry.all_counters():
        name = _metric_name(counter.name, prefix)
        if counter.help:
            lines.append(f"# HELP {name} {_escape_help(counter.help)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(counter.value)}")
    for gauge in registry.all_gauges():
        name = _metric_name(gauge.name, prefix)
        if gauge.help:
            lines.append(f"# HELP {name} {_escape_help(gauge.help)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(gauge.value)}")
    for histogram in registry.all_histograms():
        name = _metric_name(histogram.name, prefix)
        if histogram.help:
            lines.append(f"# HELP {name} {_escape_help(histogram.help)}")
        lines.append(f"# TYPE {name} histogram")
        for bound, cumulative in histogram.cumulative():
            lines.append(
                f'{name}_bucket{{le="{_format_bound(bound)}"}} {cumulative}'
            )
        lines.append(f"{name}_sum {repr(float(histogram.total))}")
        lines.append(f"{name}_count {histogram.count}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def to_json_dict(registry: Registry) -> dict:
    """The registry as a plain JSON-serialisable dict."""
    return {
        "counters": {
            counter.name: counter.value for counter in registry.all_counters()
        },
        "gauges": {gauge.name: gauge.value for gauge in registry.all_gauges()},
        "histograms": {
            histogram.name: {
                "buckets": [
                    [("+Inf" if bound == float("inf") else bound), cumulative]
                    for bound, cumulative in histogram.cumulative()
                ],
                "sum": histogram.total,
                "count": histogram.count,
            }
            for histogram in registry.all_histograms()
        },
    }


def write_json(registry: Registry, path: str | Path) -> Path:
    """Dump :func:`to_json_dict` to ``path`` (pretty-printed, sorted)."""
    target = Path(path)
    target.write_text(
        json.dumps(to_json_dict(registry), indent=2, sort_keys=True) + "\n"
    )
    return target
