"""The SKL rule set: domain invariants of the SketchTree reproduction.

Every rule is a pure function ``FileContext -> Iterator[Violation]`` plus
a scope predicate over the (POSIX-normalised) file path.  The invariants
come straight from the paper's accuracy analysis — see
``docs/static-analysis.md`` for the rule-by-rule rationale.

Scope matching is by package sub-path (``/repro/sketch/`` …) rather than
by import name, so the same rules run unchanged over ``src/`` and over
the test fixtures, which mirror the package layout under
``tests/fixtures/sketchlint/``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from tools.sketchlint.violations import FileContext, Violation

# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------

#: Packages whose randomness must be reproducible: the sketch/hashing/core
#: hot paths plus the workload generator and stream engine that drive them.
RNG_SCOPE = (
    "/repro/sketch/",
    "/repro/hashing/",
    "/repro/core/",
    "/repro/workload/",
    "/repro/stream/",
)

#: Estimator code where float equality silently breaks median-of-means
#: tie-breaking and top-k compensation.
ESTIMATOR_SCOPE = ("/repro/sketch/", "/repro/core/")

#: Packages where seed / polynomial literals must live in repro.core.config.
SEED_LITERAL_SCOPE = ("/repro/sketch/", "/repro/hashing/", "/repro/core/")

#: The one module allowed to define seed/polynomial constants.
SEED_LITERAL_EXEMPT = ("repro/core/config.py",)

#: Modules whose classes are instantiated per node / per pattern inside the
#: EnumTree inner loop and therefore must declare ``__slots__``.
SLOTS_REQUIRED_FILES = (
    "repro/trees/node.py",
    "repro/prufer/sequences.py",
    "repro/stream/sax.py",
)


def _in_scope(path: str, prefixes: tuple[str, ...]) -> bool:
    slashed = "/" + path
    return any(prefix in slashed for prefix in prefixes)


def _ends_with(path: str, suffixes: tuple[str, ...]) -> bool:
    return any(path.endswith(suffix) for suffix in suffixes)


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_int_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    )


def _contains_nonzero_int(node: ast.AST) -> bool:
    return any(
        _is_int_literal(child) and child.value != 0 for child in ast.walk(node)
    )


def _literal_arithmetic_only(node: ast.AST) -> bool:
    """True when the expression is built purely from constants/arithmetic."""
    allowed = (ast.Constant, ast.BinOp, ast.UnaryOp, ast.operator, ast.unaryop)
    return all(isinstance(child, allowed) for child in ast.walk(node))


def _mentions_seed(node: ast.AST) -> bool:
    """Does the expression reference a seed-named variable or attribute?

    Deliberately narrower than the keyword-argument check: polynomial
    *values* flow through arithmetic constantly (``poly.bit_length() - 1``),
    so only names containing "seed" make an adjacent literal suspicious.
    """
    for child in ast.walk(node):
        name: str | None = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        if name is not None and "seed" in name.lower():
            return True
    return False


def _body_is_swallow(body: list[ast.stmt]) -> bool:
    """A handler body that discards the exception: only pass / ... / docstring."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare Ellipsis
        return False
    return True


def _handler_catches_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in types:
        name = _dotted_name(node)
        if name is not None and name.rsplit(".", 1)[-1] in (
            "Exception",
            "BaseException",
        ):
            return True
    return False


def _module_level_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Calls executed at import time: module body and class bodies, but not
    the bodies of function definitions or lambdas."""
    todo: list[ast.AST] = list(tree.body)
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        todo.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# SKL001 — reproducible randomness in hot paths
# ---------------------------------------------------------------------------

_NUMPY_LEGACY_RNG = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
}


def check_skl001(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield ctx.violation(
                        "SKL001",
                        node,
                        "stdlib `random` in a sketch/hashing hot path; thread "
                        "an explicitly seeded np.random.Generator (see "
                        "repro.core.config) instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield ctx.violation(
                    "SKL001",
                    node,
                    "stdlib `random` in a sketch/hashing hot path; thread "
                    "an explicitly seeded np.random.Generator (see "
                    "repro.core.config) instead",
                )
        elif isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            if name is None:
                continue
            leaf = name.rsplit(".", 1)[-1]
            if leaf == "default_rng" and not node.args and not node.keywords:
                yield ctx.violation(
                    "SKL001",
                    node,
                    "np.random.default_rng() without a seed is irreproducible; "
                    "derive the seed from SketchTreeConfig.seed",
                )
            elif (
                leaf == "default_rng"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                yield ctx.violation(
                    "SKL001",
                    node,
                    "np.random.default_rng(None) is irreproducible; derive "
                    "the seed from SketchTreeConfig.seed",
                )
            elif (
                name.startswith(("np.random.", "numpy.random."))
                and leaf in _NUMPY_LEGACY_RNG
            ):
                yield ctx.violation(
                    "SKL001",
                    node,
                    f"legacy global numpy RNG `{name}`; use an explicitly "
                    "seeded np.random.Generator instance",
                )


# ---------------------------------------------------------------------------
# SKL002 — no float equality in estimator code
# ---------------------------------------------------------------------------

def _is_floaty(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.Call) and _dotted_name(node.func) == "float":
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    return False


def check_skl002(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_floaty(left) or _is_floaty(right):
                yield ctx.violation(
                    "SKL002",
                    node,
                    "float == / != in estimator code; estimator outputs are "
                    "reals — compare with math.isclose or an explicit "
                    "tolerance",
                )


# ---------------------------------------------------------------------------
# SKL003 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "collections.defaultdict",
    "Counter",
    "collections.Counter",
    "deque",
    "collections.deque",
}


def _is_mutable_default(node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        return name in _MUTABLE_CALLS
    return False


def check_skl003(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if _is_mutable_default(default):
                yield ctx.violation(
                    "SKL003",
                    default,
                    f"mutable default argument in `{node.name}`; defaults are "
                    "shared across calls — use None and construct inside",
                )


# ---------------------------------------------------------------------------
# SKL004 — monotonic clocks in measured sections
# ---------------------------------------------------------------------------

def check_skl004(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute) and _dotted_name(node) == "time.time":
            yield ctx.violation(
                "SKL004",
                node,
                "wall-clock time.time in measured code; it is not monotonic "
                "(NTP steps corrupt cost ratios) — use time.perf_counter",
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    yield ctx.violation(
                        "SKL004",
                        node,
                        "`from time import time` imports the wall clock; "
                        "use time.perf_counter for measured sections",
                    )


# ---------------------------------------------------------------------------
# SKL005 — no bare / swallowed exceptions
# ---------------------------------------------------------------------------

def check_skl005(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield ctx.violation(
                "SKL005",
                node,
                "bare `except:` catches SystemExit/KeyboardInterrupt and hides "
                "stream-engine failures; name the exception types",
            )
        elif _handler_catches_broad(node) and _body_is_swallow(node.body):
            yield ctx.violation(
                "SKL005",
                node,
                "broad exception swallowed silently; a dropped stream update "
                "corrupts the synopsis without a trace — handle or re-raise",
            )


# ---------------------------------------------------------------------------
# SKL006 — seed / polynomial literals belong in repro.core.config
# ---------------------------------------------------------------------------

_SEEDY_KEYWORDS = {"seed", "encoder_seed", "poly", "polynomial", "irreducible_poly"}


def check_skl006(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if (
                    keyword.arg is not None
                    and keyword.arg.lower() in _SEEDY_KEYWORDS
                    and _literal_arithmetic_only(keyword.value)
                    and _contains_nonzero_int(keyword.value)
                ):
                    yield ctx.violation(
                        "SKL006",
                        keyword.value,
                        f"hard-coded `{keyword.arg}` literal; seed and "
                        "polynomial constants belong in repro.core.config so "
                        "every run derives from one master seed",
                    )
        elif isinstance(node, ast.BinOp):
            left, right = node.left, node.right
            if (_mentions_seed(left) and _contains_nonzero_int(right)) or (
                _mentions_seed(right) and _contains_nonzero_int(left)
            ):
                yield ctx.violation(
                    "SKL006",
                    node,
                    "seed derived with an inline literal offset/salt; name "
                    "the constant in repro.core.config so derivations are "
                    "auditable in one place",
                )


# ---------------------------------------------------------------------------
# SKL007 — __slots__ on per-node / per-pattern classes
# ---------------------------------------------------------------------------

def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    for decorator in cls.decorator_list:
        if isinstance(decorator, ast.Call):
            name = _dotted_name(decorator.func)
            if name is not None and name.rsplit(".", 1)[-1] == "dataclass":
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
    return False


def check_skl007(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and not _declares_slots(node):
            yield ctx.violation(
                "SKL007",
                node,
                f"class `{node.name}` is instantiated per node/pattern in the "
                "EnumTree inner loop but declares no __slots__; per-instance "
                "__dict__ overhead dominates at stream scale",
            )


# ---------------------------------------------------------------------------
# SKL008 — no import-time I/O or RNG construction
# ---------------------------------------------------------------------------

_IMPORT_TIME_EXACT = {"open", "io.open", "time.time", "default_rng", "Random"}
_IMPORT_TIME_PREFIXES = ("random.", "np.random.", "numpy.random.")
_IMPORT_TIME_METHODS = {"read_text", "read_bytes", "urlopen", "urlretrieve"}


def check_skl008(ctx: FileContext) -> Iterator[Violation]:
    for call in _module_level_calls(ctx.tree):
        name = _dotted_name(call.func)
        flagged = False
        if name is not None and (
            name in _IMPORT_TIME_EXACT or name.startswith(_IMPORT_TIME_PREFIXES)
        ):
            flagged = True
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _IMPORT_TIME_METHODS
        ):
            flagged = True
        if flagged:
            yield ctx.violation(
                "SKL008",
                call,
                f"I/O or RNG construction (`{name or call.func.attr}`) at "
                "module import time; importing a module must not consume "
                "entropy or touch files — construct lazily inside functions",
            )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """One registered rule: id, summary, path scope, and check function."""

    id: str
    summary: str
    applies_to: Callable[[str], bool]
    check: Callable[[FileContext], Iterator[Violation]]


RULES: tuple[Rule, ...] = (
    Rule(
        "SKL001",
        "unseeded or stdlib-random RNG in sketch/hashing/core hot paths",
        lambda path: _in_scope(path, RNG_SCOPE),
        check_skl001,
    ),
    Rule(
        "SKL002",
        "float ==/!= comparison in estimator code",
        lambda path: _in_scope(path, ESTIMATOR_SCOPE),
        check_skl002,
    ),
    Rule(
        "SKL003",
        "mutable default argument",
        lambda path: True,
        check_skl003,
    ),
    Rule(
        "SKL004",
        "wall-clock time.time in measured sections",
        lambda path: True,
        check_skl004,
    ),
    Rule(
        "SKL005",
        "bare or silently swallowed exception",
        lambda path: True,
        check_skl005,
    ),
    Rule(
        "SKL006",
        "seed/polynomial literal outside repro.core.config",
        lambda path: _in_scope(path, SEED_LITERAL_SCOPE)
        and not _ends_with(path, SEED_LITERAL_EXEMPT),
        check_skl006,
    ),
    Rule(
        "SKL007",
        "missing __slots__ on EnumTree inner-loop classes",
        lambda path: _ends_with(path, SLOTS_REQUIRED_FILES),
        check_skl007,
    ),
    Rule(
        "SKL008",
        "module-import-time I/O or RNG construction",
        lambda path: True,
        check_skl008,
    ),
)

RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in RULES}
