"""Whole-project semantic analysis: the second sketchlint phase.

The per-file rules (SKL001-008) see one AST at a time, so an invariant
that holds *across module boundaries* — a seed laundered through a helper
module, a big pairing value batched into an int64 counter array, pickle
reachable from the snapshot path — passes them clean.  This package closes
that gap with three layers:

* :mod:`tools.sketchlint.semantic.model` — parses the whole project once,
  resolves imports and ``__init__`` re-exports into a symbol table, and
  infers enough types (annotations + constructor assignments) to resolve
  method calls.
* :mod:`tools.sketchlint.semantic.callgraph` — a call graph over the
  resolved symbols with reachability queries.
* :mod:`tools.sketchlint.semantic.dataflow` — an intra-procedural taint
  engine (assignment / return / argument propagation, with a transfer
  registry) tracking two lattices: *seed provenance* (does this value
  derive from ``repro.core.config``?) and *value width* (can this value
  exceed int64, i.e. did it flow from ``repro.hashing.pairing`` without a
  reduction?).

On top sit the SKL1xx rules (:mod:`tools.sketchlint.semantic.rules`) and
the phase entry point :func:`tools.sketchlint.semantic.analyzer.analyze_paths`.
"""

from tools.sketchlint.semantic.analyzer import analyze_paths, analyze_project
from tools.sketchlint.semantic.model import ProjectModel
from tools.sketchlint.semantic.rules import SEMANTIC_RULES, SEMANTIC_RULES_BY_ID

__all__ = [
    "ProjectModel",
    "SEMANTIC_RULES",
    "SEMANTIC_RULES_BY_ID",
    "analyze_paths",
    "analyze_project",
]
