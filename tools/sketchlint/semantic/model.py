"""The project model: every module parsed once, names resolved project-wide.

This is the foundation of the semantic phase.  It turns a set of files
into:

* a module table — dotted module name → parsed AST + per-module import
  bindings (``np`` → ``numpy``, ``XiGenerator`` →
  ``repro.sketch.xi.XiGenerator``);
* a symbol table — fully-qualified name → definition (module, class,
  function, method, constant) with ``__init__`` re-exports resolved
  through alias chains;
* light type inference — parameter / return annotations, constructor
  assignments (``x = SketchMatrix(...)``), and ``self.attr`` types
  collected from class bodies — enough to resolve ``obj.method(...)``
  calls without executing anything.

Everything is plain ``ast``; no file is imported or run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

#: Types we deliberately do not resolve further (containers, primitives).
_OPAQUE_ANNOTATIONS = {
    "int", "float", "str", "bytes", "bool", "None", "object", "Any",
    "list", "dict", "set", "tuple", "frozenset", "Iterable", "Iterator",
    "Sequence", "Mapping", "Callable",
}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str            # repro.core.topk.TopKTracker.process
    module: str              # repro.core.topk
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: "ClassInfo | None" = None
    #: Return annotation resolved to candidate class qualnames (may be empty).
    return_types: frozenset[str] = frozenset()
    is_property: bool = False

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def param_names(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs]
        names += [a.arg for a in args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names += [a.arg for a in args.kwonlyargs]
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class definition with its methods and inferred attribute types."""

    qualname: str
    module: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name → candidate class qualnames (from ``self.x = Ctor()``,
    #: ``self.x: T``, and class-level annotations, e.g. dataclass fields).
    attr_types: dict[str, frozenset[str]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution context."""

    name: str
    path: str                # POSIX-normalised, as given to the linter
    tree: ast.Module
    source: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    constants: set[str] = field(default_factory=set)


def module_name_for(path: Path) -> str | None:
    """Dotted module name, walking up while ``__init__.py`` marks packages.

    ``src/repro/core/config.py`` → ``repro.core.config``;
    ``src/repro/__init__.py`` → ``repro``.  Returns ``None`` for files
    outside any package (no ``__init__.py`` beside them).
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        return None
    return ".".join(reversed(parts))


class ProjectModel:
    """All modules of a project, with project-wide name resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: alias name → target qualified name (``from x import y`` in an
        #: ``__init__`` re-exports ``pkg.y`` as an alias of ``x.y``).
        self.aliases: dict[str, str] = {}
        #: every fully-qualified definition: functions, methods, classes,
        #: module-level constants.
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.constants: set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: Iterable[tuple[Path, str]]) -> "ProjectModel":
        """Parse ``(path, source)`` pairs into a model.

        Files that do not parse or sit outside a package are skipped —
        the per-file phase already reports them (SKL000).
        """
        model = cls()
        for path, source in files:
            name = module_name_for(Path(path))
            if name is None or name in model.modules:
                continue
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            info = ModuleInfo(
                name=name, path=Path(path).as_posix(), tree=tree, source=source
            )
            model.modules[name] = info
        for info in model.modules.values():
            model._index_module(info)
        for info in model.modules.values():
            model._infer_attr_types(info)
        return model

    def _index_module(self, info: ModuleInfo) -> None:
        package = info.name if _is_package(info) else info.name.rpartition(".")[0]
        for node in info.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = _import_from_base(node, info.name, package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    info.imports[bound] = f"{base}.{alias.name}"
                    # Importing into a package __init__ re-exports.
                    self.aliases[f"{info.name}.{bound}"] = f"{base}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._make_function(info, node, cls=None)
                info.functions[node.name] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(node, ast.ClassDef):
                self._index_class(info, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.constants.add(target.id)
                        self.constants.add(f"{info.name}.{target.id}")
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                info.constants.add(node.target.id)
                self.constants.add(f"{info.name}.{node.target.id}")

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        cls_info = ClassInfo(
            qualname=f"{info.name}.{node.name}", module=info.name, node=node
        )
        info.classes[node.name] = cls_info
        self.classes[cls_info.qualname] = cls_info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._make_function(info, stmt, cls=cls_info)
                cls_info.methods[stmt.name] = fn
                self.functions[fn.qualname] = fn

    def _make_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo | None,
    ) -> FunctionInfo:
        prefix = cls.qualname if cls is not None else info.name
        is_property = any(
            (isinstance(d, ast.Name) and d.id == "property")
            or (isinstance(d, ast.Attribute) and d.attr in ("property", "cached_property"))
            for d in node.decorator_list
        )
        fn = FunctionInfo(
            qualname=f"{prefix}.{node.name}",
            module=info.name,
            node=node,
            cls=cls,
            is_property=is_property,
        )
        fn.return_types = self.annotation_types(info, node.returns)
        return fn

    def _infer_attr_types(self, info: ModuleInfo) -> None:
        for cls_info in info.classes.values():
            # Class-level annotations (dataclass fields included).
            for stmt in cls_info.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    types = self.annotation_types(info, stmt.annotation)
                    if types:
                        cls_info.attr_types[stmt.target.id] = types
            # ``self.x = ...`` in method bodies.
            for method in cls_info.methods.values():
                param_types = self.parameter_types(info, method)
                for node in ast.walk(method.node):
                    target: ast.expr | None = None
                    value: ast.expr | None = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if isinstance(node, ast.AnnAssign):
                        types = self.annotation_types(info, node.annotation)
                    else:
                        types = self._value_types(info, value, param_types)
                    if types:
                        existing = cls_info.attr_types.get(target.attr, frozenset())
                        cls_info.attr_types[target.attr] = existing | types

    def _value_types(
        self,
        info: ModuleInfo,
        value: ast.expr | None,
        param_types: dict[str, frozenset[str]],
    ) -> frozenset[str]:
        """Types of a right-hand side: constructor calls and typed names."""
        if value is None:
            return frozenset()
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is not None:
                resolved = self.resolve(info, name)
                if resolved in self.classes:
                    return frozenset({resolved})
                fn = self.functions.get(resolved)
                if fn is not None:
                    return fn.return_types
        elif isinstance(value, ast.Name):
            return param_types.get(value.id, frozenset())
        elif isinstance(value, ast.IfExp):
            return self._value_types(info, value.body, param_types) | \
                self._value_types(info, value.orelse, param_types)
        return frozenset()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def canonical(self, qualname: str) -> str:
        """Follow alias (re-export) chains to the defining qualname."""
        seen = set()
        while qualname in self.aliases and qualname not in seen:
            seen.add(qualname)
            qualname = self.aliases[qualname]
        return qualname

    def resolve(self, module: ModuleInfo, dotted: str) -> str:
        """Resolve a dotted name used inside ``module`` to a qualified name.

        ``np.random.default_rng`` → ``numpy.random.default_rng``;
        ``XiGenerator`` → ``repro.sketch.xi.XiGenerator``;  unknown names
        resolve to themselves (builtins, locals).
        """
        head, _, rest = dotted.partition(".")
        if head in module.imports:
            base = module.imports[head]
        elif head in module.functions or head in module.classes or head in module.constants:
            base = f"{module.name}.{head}"
        else:
            base = head
        full = f"{base}.{rest}" if rest else base
        return self.canonical(full)

    def annotation_types(
        self, module: ModuleInfo, annotation: ast.expr | None
    ) -> frozenset[str]:
        """Candidate class qualnames named by an annotation.

        Handles ``X``, ``"X"``, ``X | None``, ``Optional[X]`` and
        ``Union[X, Y]``; containers and primitives resolve to nothing.
        """
        if annotation is None:
            return frozenset()
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return frozenset()
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return self.annotation_types(module, annotation.left) | \
                self.annotation_types(module, annotation.right)
        if isinstance(annotation, ast.Subscript):
            name = dotted_name(annotation.value)
            if name is not None and name.rsplit(".", 1)[-1] in ("Optional", "Union"):
                inner = annotation.slice
                elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
                out: frozenset[str] = frozenset()
                for element in elements:
                    out |= self.annotation_types(module, element)
                return out
            return frozenset()
        name = dotted_name(annotation)
        if name is None or name in _OPAQUE_ANNOTATIONS:
            return frozenset()
        resolved = self.resolve(module, name)
        if resolved in self.classes:
            return frozenset({resolved})
        return frozenset()

    def parameter_types(
        self, module: ModuleInfo, fn: FunctionInfo
    ) -> dict[str, frozenset[str]]:
        """Parameter name → candidate types (``self`` bound to the class)."""
        types: dict[str, frozenset[str]] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotated = self.annotation_types(module, arg.annotation)
            if annotated:
                types[arg.arg] = annotated
        if fn.cls is not None:
            params = fn.param_names
            if params and params[0] in ("self", "cls"):
                types[params[0]] = frozenset({fn.cls.qualname})
        return types

    def attribute_types(
        self, base_types: frozenset[str], attr: str
    ) -> frozenset[str]:
        """Types of ``obj.attr`` given candidate types of ``obj``.

        Looks at inferred attribute types first, then at ``@property``
        return annotations.
        """
        out: frozenset[str] = frozenset()
        for cls_name in base_types:
            cls_info = self.classes.get(cls_name)
            if cls_info is None:
                continue
            out |= cls_info.attr_types.get(attr, frozenset())
            method = cls_info.methods.get(attr)
            if method is not None and method.is_property:
                out |= method.return_types
        return out

    def lookup_method(
        self, base_types: frozenset[str], name: str
    ) -> list[FunctionInfo]:
        """Methods named ``name`` on any of the candidate classes."""
        found = []
        for cls_name in base_types:
            cls_info = self.classes.get(cls_name)
            if cls_info is not None and name in cls_info.methods:
                found.append(cls_info.methods[name])
        return found


def _is_package(info: ModuleInfo) -> bool:
    return info.path.endswith("__init__.py")


def _import_from_base(
    node: ast.ImportFrom, module_name: str, package: str
) -> str | None:
    """Absolute base module for an ``from ... import`` statement."""
    if node.level == 0:
        return node.module
    # Relative import: climb ``level`` packages from the containing package.
    parts = package.split(".") if package else []
    climb = node.level - 1
    if climb > len(parts):
        return None
    base_parts = parts[: len(parts) - climb] if climb else parts
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts) if base_parts else None
