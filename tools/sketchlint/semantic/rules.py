"""The SKL1xx semantic rule pack.

SKL101/SKL102 are emitted by the dataflow engine
(:mod:`tools.sketchlint.semantic.dataflow`); this module implements the
reachability rules (SKL103, SKL104) and the resolved-call scan (SKL105),
and owns the registry that the CLI lists and selects from.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from tools.sketchlint.semantic.callgraph import CallGraph, Resolver
from tools.sketchlint.semantic.model import (
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    dotted_name,
)
from tools.sketchlint.violations import Violation


@dataclass(frozen=True)
class SemanticRule:
    """Catalogue entry for one whole-project rule."""

    id: str
    summary: str


SEMANTIC_RULES: tuple[SemanticRule, ...] = (
    SemanticRule(
        "SKL101",
        "pairing-provenance value (may exceed int64) narrowed into a fixed "
        "integer dtype / counter array",
    ),
    SemanticRule(
        "SKL102",
        "RNG or ξ generator seeded from a nondeterministic source instead "
        "of repro.core.config",
    ),
    SemanticRule(
        "SKL103",
        "pickle or nondeterministic API reachable from the snapshot "
        "save/load entry points",
    ),
    SemanticRule(
        "SKL104",
        "function reachable from an estimator entry point writes a "
        "'counters' array (estimators must be pure)",
    ),
    SemanticRule(
        "SKL105",
        "np.load without allow_pickle=False, or np.frombuffer without an "
        "explicit dtype",
    ),
    SemanticRule(
        "SKL201",
        "unguarded shared-state write reachable from a concurrent "
        "entrypoint (declare a lock or a class threading contract)",
    ),
    SemanticRule(
        "SKL202",
        "non-atomic check-then-act or read-modify-write on shared state "
        "(probe and write never share a lock scope)",
    ),
    SemanticRule(
        "SKL203",
        "thread-safe class returns a mutable container attribute by "
        "reference, letting callers bypass its lock",
    ),
    SemanticRule(
        "SKL204",
        "inconsistent lock-acquisition order (cycle in the lock graph) "
        "or re-acquisition of a non-reentrant lock",
    ),
    SemanticRule(
        "SKL205",
        "np.random.Generator consumed from multiple concurrent "
        "entrypoints without a guard (breaks seeded determinism)",
    ),
    SemanticRule(
        "SKL301",
        "single-use iterable (generator / map / filter / Iterable param) "
        "consumed more than once or re-consumed inside a loop",
    ),
    SemanticRule(
        "SKL302",
        "per-element Python loop over columnar ndarray data on a hot "
        "path (.tolist() loop, scalar np.asarray per element)",
    ),
    SemanticRule(
        "SKL303",
        "allocation or loop-invariant recomputation inside a hot loop "
        "(np.concatenate per iteration, hoistable construction or "
        "attribute chain)",
    ),
    SemanticRule(
        "SKL304",
        "implicit ndarray copy / dtype churn on a hot path (astype in a "
        "loop, astype+fancy-index chain, dtype round trip)",
    ),
    SemanticRule(
        "SKL305",
        "per-element observability in a hot loop (instrument mutation, "
        "registry lookup, logging, or try/except per element)",
    ),
)
SEMANTIC_RULES_BY_ID = {rule.id: rule for rule in SEMANTIC_RULES}

#: Module whose public functions are the SKTSNAP persistence surface.
SNAPSHOT_MODULE = "repro.core.snapshot"

#: Serialisation modules banned anywhere on the snapshot path.
PICKLE_MODULES = frozenset({"pickle", "cPickle", "dill", "cloudpickle", "marshal"})

#: Nondeterministic calls banned on the snapshot path.  ``os.getpid`` /
#: ``os.replace`` / ``os.fsync`` are deliberately absent: atomic-rename
#: checkpointing needs them and they never influence payload bytes.
NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.perf_counter",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "random.random",
        "random.randint",
        "random.getrandbits",
        "random.randbytes",
        "random.choice",
        "random.shuffle",
        "random.seed",
    }
)


def _chain_text(chain: list[str]) -> str:
    return " -> ".join(chain)


# ----------------------------------------------------------------------
# SKL103: pickle / nondeterminism reachability from the snapshot path
# ----------------------------------------------------------------------
def check_snapshot_reachability(
    model: ProjectModel, graph: CallGraph
) -> list[Violation]:
    entries = [
        fn.qualname
        for fn in model.functions.values()
        if fn.module == SNAPSHOT_MODULE and fn.cls is None
    ]
    if not entries:
        return []
    chains = graph.reachable_from(entries)
    violations: list[Violation] = []
    reachable_modules: dict[str, list[str]] = {}
    for qualname, chain in chains.items():
        fn = model.functions.get(qualname)
        if fn is None:
            continue
        module = model.modules[fn.module]
        reachable_modules.setdefault(fn.module, chain)
        # Function-level pickle imports inside a reachable function.
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [(node.module or "").split(".")[0]]
            else:
                continue
            for name in names:
                if name in PICKLE_MODULES:
                    violations.append(
                        Violation(
                            rule="SKL103",
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            message=(
                                f"'{name}' imported inside {qualname}, which "
                                "is reachable from the snapshot path "
                                f"({_chain_text(chain)})"
                            ),
                        )
                    )
        # Calls into pickle or nondeterministic APIs.
        resolver = Resolver(model, module, fn)
        for site in graph_call_qualnames(model, module, fn, resolver):
            node, qualname_called = site
            head = qualname_called.partition(".")[0]
            if head in PICKLE_MODULES:
                violations.append(
                    Violation(
                        rule="SKL103",
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        message=(
                            f"{qualname_called} called from {qualname}, which "
                            "is reachable from the snapshot path "
                            f"({_chain_text(chain)})"
                        ),
                    )
                )
            elif qualname_called in NONDETERMINISTIC_CALLS:
                violations.append(
                    Violation(
                        rule="SKL103",
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        message=(
                            f"nondeterministic call {qualname_called} in "
                            f"{qualname}, reachable from the snapshot path "
                            f"({_chain_text(chain)})"
                        ),
                    )
                )
    # Module-level pickle imports in any module that defines a reachable
    # function (the old TestNoPickleInSnapshotPath contract).
    for module_name, chain in reachable_modules.items():
        module = model.modules[module_name]
        for node in module.tree.body:
            names: list[str] = []
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [(node.module or "").split(".")[0]]
            for name in names:
                if name in PICKLE_MODULES:
                    violations.append(
                        Violation(
                            rule="SKL103",
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            message=(
                                f"module-level import of '{name}' in "
                                f"{module_name}, which defines functions on "
                                "the snapshot path; quarantine it inside a "
                                "non-snapshot function"
                            ),
                        )
                    )
    return violations


def graph_call_qualnames(
    model: ProjectModel,
    module: ModuleInfo,
    fn: FunctionInfo,
    resolver: Resolver,
) -> list[tuple[ast.Call, str]]:
    """All calls in a function body resolved to qualified names, rebuilding
    the local type environment in source order (mirrors CallGraph._walk)."""
    out: list[tuple[ast.Call, str]] = []
    for stmt in fn.node.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                for qualname in resolver.resolve_call(node):
                    out.append((node, qualname))
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            resolver.bind(stmt.targets[0], stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            resolver.bind(stmt.target, stmt.value)
    return out


# ----------------------------------------------------------------------
# SKL104: estimator purity
# ----------------------------------------------------------------------
def check_estimator_purity(
    model: ProjectModel, graph: CallGraph
) -> list[Violation]:
    entries = [
        fn.qualname
        for fn in model.functions.values()
        if fn.name.startswith("estimate")
    ]
    if not entries:
        return []
    chains = graph.reachable_from(entries)
    violations: list[Violation] = []
    for qualname, chain in chains.items():
        fn = model.functions.get(qualname)
        if fn is None:
            continue
        module = model.modules[fn.module]
        fresh_locals = _fresh_locals(model, module, fn)
        for node in ast.walk(fn.node):
            target: ast.expr | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for candidate in targets:
                    attr = candidate
                    if isinstance(attr, ast.Subscript):
                        attr = attr.value
                    if isinstance(attr, ast.Attribute) and attr.attr == "counters":
                        target = attr
                        break
            if target is None:
                continue
            base = target.value
            if isinstance(base, ast.Name) and base.id in fresh_locals:
                continue  # writing a freshly constructed local object is pure
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and fn.name in ("__init__", "__post_init__")
            ):
                continue  # constructors initialise, they don't mutate

            violations.append(
                Violation(
                    rule="SKL104",
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"{qualname} writes a 'counters' array but is "
                        "reachable from an estimator entry point "
                        f"({_chain_text(chain)}); estimators must not mutate "
                        "sketch state"
                    ),
                )
            )
    return violations


def _fresh_locals(
    model: ProjectModel, module: ModuleInfo, fn: FunctionInfo
) -> set[str]:
    """Local names bound to objects constructed inside this function."""
    fresh: set[str] = set()
    for node in ast.walk(fn.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target, value = node.targets[0], node.value
        if not (isinstance(target, ast.Name) and isinstance(value, ast.Call)):
            continue
        name = dotted_name(value.func)
        if name is None:
            continue
        resolved = model.resolve(module, name)
        if resolved in model.classes:
            fresh.add(target.id)
    return fresh


# ----------------------------------------------------------------------
# SKL105: unsafe numpy deserialisation
# ----------------------------------------------------------------------
def check_numpy_deserialisation(model: ProjectModel) -> list[Violation]:
    violations: list[Violation] = []
    for module in model.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            resolved = model.resolve(module, name)
            if resolved == "numpy.load":
                allow = _keyword(node, "allow_pickle")
                if allow is None:
                    violations.append(
                        _np_violation(
                            module, node,
                            "np.load without explicit allow_pickle=False; "
                            "pass allow_pickle=False to keep snapshot "
                            "loading pickle-free",
                        )
                    )
                elif not (
                    isinstance(allow, ast.Constant) and allow.value is False
                ):
                    violations.append(
                        _np_violation(
                            module, node,
                            "np.load with allow_pickle enabled executes "
                            "arbitrary code on load; use allow_pickle=False",
                        )
                    )
            elif resolved == "numpy.frombuffer":
                if _keyword(node, "dtype") is None and len(node.args) < 2:
                    violations.append(
                        _np_violation(
                            module, node,
                            "np.frombuffer without an explicit dtype defaults "
                            "to float64 and silently misreads snapshot "
                            "payloads; pass dtype= explicitly",
                        )
                    )
    return violations


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _np_violation(module: ModuleInfo, node: ast.Call, message: str) -> Violation:
    return Violation(
        rule="SKL105",
        path=module.path,
        line=node.lineno,
        col=node.col_offset + 1,
        message=message,
    )
