"""Concurrency-safety analysis: the SKL2xx rule pack.

The serving tier shares sketch state across threads: ingest shards own
``SketchTree`` mutation, a query tier reads estimates concurrently, and
the metrics registry is mutated from every thread that touches it.  This
phase proves (under-approximately) that the shared state is guarded.

The analysis runs in four steps, reusing :class:`ProjectModel` and the
under-approximate :class:`CallGraph`:

1. **Entrypoint groups.**  A small config (:data:`DEFAULT_CONFIG`)
   declares the functions each kind of thread enters — ingest, query,
   admin (merge / snapshot), metrics, lint workers — and whether a group
   runs *in parallel with itself*.  Reachability from each group's
   entrypoints assigns every function a set of groups.

2. **Shared mutable state.**  Every method body is scanned for accesses
   to ``self`` attributes (including through local aliases such as
   ``cache = self._cache``): plain assignments, augmented assignments,
   subscript stores, mutating method calls (``append``, ``setdefault``,
   ``move_to_end``, ``heapq.heappush(self._heap, ...)``), deletions, and
   probing reads (``.get``, ``in``, subscript loads).  An attribute is
   *hazardous* when it is written outside ``__init__`` by a function
   reachable from an entrypoint, and either two or more groups touch it
   or a self-parallel group does.

3. **Guarded-by.**  ``with self._lock:`` scopes (and lock-typed module
   globals) mark accesses as guarded; a trailing
   ``# sketchlint: guarded-by=<attr>`` comment on a statement or ``def``
   line asserts the caller holds the lock.  Classes declare a threading
   contract with a trailing comment on the ``class`` line:

   * ``# sketchlint: thread-safe`` — every hazardous access must be
     guarded; SKL201/202/203 are enforced.
   * ``# sketchlint: single-writer`` — one thread owns mutation;
     concurrent reads are tolerated by design (documented in
     docs/concurrency.md).  SKL201/202/203 are waived, SKL205 stays.
   * ``# sketchlint: thread-confined`` — instances never cross threads;
     all SKL2xx rules are waived.

   An *undeclared* class with hazardous attributes gets the full rule
   set — forcing every shared class to either lock up or declare why
   it need not.

4. **Rules.**

   * **SKL201** — unguarded shared-state write reachable from a
     concurrent entrypoint.
   * **SKL202** — non-atomic check-then-act / read-modify-write: an
     unguarded augmented assignment, or a probe + write pair on the
     same attribute that never shares a lock scope (the encoder LRU's
     get-miss-insert and ``cache_hits += 1`` are the canonical cases).
   * **SKL203** — a thread-safe class returns a mutable container
     attribute by reference instead of a copy/view.
   * **SKL204** — inconsistent lock-acquisition order: the lock graph
     (lexically nested ``with`` acquires plus calls made under a lock,
     closed over the call graph) contains a cycle, or a non-reentrant
     lock may be re-acquired while held.
   * **SKL205** — an ``np.random.Generator`` attribute consumed from
     multiple entrypoint groups (or a self-parallel one) without a
     guard, which silently breaks config-seeded determinism.

Like the rest of the semantic phase this is deliberately
under-approximate: writes through non-``self`` objects, callbacks bound
as lambdas, and guards the scanner cannot see are invisible.  The
annotations exist precisely to record the invariants the analysis
cannot derive.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from tools.sketchlint.semantic.callgraph import CallGraph
from tools.sketchlint.semantic.model import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    dotted_name,
)
from tools.sketchlint.violations import Violation

# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EntrypointGroup:
    """Functions one kind of thread enters, matched by qualname glob.

    ``parallel`` means multiple threads may run this group's entrypoints
    simultaneously (so the group conflicts even with itself).
    """

    name: str
    patterns: tuple[str, ...]
    parallel: bool = False


@dataclass(frozen=True)
class ConcurrencyConfig:
    """The declared concurrency model of the project."""

    groups: tuple[EntrypointGroup, ...]


#: The serving-tier threading model (see docs/concurrency.md): each
#: ingest shard is single-threaded over its own SketchTree; queries and
#: admin operations (merge, snapshot) run concurrently; metrics are
#: mutated from every thread; sketchlint's own --jobs workers fan out.
DEFAULT_CONFIG = ConcurrencyConfig(
    groups=(
        EntrypointGroup(
            "ingest",
            (
                "repro.core.sketchtree.SketchTree.update",
                "repro.core.sketchtree.SketchTree.update_batch",
                "repro.core.sketchtree.SketchTree.update_from_patterns",
                "repro.core.sketchtree.SketchTree.delete_tree",
                "repro.core.sketchtree.SketchTree.ingest*",
                "repro.stream.engine.StreamProcessor.run",
                "repro.stream.engine.StreamProcessor.resume",
                # Each serving shard's drain loop is the single writer of
                # its own synopsis — the same thread kind as `ingest`.
                "repro.serve.shards.IngestShard._drain_loop",
                # The windowed consumer's stream side rides the same
                # single-writer thread (the drain loop feeds it).
                "repro.core.window.WindowedSketchTree.update",
                "repro.core.window.WindowedSketchTree.update_batch",
                "repro.core.window.WindowedSketchTree.ingest",
                # Corpus readers feed the single ingest thread: the tree
                # stream is consumed by StreamProcessor.run on that thread.
                "repro.corpora.reader.CorpusReader.itertrees",
                "repro.corpora.reader.CorpusReader.trees",
                "repro.corpora.ptb.iter_parse_ptb",
                "repro.corpora.export.iter_parse_export",
                "repro.corpora.dblp.iter_dblp_trees",
            ),
            parallel=False,
        ),
        EntrypointGroup(
            "query",
            (
                "repro.core.sketchtree.SketchTree.estimate_*",
                "repro.core.sketchtree.SketchTree.tracked*",
                "repro.core.window.WindowedSketchTree.estimate_*",
                "repro.core.window.WindowedSketchTree.tracked*",
            ),
            parallel=True,
        ),
        EntrypointGroup(
            "admin",
            (
                "repro.core.sketchtree.SketchTree.merge",
                "repro.core.sketchtree.SketchTree.to_bytes",
                "repro.core.sketchtree.SketchTree.set_metrics",
                "repro.core.window.WindowedSketchTree.merged",
                "repro.core.window.WindowedSketchTree.to_bytes",
                "repro.core.window.WindowedSketchTree.set_metrics",
                "repro.core.snapshot.CheckpointManager.*",
                "repro.stream.engine.StreamProcessor.snapshot_now",
            ),
            parallel=True,
        ),
        EntrypointGroup(
            "metrics",
            ("repro.obs.registry.*", "repro.obs.export.*"),
            parallel=True,
        ),
        EntrypointGroup(
            # The serving tier's HTTP handler threads: every route of the
            # API plus the service facade they call into runs on an
            # arbitrary ThreadingHTTPServer worker, many at once.
            "http-handlers",
            (
                "repro.serve.api.*",
                "repro.serve.service.ShardedService.*",
            ),
            parallel=True,
        ),
        EntrypointGroup(
            # The cross-thread ingress surface of a shard: submit /
            # drain / stop arrive from any handler thread concurrently
            # (the drain loop itself belongs to `ingest` above).
            "shard-ingest",
            (
                "repro.serve.shards.IngestShard.submit",
                "repro.serve.shards.IngestShard.drain",
                "repro.serve.shards.IngestShard.stop",
                "repro.serve.shards.IngestShard.start",
                "repro.serve.shards.IngestShard.error",
            ),
            parallel=True,
        ),
        EntrypointGroup(
            "lint-workers",
            ("tools.sketchlint.engine._lint_worker",),
            parallel=True,
        ),
    )
)

_CONTRACT_RE = re.compile(
    r"#\s*sketchlint:\s*(thread-safe|single-writer|thread-confined)\b"
)
_GUARDED_RE = re.compile(r"#\s*sketchlint:\s*guarded-by=([A-Za-z_]\w*)")

#: Constructors whose result is a lock object.
_LOCK_CTORS = {
    "threading.Lock": False,
    "threading.RLock": True,
    "threading.Condition": False,
}

#: Constructors whose result is a config-seeded random generator.
_RNG_CTORS = frozenset(
    {"numpy.random.default_rng", "repro.hashing.rng.default_generator"}
)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert", "add",
        "discard", "remove", "pop", "popleft", "popitem", "clear",
        "update", "setdefault", "move_to_end", "sort", "reverse",
    }
)

#: ``module.fn(container, ...)`` calls that mutate their first argument.
_MUTATING_HELPERS = frozenset(
    {"heapq.heappush", "heapq.heappop", "heapq.heapify", "heapq.heapreplace",
     "heapq.heappushpop", "random.shuffle"}
)

#: Container constructors: an attribute initialised from one of these is
#: treated as a mutable container for SKL203.
_CONTAINER_CTORS = frozenset(
    {
        "dict", "list", "set", "bytearray", "collections.OrderedDict",
        "collections.defaultdict", "collections.deque", "collections.Counter",
    }
)

_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})

_WRITE_KINDS = frozenset({"assign", "augassign", "store", "mutcall", "del"})


# ----------------------------------------------------------------------
# Per-function scan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Access:
    """One access to a shared location inside a function body."""

    attr: str            # attribute name (or module-global name)
    kind: str            # read | probe | assign | augassign | store | mutcall | del
    line: int
    col: int
    locks: frozenset[str]      # lock ids held at the access
    scopes: frozenset[object]  # acquisition scopes (for same-scope pairing)

    @property
    def is_write(self) -> bool:
        return self.kind in _WRITE_KINDS


@dataclass(frozen=True)
class Acquire:
    """One real ``with <lock>:`` acquisition (annotations excluded)."""

    lock: str
    line: int
    end_line: int
    held: frozenset[str]  # lock ids already held lexically


@dataclass
class FunctionScan:
    """Everything the concurrency phase needs from one function body."""

    fn: FunctionInfo
    accesses: list[Access] = field(default_factory=list)
    global_writes: list[Access] = field(default_factory=list)
    acquires: list[Acquire] = field(default_factory=list)
    #: Locks held over the whole body via a def-line guarded-by comment.
    annotation_locks: frozenset[str] = frozenset()


class _Scanner:
    """Scans one function, tracking held locks and self-attr aliases."""

    def __init__(
        self,
        model: ProjectModel,
        module: ModuleInfo,
        fn: FunctionInfo,
        class_locks: dict[str, bool],
        module_locks: dict[str, bool],
        lines: list[str],
    ) -> None:
        self.model = model
        self.module = module
        self.fn = fn
        self.class_locks = class_locks      # attr name → is_rlock
        self.module_locks = module_locks    # global name → is_rlock
        self.lines = lines
        self.aliases: dict[str, str] = {}   # local name → self attr
        self.lock_aliases: dict[str, str] = {}  # local name → lock id
        self.global_names: set[str] = set()
        self.scan = FunctionScan(fn=fn)

    # -- identifiers ----------------------------------------------------
    def _lock_id_for_attr(self, attr: str) -> str:
        cls = self.fn.cls
        owner = cls.qualname if cls is not None else self.module.name
        return f"{owner}.{attr}"

    def _lock_of(self, expr: ast.expr) -> str | None:
        """Lock id acquired by ``with <expr>:``, if recognisable."""
        if isinstance(expr, ast.Call) and not expr.args and not expr.keywords:
            # ``with self._cond:`` vs ``with self._lock.acquire_timeout()``
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and expr.attr in self.class_locks:
                return self._lock_id_for_attr(expr.attr)
        if isinstance(expr, ast.Name):
            if expr.id in self.lock_aliases:
                return self.lock_aliases[expr.id]
            if expr.id in self.module_locks:
                return f"{self.module.name}.{expr.id}"
        return None

    def _root_attr(self, expr: ast.expr) -> str | None:
        """Innermost ``self`` attribute an expression chain is rooted at.

        ``self.a``, ``self.a[i]``, ``self.a.b``, ``alias[i]`` (where
        ``alias = self.a``) all root at ``a``.
        """
        node = expr
        attr_on_self: str | None = None
        while True:
            if isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Attribute):
                attr_on_self = node.attr
                node = node.value
            else:
                break
        if isinstance(node, ast.Name):
            if node.id == "self" and attr_on_self is not None:
                return attr_on_self
            if node.id in self.aliases:
                return self.aliases[node.id]
        return None

    # -- statement annotations ------------------------------------------
    def _stmt_annotation(self, stmt: ast.stmt) -> frozenset[str] | None:
        line = stmt.lineno
        if 1 <= line <= len(self.lines):
            match = _GUARDED_RE.search(self.lines[line - 1])
            if match:
                return frozenset({self._lock_id_for_attr(match.group(1))})
        return None

    # -- entry ----------------------------------------------------------
    def run(self) -> FunctionScan:
        node = self.fn.node
        held: list[tuple[str, object]] = []
        if 1 <= node.lineno <= len(self.lines):
            match = _GUARDED_RE.search(self.lines[node.lineno - 1])
            if match:
                lock = self._lock_id_for_attr(match.group(1))
                self.scan.annotation_locks = frozenset({lock})
                held.append((lock, ("fn-ann", lock)))
        self._visit_body(node.body, held)
        return self.scan

    # -- statement walk -------------------------------------------------
    def _visit_body(self, body: list[ast.stmt], held: list) -> None:
        for stmt in body:
            self._visit_stmt(stmt, held)

    def _visit_stmt(self, stmt: ast.stmt, held: list) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are out of the under-approximation
        annotation = self._stmt_annotation(stmt)
        if annotation:
            held = held + [(lock, ("stmt-ann", lock)) for lock in annotation
                           if lock not in {entry[0] for entry in held}]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in stmt.items:
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self.scan.acquires.append(
                        Acquire(
                            lock=lock,
                            line=stmt.lineno,
                            end_line=getattr(stmt, "end_lineno", stmt.lineno)
                            or stmt.lineno,
                            held=frozenset(
                                entry[0] for entry in inner
                            ) | self.scan.annotation_locks,
                        )
                    )
                    inner = inner + [(lock, ("with", stmt.lineno, stmt.col_offset))]
                else:
                    self._visit_expr(item.context_expr, held)
            self._visit_body(stmt.body, inner)
            return
        if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
            self._visit_expr(stmt.test, held)
            self._visit_body(stmt.body, held)
            self._visit_body(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter, held)
            self._record_write_target(stmt.target, "assign", held)
            self._visit_body(stmt.body, held)
            self._visit_body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._visit_body(stmt.body, held)
            for handler in stmt.handlers:
                self._visit_body(handler.body, held)
            self._visit_body(stmt.orelse, held)
            self._visit_body(stmt.finalbody, held)
            return
        if isinstance(stmt, ast.Global):
            self.global_names.update(stmt.names)
            return
        self._leaf(stmt, held)

    # -- leaf statements ------------------------------------------------
    def _leaf(self, stmt: ast.stmt, held: list) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_write_target(target, "assign", held)
            self._visit_expr(stmt.value, held)
            if len(stmt.targets) == 1:
                self._bind_alias(stmt.targets[0], stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            self._record_write_target(stmt.target, "assign", held)
            if stmt.value is not None:
                self._visit_expr(stmt.value, held)
                self._bind_alias(stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._record_write_target(stmt.target, "augassign", held)
            self._visit_expr(stmt.value, held)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                root = self._root_attr(target)
                if root is not None:
                    self._record(root, "del", target, held)
                elif isinstance(target, ast.Subscript):
                    self._visit_expr(target.value, held)
                if isinstance(target, ast.Subscript):
                    self._visit_expr(target.slice, held)
        elif isinstance(stmt, (ast.Expr, ast.Return, ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_expr(child, held)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_expr(child, held)

    def _bind_alias(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        self.aliases.pop(target.id, None)
        self.lock_aliases.pop(target.id, None)
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            if value.attr in self.class_locks:
                self.lock_aliases[target.id] = self._lock_id_for_attr(value.attr)
            else:
                self.aliases[target.id] = value.attr

    def _record_write_target(self, target: ast.expr, kind: str, held: list) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write_target(element, kind, held)
            return
        if isinstance(target, ast.Starred):
            self._record_write_target(target.value, kind, held)
            return
        if isinstance(target, ast.Name):
            if kind in ("assign", "augassign") and target.id in self.global_names:
                self._record_global(target.id, kind, target, held)
            return
        if isinstance(target, ast.Subscript):
            root = self._root_attr(target)
            if root is not None:
                self._record(root, "augassign" if kind == "augassign" else "store",
                             target, held)
            else:
                self._visit_expr(target.value, held)
            self._visit_expr(target.slice, held)
            return
        if isinstance(target, ast.Attribute):
            root = self._root_attr(target)
            direct = (
                isinstance(target.value, ast.Name) and target.value.id == "self"
            )
            if root is not None:
                # ``self.a = x`` rebinds; ``self.a.b = x`` mutates the
                # object held by ``a`` — record both as writes to ``a``.
                self._record(root, kind if direct else "store", target, held)
            else:
                self._visit_expr(target.value, held)

    # -- expression walk ------------------------------------------------
    def _visit_expr(self, expr: ast.expr, held: list) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._classify_call(node, held)
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                for comparator in node.comparators:
                    root = self._root_attr(comparator)
                    if root is not None:
                        self._record(root, "probe", comparator, held)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                root = self._root_attr(node.value)
                if root is not None:
                    self._record(root, "probe", node, held)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    self._record(node.attr, "read", node, held)

    def _classify_call(self, call: ast.Call, held: list) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            root = self._root_attr(func.value)
            if root is not None:
                if func.attr in _MUTATORS:
                    self._record(root, "mutcall", call, held)
                    if func.attr in ("setdefault", "pop"):
                        self._record(root, "probe", call, held)
                elif func.attr in ("get", "__contains__"):
                    self._record(root, "probe", call, held)
        name = dotted_name(func)
        if name is not None and call.args:
            resolved = self.model.resolve(self.module, name)
            if resolved in _MUTATING_HELPERS:
                root = self._root_attr(call.args[0])
                if root is not None:
                    self._record(root, "mutcall", call, held)

    # -- recording ------------------------------------------------------
    def _record(self, attr: str, kind: str, node: ast.AST, held: list) -> None:
        self.scan.accesses.append(
            Access(
                attr=attr,
                kind=kind,
                line=getattr(node, "lineno", self.fn.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                locks=frozenset(entry[0] for entry in held),
                scopes=frozenset(entry[1] for entry in held),
            )
        )

    def _record_global(self, name: str, kind: str, node: ast.AST, held: list) -> None:
        self.scan.global_writes.append(
            Access(
                attr=name,
                kind=kind,
                line=node.lineno,
                col=node.col_offset + 1,
                locks=frozenset(entry[0] for entry in held),
                scopes=frozenset(entry[1] for entry in held),
            )
        )


# ----------------------------------------------------------------------
# Project-level analysis
# ----------------------------------------------------------------------


def _class_contract(module: ModuleInfo, cls: ClassInfo, lines: list[str]) -> str | None:
    line = cls.node.lineno
    if 1 <= line <= len(lines):
        match = _CONTRACT_RE.search(lines[line - 1])
        if match:
            return match.group(1)
    return None


def _collect_locks(
    model: ProjectModel, module: ModuleInfo
) -> tuple[dict[str, dict[str, bool]], dict[str, bool]]:
    """Lock attributes per class and lock-typed module globals."""
    per_class: dict[str, dict[str, bool]] = {}
    for cls in module.classes.values():
        locks: dict[str, bool] = {}
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target, value = node.targets[0], node.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(value, ast.Call)
                ):
                    continue
                name = dotted_name(value.func)
                if name is None:
                    continue
                resolved = model.resolve(module, name)
                if resolved in _LOCK_CTORS:
                    locks[target.attr] = _LOCK_CTORS[resolved]
        per_class[cls.qualname] = locks
    module_locks: dict[str, bool] = {}
    for node in module.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target, value = node.targets[0], node.value
        if not (isinstance(target, ast.Name) and isinstance(value, ast.Call)):
            continue
        name = dotted_name(value.func)
        if name is None:
            continue
        resolved = model.resolve(module, name)
        if resolved in _LOCK_CTORS:
            module_locks[target.id] = _LOCK_CTORS[resolved]
    return per_class, module_locks


def _rng_attrs(model: ProjectModel, module: ModuleInfo, cls: ClassInfo) -> set[str]:
    attrs: set[str] = set()
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target, value = node.targets[0], node.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Call)
            ):
                continue
            name = dotted_name(value.func)
            if name is not None and model.resolve(module, name) in _RNG_CTORS:
                attrs.add(target.attr)
    return attrs


def _container_attrs(
    model: ProjectModel,
    module: ModuleInfo,
    cls: ClassInfo,
    scans: dict[str, FunctionScan],
) -> set[str]:
    """Attributes that hold a mutable container."""
    attrs: set[str] = set()
    for method in cls.methods.values():
        scan = scans.get(method.qualname)
        if scan is not None:
            for access in scan.accesses:
                if access.kind in ("store", "mutcall", "del"):
                    attrs.add(access.attr)
        for node in ast.walk(method.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target, value = node.targets[0], node.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                                  ast.DictComp, ast.SetComp)):
                attrs.add(target.attr)
            elif isinstance(value, ast.Call):
                name = dotted_name(value.func)
                if name is not None and model.resolve(module, name) in _CONTAINER_CTORS:
                    attrs.add(target.attr)
    return attrs


def _match_groups(
    model: ProjectModel, graph: CallGraph, config: ConcurrencyConfig
) -> tuple[dict[str, set[str]], dict[str, dict[str, list[str]]], set[str]]:
    """(function → groups, group → reachable chains, self-parallel groups)."""
    group_chains: dict[str, dict[str, list[str]]] = {}
    for group in config.groups:
        entries = [
            qualname
            for qualname, fn in model.functions.items()
            if fn.name not in _CONSTRUCTORS
            and any(fnmatchcase(qualname, pattern) for pattern in group.patterns)
        ]
        group_chains[group.name] = graph.reachable_from(sorted(entries))
    fn_groups: dict[str, set[str]] = {}
    for group_name, chains in group_chains.items():
        for qualname in chains:
            fn_groups.setdefault(qualname, set()).add(group_name)
    parallel = {group.name for group in config.groups if group.parallel}
    return fn_groups, group_chains, parallel


def _chain_for(
    group_chains: dict[str, dict[str, list[str]]], groups: set[str], qualname: str
) -> str:
    """Short provenance string: which groups reach this function, with one
    sample chain."""
    parts = []
    for name in sorted(groups):
        chain = group_chains[name].get(qualname)
        if chain:
            parts.append(f"{name}: {' -> '.join(chain)}")
    return "; ".join(parts)


@dataclass
class _ClassReport:
    """Scanned state of one class, ready for rule evaluation."""

    module: ModuleInfo
    cls: ClassInfo
    contract: str | None
    locks: dict[str, bool]
    rng: set[str]
    containers: set[str]
    #: attr → list of (method qualname, Access), constructors excluded.
    accesses: dict[str, list[tuple[str, Access]]]
    hazardous: set[str] = field(default_factory=set)


def check_concurrency(
    model: ProjectModel,
    graph: CallGraph,
    config: ConcurrencyConfig = DEFAULT_CONFIG,
) -> list[Violation]:
    """Run the SKL201–SKL205 checks over the project."""
    fn_groups, group_chains, parallel = _match_groups(model, graph, config)
    violations: list[Violation] = []
    scans: dict[str, FunctionScan] = {}
    class_lock_tables: dict[str, dict[str, bool]] = {}
    module_lock_tables: dict[str, dict[str, bool]] = {}
    lock_kinds: dict[str, bool] = {}  # lock id → is_rlock

    for module in model.modules.values():
        lines = module.source.splitlines()
        per_class, module_locks = _collect_locks(model, module)
        class_lock_tables.update(per_class)
        module_lock_tables[module.name] = module_locks
        for name, is_rlock in module_locks.items():
            lock_kinds[f"{module.name}.{name}"] = is_rlock
        for cls_qualname, locks in per_class.items():
            for attr, is_rlock in locks.items():
                lock_kinds[f"{cls_qualname}.{attr}"] = is_rlock
        for fn in list(module.functions.values()) + [
            method
            for cls in module.classes.values()
            for method in cls.methods.values()
        ]:
            locks = per_class.get(fn.cls.qualname, {}) if fn.cls else {}
            scanner = _Scanner(model, module, fn, locks, module_locks, lines)
            scans[fn.qualname] = scanner.run()

    # ------------------------------------------------------------------
    # Per-class hazard computation and SKL201/202/203/205
    # ------------------------------------------------------------------
    for module in model.modules.values():
        lines = module.source.splitlines()
        for cls in module.classes.values():
            report = _build_class_report(
                model, module, cls, lines, class_lock_tables, scans
            )
            _compute_hazards(report, fn_groups, parallel)
            violations += _check_class(
                report, fn_groups, group_chains, parallel, scans
            )
        violations += _check_module_globals(
            model, module, fn_groups, group_chains, parallel, scans
        )

    violations += _check_lock_order(model, graph, scans, lock_kinds)
    return violations


def _build_class_report(
    model: ProjectModel,
    module: ModuleInfo,
    cls: ClassInfo,
    lines: list[str],
    class_lock_tables: dict[str, dict[str, bool]],
    scans: dict[str, FunctionScan],
) -> _ClassReport:
    accesses: dict[str, list[tuple[str, Access]]] = {}
    for method in cls.methods.values():
        if method.name in _CONSTRUCTORS:
            continue
        scan = scans.get(method.qualname)
        if scan is None:
            continue
        for access in scan.accesses:
            accesses.setdefault(access.attr, []).append((method.qualname, access))
    return _ClassReport(
        module=module,
        cls=cls,
        contract=_class_contract(module, cls, lines),
        locks=class_lock_tables.get(cls.qualname, {}),
        rng=_rng_attrs(model, module, cls),
        containers=_container_attrs(model, module, cls, scans),
        accesses=accesses,
    )


def _compute_hazards(
    report: _ClassReport, fn_groups: dict[str, set[str]], parallel: set[str]
) -> None:
    for attr, sites in report.accesses.items():
        if attr in report.locks:
            continue  # the lock itself is not shared data
        groups: set[str] = set()
        write_groups: set[str] = set()
        for qualname, access in sites:
            site_groups = fn_groups.get(qualname, set())
            groups |= site_groups
            if access.is_write:
                write_groups |= site_groups
        if not write_groups:
            continue
        if len(groups) >= 2 or (groups & parallel):
            report.hazardous.add(attr)


def _check_class(
    report: _ClassReport,
    fn_groups: dict[str, set[str]],
    group_chains: dict[str, dict[str, list[str]]],
    parallel: set[str],
    scans: dict[str, FunctionScan],
) -> list[Violation]:
    violations: list[Violation] = []
    contract = report.contract
    cls_name = report.cls.qualname
    path = report.module.path

    enforce_guards = report.hazardous and contract in (None, "thread-safe")
    if enforce_guards:
        for attr in sorted(report.hazardous):
            sites = report.accesses[attr]
            # SKL202(b): probe + write pairs that never share a lock scope.
            flagged_202: set[tuple[str, int, int]] = set()
            by_fn: dict[str, list[Access]] = {}
            for qualname, access in sites:
                by_fn.setdefault(qualname, []).append(access)
            for qualname, fn_accesses in by_fn.items():
                groups = fn_groups.get(qualname, set())
                if not groups:
                    continue
                probes = [a for a in fn_accesses if a.kind == "probe"]
                writes = [a for a in fn_accesses if a.is_write]
                for write in writes:
                    paired = [p for p in probes if p.line <= write.line]
                    if not paired:
                        continue
                    if any(p.scopes & write.scopes for p in paired):
                        continue
                    key = (qualname, write.line, write.col)
                    if key in flagged_202:
                        continue
                    flagged_202.add(key)
                    violations.append(
                        Violation(
                            rule="SKL202",
                            path=path,
                            line=write.line,
                            col=write.col,
                            message=(
                                f"non-atomic check-then-act on {cls_name}.{attr}: "
                                f"probe and write in {qualname} never share a "
                                "lock scope (reachable from "
                                f"{_chain_for(group_chains, groups, qualname)})"
                            ),
                        )
                    )
                # SKL202(a): unguarded read-modify-write.
                for write in writes:
                    if write.kind != "augassign" or write.locks:
                        continue
                    key = (qualname, write.line, write.col)
                    if key in flagged_202:
                        continue
                    flagged_202.add(key)
                    violations.append(
                        Violation(
                            rule="SKL202",
                            path=path,
                            line=write.line,
                            col=write.col,
                            message=(
                                f"unguarded read-modify-write of {cls_name}.{attr} "
                                f"in {qualname} (reachable from "
                                f"{_chain_for(group_chains, groups, qualname)})"
                            ),
                        )
                    )
                # SKL201: remaining unguarded writes.
                for write in writes:
                    if write.locks:
                        continue
                    key = (qualname, write.line, write.col)
                    if key in flagged_202:
                        continue
                    violations.append(
                        Violation(
                            rule="SKL201",
                            path=path,
                            line=write.line,
                            col=write.col,
                            message=(
                                f"unguarded write to shared state {cls_name}.{attr} "
                                f"in {qualname} (reachable from "
                                f"{_chain_for(group_chains, groups, qualname)}); "
                                "guard it with a lock or declare the class "
                                "contract (# sketchlint: thread-safe | "
                                "single-writer | thread-confined)"
                            ),
                        )
                    )

    # SKL203: escaping container internals from a thread-safe class.
    if report.hazardous and contract in (None, "thread-safe"):
        shared_containers = report.containers & report.hazardous
        for method in report.cls.methods.values():
            if method.name in _CONSTRUCTORS:
                continue
            for node in ast.walk(method.node):
                if not (isinstance(node, ast.Return) and node.value is not None):
                    continue
                value = node.value
                if not (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                ):
                    continue
                if value.attr in shared_containers:
                    violations.append(
                        Violation(
                            rule="SKL203",
                            path=path,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            message=(
                                f"{method.qualname} returns the mutable internal "
                                f"{cls_name}.{value.attr} by reference; return a "
                                "copy or an immutable view so callers cannot "
                                "bypass the lock"
                            ),
                        )
                    )

    # SKL205: shared unguarded RNG state (active unless thread-confined).
    if contract != "thread-confined":
        for attr in sorted(report.rng):
            sites = report.accesses.get(attr, [])
            consumer_groups: set[str] = set()
            unguarded: list[tuple[str, Access]] = []
            for qualname, access in sites:
                groups = fn_groups.get(qualname, set())
                if not groups:
                    continue
                consumer_groups |= groups
                if not access.locks:
                    unguarded.append((qualname, access))
            if not unguarded:
                continue
            if len(consumer_groups) >= 2 or (consumer_groups & parallel):
                qualname, access = unguarded[0]
                violations.append(
                    Violation(
                        rule="SKL205",
                        path=path,
                        line=access.line,
                        col=access.col,
                        message=(
                            f"random generator {cls_name}.{attr} is consumed from "
                            "multiple concurrent entrypoints without a guard "
                            f"({_chain_for(group_chains, consumer_groups, qualname)}); "
                            "concurrent draws make the config-seeded stream "
                            "nondeterministic"
                        ),
                    )
                )
    return violations


def _check_module_globals(
    model: ProjectModel,
    module: ModuleInfo,
    fn_groups: dict[str, set[str]],
    group_chains: dict[str, dict[str, list[str]]],
    parallel: set[str],
    scans: dict[str, FunctionScan],
) -> list[Violation]:
    """SKL201 for unguarded ``global`` writes from concurrent functions."""
    violations: list[Violation] = []
    for fn in module.functions.values():
        scan = scans.get(fn.qualname)
        if scan is None:
            continue
        groups = fn_groups.get(fn.qualname, set())
        if not groups:
            continue
        if not (len(groups) >= 2 or (groups & parallel)):
            continue
        for access in scan.global_writes:
            if access.locks:
                continue
            violations.append(
                Violation(
                    rule="SKL201",
                    path=module.path,
                    line=access.line,
                    col=access.col,
                    message=(
                        f"unguarded write to module global "
                        f"{module.name}.{access.attr} in {fn.qualname} "
                        f"(reachable from "
                        f"{_chain_for(group_chains, groups, fn.qualname)}); "
                        "guard it with a module-level lock"
                    ),
                )
            )
    return violations


# ----------------------------------------------------------------------
# SKL204: lock-order cycles
# ----------------------------------------------------------------------


def _check_lock_order(
    model: ProjectModel,
    graph: CallGraph,
    scans: dict[str, FunctionScan],
    lock_kinds: dict[str, bool],
) -> list[Violation]:
    # Locks each function acquires itself, then closed over the call graph.
    direct: dict[str, set[str]] = {
        qualname: {acquire.lock for acquire in scan.acquires}
        for qualname, scan in scans.items()
    }
    eventually = {qualname: set(locks) for qualname, locks in direct.items()}
    changed = True
    while changed:
        changed = False
        for qualname, sites in graph.edges.items():
            bucket = eventually.setdefault(qualname, set())
            for site in sites:
                extra = eventually.get(site.callee)
                if extra and not extra <= bucket:
                    bucket |= extra
                    changed = True

    # Edge (A → B): B acquired while A is held — lexically nested withs,
    # or a call made under A into a function that eventually acquires B.
    edges: dict[tuple[str, str], tuple[str, int, int, str]] = {}

    def add_edge(a: str, b: str, path: str, line: int, col: int, why: str) -> None:
        edges.setdefault((a, b), (path, line, col, why))

    for qualname, scan in scans.items():
        fn = model.functions.get(qualname)
        if fn is None:
            continue
        path = model.modules[fn.module].path
        for acquire in scan.acquires:
            for held in acquire.held:
                add_edge(
                    held, acquire.lock, path, acquire.line, 1,
                    f"{qualname} acquires {acquire.lock} while holding {held}",
                )
        for site in graph.edges.get(qualname, []):
            held_at_site = set(scan.annotation_locks)
            for acquire in scan.acquires:
                if acquire.line < site.line <= acquire.end_line:
                    held_at_site.add(acquire.lock)
            if not held_at_site:
                continue
            for downstream in eventually.get(site.callee, set()):
                for held in held_at_site:
                    add_edge(
                        held, downstream, path, site.line, site.col,
                        f"{qualname} calls {site.callee} (which may acquire "
                        f"{downstream}) while holding {held}",
                    )

    # Transitive closure over lock ids, then flag cycles.
    succ: dict[str, set[str]] = {}
    for (a, b) in edges:
        succ.setdefault(a, set()).add(b)
    closure: dict[str, set[str]] = {}

    def reach(start: str) -> set[str]:
        if start in closure:
            return closure[start]
        seen: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in succ.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        closure[start] = seen
        return seen

    violations: list[Violation] = []
    for (a, b), (path, line, col, why) in sorted(edges.items()):
        if a == b:
            if lock_kinds.get(a, False):
                continue  # re-acquiring an RLock is fine
            violations.append(
                Violation(
                    rule="SKL204",
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"non-reentrant lock {a} may be re-acquired while "
                        f"already held: {why}"
                    ),
                )
            )
        elif a in reach(b):
            violations.append(
                Violation(
                    rule="SKL204",
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"inconsistent lock-acquisition order: {why}, but "
                        f"{b} can also be held while acquiring {a}; pick one "
                        "global order"
                    ),
                )
            )
    return violations
