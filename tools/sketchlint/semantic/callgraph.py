"""Call graph construction and reachability over the project model.

Calls are resolved *conservatively under-approximately*: an edge is added
only when the callee can actually be identified — a module-level function
reached through imports, a class (edge to its ``__init__``), or a method
on a receiver whose type is known from annotations, constructor
assignments, or ``self``.  Receivers of unknown type contribute no edge
rather than a guessed one, so reachability-based rules (SKL103/SKL104)
do not drown in name-collision false positives (``dict.update`` vs
``SketchMatrix.update``).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from tools.sketchlint.semantic.model import (
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    dotted_name,
)


@dataclass(frozen=True)
class CallSite:
    """One resolved call: caller → callee at a source location."""

    caller: str
    callee: str
    line: int
    col: int


class Resolver:
    """Resolves expressions inside one function body.

    Tracks a local type environment seeded from parameter annotations and
    grown by constructor / typed-call assignments, in source order.
    """

    def __init__(self, model: ProjectModel, module: ModuleInfo, fn: FunctionInfo):
        self.model = model
        self.module = module
        self.fn = fn
        self.types: dict[str, frozenset[str]] = model.parameter_types(module, fn)

    # -- type inference ------------------------------------------------
    def expr_types(self, expr: ast.expr) -> frozenset[str]:
        """Candidate class qualnames for an expression's value."""
        model = self.model
        if isinstance(expr, ast.Name):
            return self.types.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            return model.attribute_types(self.expr_types(expr.value), expr.attr)
        if isinstance(expr, ast.Call):
            callees = self.resolve_call(expr)
            out: frozenset[str] = frozenset()
            for callee in callees:
                if callee in model.classes:
                    out |= frozenset({callee})
                else:
                    fn = model.functions.get(callee)
                    if fn is not None:
                        out |= fn.return_types
            return out
        if isinstance(expr, ast.IfExp):
            return self.expr_types(expr.body) | self.expr_types(expr.orelse)
        return frozenset()

    def bind(self, target: ast.expr, value: ast.expr) -> None:
        """Update the local type environment for ``target = value``."""
        if isinstance(target, ast.Name):
            types = self.expr_types(value)
            if types:
                self.types[target.id] = types
            else:
                self.types.pop(target.id, None)

    # -- call resolution -----------------------------------------------
    def resolve_call(self, call: ast.Call) -> list[str]:
        """Qualified names this call may invoke (classes stay class-named)."""
        func = call.func
        name = dotted_name(func)
        if name is not None:
            head = name.partition(".")[0]
            # A dotted chain rooted at a *typed local* is a method access,
            # not a module path (``matrix.update`` vs ``np.zeros``).
            if head not in self.types:
                resolved = self.model.resolve(self.module, name)
                if (
                    resolved in self.model.functions
                    or resolved in self.model.classes
                ):
                    return [resolved]
                if "." in resolved and head in self.module.imports:
                    return [resolved]  # external, e.g. numpy.random.default_rng
                if "." not in name:
                    return [resolved]  # builtin or unknown bare name
        if isinstance(func, ast.Attribute):
            base_types = self.expr_types(func.value)
            methods = self.model.lookup_method(base_types, func.attr)
            if methods:
                return [m.qualname for m in methods]
            if name is not None:
                resolved = self.model.resolve(self.module, name)
                if "." in resolved:
                    return [resolved]
        return []

    def callee_functions(self, call: ast.Call) -> list[FunctionInfo]:
        """Project-internal functions this call invokes (classes →
        ``__init__`` when defined)."""
        out = []
        for qualname in self.resolve_call(call):
            fn = self.model.functions.get(qualname)
            if fn is not None:
                out.append(fn)
                continue
            cls_info = self.model.classes.get(qualname)
            if cls_info is not None and "__init__" in cls_info.methods:
                out.append(cls_info.methods["__init__"])
        return out


@dataclass
class CallGraph:
    """Edges between project functions, with reachability queries."""

    model: ProjectModel
    edges: dict[str, list[CallSite]] = field(default_factory=dict)

    @classmethod
    def build(cls, model: ProjectModel) -> "CallGraph":
        graph = cls(model)
        for fn in model.functions.values():
            module = model.modules[fn.module]
            resolver = Resolver(model, module, fn)
            sites: list[CallSite] = []
            graph._walk(fn, fn.node.body, resolver, sites)
            graph.edges[fn.qualname] = sites
        return graph

    def _walk(
        self,
        fn: FunctionInfo,
        body: list[ast.stmt],
        resolver: Resolver,
        sites: list[CallSite],
    ) -> None:
        """Visit statements in source order so assignments type later calls."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are indexed separately
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    for callee in resolver.callee_functions(node):
                        sites.append(
                            CallSite(
                                caller=fn.qualname,
                                callee=callee.qualname,
                                line=node.lineno,
                                col=node.col_offset + 1,
                            )
                        )
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                resolver.bind(stmt.targets[0], stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                resolver.bind(stmt.target, stmt.value)

    def callees(self, qualname: str) -> list[CallSite]:
        return self.edges.get(qualname, [])

    def reachable_from(
        self, entry_points: list[str]
    ) -> dict[str, list[str]]:
        """BFS closure: reachable function → a sample call chain from an
        entry point (entry first), for diagnostics."""
        chains: dict[str, list[str]] = {}
        queue: deque[str] = deque()
        for entry in entry_points:
            if entry in self.edges and entry not in chains:
                chains[entry] = [entry]
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for site in self.edges.get(current, []):
                if site.callee not in chains:
                    chains[site.callee] = chains[current] + [site.callee]
                    queue.append(site.callee)
        return chains
