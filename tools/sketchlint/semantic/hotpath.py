"""Hot-path performance analysis: the SKL3xx rule pack.

The ingest pipeline's throughput lives or dies in a handful of loops:
EnumTree's pattern emission, the Prüfer encode stage, and the virtual
stream apply stage.  Profiling finds regressions *after* they ship; this
phase finds the structural hazards — one-shot iterables consumed twice,
per-element Python loops over columnar data, allocations and invariant
recomputation inside hot loops — *before* they ship, the same way the
SKL1xx/SKL2xx packs guard determinism and thread safety.

The analysis reuses :class:`ProjectModel` and the under-approximate
:class:`CallGraph`:

1. **Hot set.**  A config (:data:`DEFAULT_CONFIG`) declares the hot
   entrypoints — the ingest surface (``SketchTree.update*`` /
   ``ingest*`` / ``delete_tree``, ``StreamProcessor.run`` / ``resume``,
   ``collect_forest_patterns``, the serving shard drain loop) and the
   read path (``estimate_*``, ``ShardedService.estimate*``).  Call-graph
   reachability from those entrypoints is the *hot set*; ``--explain-hot``
   prints it with one sample call chain per function.

2. **Loop nesting.**  Every hot function's body is walked once, tracking
   loop-nesting depth (``for`` / ``while`` / comprehension generators all
   count; nested ``def`` / ``lambda`` bodies do not — they execute
   elsewhere).  Rules that only matter per element fire at depth ≥ 1.

3. **Rules.**

   * **SKL301** — a single-use iterable (generator expression, project
     generator function, ``map`` / ``filter`` / ``zip`` / ``iter`` /
     ``reversed``, or an ``Iterable``-typed parameter) consumed more than
     once or re-consumed inside a loop.  The second consumer silently
     sees an exhausted stream — the historical ``estimate_sum`` bug
     class.  Runs project-wide: exhausted-iterator bugs are correctness
     bugs everywhere, not just on hot paths.
   * **SKL302** — a per-element Python loop over columnar data in a hot
     function: iterating ``EncodedBatch`` columns or ``.tolist()``
     results element-wise, or calling ``np.asarray`` per element inside
     a loop, where one vectorised call does the same work.
   * **SKL303** — allocation or loop-invariant recomputation inside a
     hot loop: ``np.concatenate`` / ``np.append`` / ``np.hstack`` /
     ``np.vstack`` in a loop (quadratic growth), a container or array
     constructed from loop-invariant arguments every iteration, or the
     same loop-invariant attribute chain re-read twice per iteration.
   * **SKL304** — implicit ndarray copy / dtype churn in a hot function:
     ``.astype`` per element inside a loop, an ``astype`` chained with a
     fancy-index (two full copies where one suffices), or an
     ``int64 → float64 → int64`` round trip in one expression.
   * **SKL305** — per-element observability in the innermost loop of a
     hot function: ``.observe()`` / ``.inc()`` per element (use
     ``observe_batch`` or a local accumulator flushed once per batch),
     instrument lookups (``obs.histogram(...)``) per element, logging
     per element, or a ``try`` re-entered per element.

Like the rest of the semantic phase this is under-approximate: calls the
resolver cannot type add no hot edges, and expressions it cannot prove
invariant are assumed variant.  False positives are silenced with the
standard ``# sketchlint: disable=SKL30x`` comment — each suppression is
a reviewed claim that the allocation or loop is intentional.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from tools.sketchlint.semantic.callgraph import CallGraph, Resolver
from tools.sketchlint.semantic.model import (
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    dotted_name,
)
from tools.sketchlint.violations import Violation

# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HotPathConfig:
    """The declared hot surface of the project.

    ``entrypoints`` are qualname globs; everything call-graph-reachable
    from a match is hot.  ``columnar_attrs`` maps class qualnames to the
    attributes that hold ndarray columns — iterating one element-wise in
    a hot function is SKL302.
    """

    entrypoints: tuple[str, ...]
    columnar_attrs: tuple[tuple[str, tuple[str, ...]], ...]


#: The ingest and read surfaces of the pipeline (see docs/performance.md).
DEFAULT_CONFIG = HotPathConfig(
    entrypoints=(
        "repro.core.sketchtree.SketchTree.update",
        "repro.core.sketchtree.SketchTree.update_batch",
        "repro.core.sketchtree.SketchTree.update_from_patterns",
        "repro.core.sketchtree.SketchTree.delete_tree",
        "repro.core.sketchtree.SketchTree.ingest*",
        "repro.core.sketchtree.SketchTree.estimate_*",
        "repro.core.window.WindowedSketchTree.update*",
        "repro.core.window.WindowedSketchTree.ingest",
        "repro.core.window.WindowedSketchTree.estimate_*",
        "repro.stream.engine.StreamProcessor.run",
        "repro.stream.engine.StreamProcessor.resume",
        "repro.enumtree.enumerate.collect_forest_patterns",
        "repro.enumtree.enumerate.iter_pattern_multiset",
        "repro.serve.shards.IngestShard._drain_loop",
        "repro.serve.service.ShardedService.estimate*",
    ),
    columnar_attrs=(
        ("repro.core.batch.EncodedBatch", ("values", "counts", "residues")),
        ("repro.sketch.ams.SketchMatrix", ("counters",)),
    ),
)

#: Builtins whose result is a one-shot iterator.
_ONESHOT_BUILTINS = frozenset({"iter", "map", "filter", "zip", "reversed", "enumerate"})

#: Annotation heads that mark a parameter as possibly one-shot.
#: ``Generator`` is deliberately absent: in this codebase a bare
#: ``Generator`` annotation is ``np.random.Generator`` (an RNG, freely
#: re-usable), not ``typing.Generator``.
_ONESHOT_ANNOTATIONS = frozenset({"Iterable", "Iterator"})

#: Annotation heads that guarantee a parameter is re-iterable.
_REUSABLE_ANNOTATIONS = frozenset(
    {
        "Sequence", "list", "List", "tuple", "Tuple", "set", "Set",
        "frozenset", "FrozenSet", "dict", "Dict", "Mapping", "Collection",
        "str", "bytes", "Sized", "Counter", "OrderedDict", "defaultdict",
        "deque", "ndarray", "Generator",
    }
)

#: numpy calls that re-copy a growing array — O(n²) when run per element.
_GROWING_CONCAT = frozenset(
    {"numpy.concatenate", "numpy.append", "numpy.hstack", "numpy.vstack",
     "numpy.column_stack", "numpy.r_", "numpy.c_"}
)

#: Container / array constructors whose loop-invariant construction can
#: be hoisted out of a hot loop.
_ALLOC_CTORS = frozenset(
    {
        "dict", "list", "set", "frozenset", "bytearray",
        "collections.OrderedDict", "collections.defaultdict",
        "collections.deque", "collections.Counter",
        "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
        "numpy.array", "numpy.arange",
    }
)

#: Scalar-conversion calls that have a single vectorised equivalent.
_SCALAR_ARRAY_CALLS = frozenset({"numpy.asarray", "numpy.asanyarray", "numpy.array"})

#: Per-element instrument mutation (the batched forms are the fix).
_OBS_MUTATORS = frozenset({"observe", "inc"})

#: Registry factories: calling one per element is a dict probe + lock per
#: element (bind the instrument to a local outside the loop).
_OBS_FACTORIES = frozenset({"histogram", "counter", "gauge", "span"})

#: Logging methods (on a logger-named receiver or the logging module).
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
)

_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def _chain_text(chain: list[str]) -> str:
    return " -> ".join(chain)


# ----------------------------------------------------------------------
# Hot-set derivation
# ----------------------------------------------------------------------
def hot_functions(
    model: ProjectModel, graph: CallGraph, config: HotPathConfig = DEFAULT_CONFIG
) -> dict[str, list[str]]:
    """Hot function qualname → sample call chain from an entrypoint."""
    entries = sorted(
        qualname
        for qualname, fn in model.functions.items()
        if fn.name not in _CONSTRUCTORS
        and any(fnmatchcase(qualname, pattern) for pattern in config.entrypoints)
    )
    return graph.reachable_from(entries)


def max_loop_depth(fn: FunctionInfo) -> int:
    """Deepest loop nesting in a function body (lambdas/nested defs skipped)."""
    scan = _HotScan(fn)
    scan.run()
    return scan.max_depth


def explain_hot(
    model: ProjectModel, graph: CallGraph, config: HotPathConfig = DEFAULT_CONFIG
) -> str:
    """Human-readable hot-set report for ``--explain-hot``."""
    chains = hot_functions(model, graph, config)
    lines = [f"hot set: {len(chains)} functions reachable from the configured entrypoints"]
    for qualname in sorted(chains):
        fn = model.functions.get(qualname)
        depth = max_loop_depth(fn) if fn is not None else 0
        lines.append(f"  {qualname}  [loop depth {depth}]")
        lines.append(f"    via: {_chain_text(chains[qualname])}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The per-function scan: loops, calls, tries, name events
# ----------------------------------------------------------------------


@dataclass
class _LoopInfo:
    """One loop (or comprehension generator) and what varies inside it."""

    node: ast.AST
    depth: int
    parent: int | None            # index into _HotScan.loops
    assigned: set[str] = field(default_factory=set)
    attr_stores: set[str] = field(default_factory=set)  # dotted prefixes
    self_call: bool = False       # a self.method() call occurs inside
    #: loop-invariant attribute chain text → first occurrence node
    chains: dict[str, ast.AST] = field(default_factory=dict)
    chain_counts: dict[str, int] = field(default_factory=dict)


@dataclass
class _NameEvent:
    """One load or store of a local name, in statement order."""

    name: str
    kind: str                     # "load" | "store"
    stmt: int                     # statement serial (loads collapse per stmt)
    depth: int
    node: ast.AST
    exempt: bool = False          # probing load: next(x), isinstance, `is`
    iteration: bool = False       # load is a for/comprehension source
    terminal: bool = False        # load inside a return/raise statement
    value: ast.expr | None = None  # store: the bound expression


class _HotScan:
    """One pass over a function body collecting everything SKL30x needs."""

    def __init__(self, fn: FunctionInfo):
        self.fn = fn
        self.loops: list[_LoopInfo] = []
        self.calls: list[tuple[ast.Call, int, int | None]] = []
        self.tries: list[tuple[ast.Try, int, int | None]] = []
        self._terminal = False
        #: (iterating node, iterated expression, loop depth of the header)
        self.iterations: list[tuple[ast.AST, ast.expr, int]] = []
        self.events: list[_NameEvent] = []
        self.max_depth = 0
        self._stmt = 0
        self._exempt_loads: set[int] = set()
        self._iteration_loads: set[int] = set()

    # -- driver --------------------------------------------------------
    def run(self) -> "_HotScan":
        self._mark_probing_loads(self.fn.node)
        self._visit_body(self.fn.node.body, depth=0, loop=None)
        return self

    def _mark_probing_loads(self, root: ast.AST) -> None:
        """Loads that only *probe* an iterable: ``next(x)``,
        ``isinstance(x, ...)``, ``x is None``, ``if x:``, and receiver
        positions (``x.method()`` / ``x[i]`` do not exhaust ``x``)."""
        for node in ast.walk(root):
            if isinstance(node, (ast.Attribute, ast.Subscript)):
                if isinstance(node.value, ast.Name):
                    self._exempt_loads.add(id(node.value))
            if isinstance(node, ast.Call):
                name = node.func.id if isinstance(node.func, ast.Name) else None
                if name in ("next", "isinstance", "id", "type", "repr") and node.args:
                    if isinstance(node.args[0], ast.Name):
                        self._exempt_loads.add(id(node.args[0]))
            elif isinstance(node, ast.Compare):
                if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
                    for operand in [node.left, *node.comparators]:
                        if isinstance(operand, ast.Name):
                            self._exempt_loads.add(id(operand))
            elif isinstance(node, (ast.If, ast.While)):
                if isinstance(node.test, ast.Name):
                    self._exempt_loads.add(id(node.test))

    # -- statement walk ------------------------------------------------
    def _visit_body(
        self, body: list[ast.stmt], depth: int, loop: int | None
    ) -> None:
        for stmt in body:
            self._stmt += 1
            self._visit_stmt(stmt, depth, loop)

    def _visit_stmt(self, stmt: ast.stmt, depth: int, loop: int | None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are scanned as their own functions
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter, depth, loop)
            self.iterations.append((stmt, stmt.iter, depth))
            self._mark_iteration(stmt.iter)
            index = self._open_loop(stmt, depth + 1, loop)
            self._collect_stores(stmt.target, index)
            self._store_targets(stmt.target, depth + 1, value=None)
            self._visit_body(stmt.body, depth + 1, index)
            self._close_loop(index, loop)
            self._visit_body(stmt.orelse, depth, loop)
            return
        if isinstance(stmt, ast.While):
            self._visit_expr(stmt.test, depth, loop)
            index = self._open_loop(stmt, depth + 1, loop)
            self._visit_body(stmt.body, depth + 1, index)
            self._close_loop(index, loop)
            self._visit_body(stmt.orelse, depth, loop)
            return
        if isinstance(stmt, ast.Try):
            self.tries.append((stmt, depth, loop))
            self._visit_body(stmt.body, depth, loop)
            for handler in stmt.handlers:
                self._visit_body(handler.body, depth, loop)
            self._visit_body(stmt.orelse, depth, loop)
            self._visit_body(stmt.finalbody, depth, loop)
            return
        if isinstance(stmt, (ast.If,)):
            self._visit_expr(stmt.test, depth, loop)
            self._visit_body(stmt.body, depth, loop)
            self._visit_body(stmt.orelse, depth, loop)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._visit_expr(item.context_expr, depth, loop)
                if item.optional_vars is not None:
                    self._store_targets(item.optional_vars, depth, value=None)
                    if loop is not None:
                        self._collect_stores(item.optional_vars, loop)
            self._visit_body(stmt.body, depth, loop)
            return
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value, depth, loop)
            for target in stmt.targets:
                self._visit_assign_target(target, depth, loop)
                self._store_targets(
                    target,
                    depth,
                    value=stmt.value if len(stmt.targets) == 1 else None,
                )
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_expr(stmt.value, depth, loop)
            self._visit_assign_target(stmt.target, depth, loop)
            self._store_targets(stmt.target, depth, value=stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value, depth, loop)
            self._visit_expr(stmt.target, depth, loop)
            self._visit_assign_target(stmt.target, depth, loop)
            self._store_targets(stmt.target, depth, value=None)
            return
        # Expression statements, returns, raises, asserts, deletes, …
        terminal = isinstance(stmt, (ast.Return, ast.Raise))
        if terminal:
            self._terminal = True
        try:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_expr(child, depth, loop)
        finally:
            if terminal:
                self._terminal = False

    def _visit_assign_target(
        self, target: ast.expr, depth: int, loop: int | None
    ) -> None:
        """Record attribute/subscript stores for invariance tracking."""
        if loop is None:
            return
        base = target
        if isinstance(base, ast.Subscript):
            self._visit_expr(base.slice, depth, loop)
            base = base.value
        chain = dotted_name(base)
        if chain is not None and "." in chain:
            for index in self._loop_and_ancestors(loop):
                self.loops[index].attr_stores.add(chain)

    def _store_targets(
        self, target: ast.expr, depth: int, value: ast.expr | None
    ) -> None:
        if isinstance(target, ast.Name):
            self.events.append(
                _NameEvent(
                    name=target.id, kind="store", stmt=self._stmt,
                    depth=depth, node=target, value=value,
                )
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(element, ast.Starred) else element
                self._store_targets(inner, depth, value=None)

    def _collect_stores(self, target: ast.expr, loop_index: int) -> None:
        """Names bound by a loop target, into the loop's assigned set."""
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                for index in self._loop_and_ancestors(loop_index):
                    self.loops[index].assigned.add(node.id)

    # -- expression walk -----------------------------------------------
    def _visit_expr(self, expr: ast.expr, depth: int, loop: int | None) -> None:
        if isinstance(expr, ast.Lambda):
            return  # executes elsewhere; not this function's loop
        if isinstance(
            expr, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            self._visit_comprehension(expr, depth, loop)
            return
        if isinstance(expr, ast.Call):
            inner_loop = self.loops[loop] if loop is not None else None
            self.calls.append((expr, depth, loop))
            if inner_loop is not None and self._is_self_call(expr):
                for index in self._loop_and_ancestors(loop):
                    self.loops[index].self_call = True
        if isinstance(expr, ast.Attribute) and loop is not None:
            chain = dotted_name(expr)
            if chain is not None and chain.count(".") >= 2:
                info = self.loops[loop]
                info.chains.setdefault(chain, expr)
                info.chain_counts[chain] = info.chain_counts.get(chain, 0) + 1
                # The chain's own sub-attributes are covered by the full
                # chain; do not descend into expr.value's Attribute spine.
                for child in ast.walk(expr):
                    if isinstance(child, ast.Call):
                        self._visit_expr(child, depth, loop)
                self._record_load_names(expr, depth)
                return
        if isinstance(expr, ast.Name) and isinstance(expr.ctx, ast.Load):
            self.events.append(
                _NameEvent(
                    name=expr.id, kind="load", stmt=self._stmt, depth=depth,
                    node=expr,
                    exempt=id(expr) in self._exempt_loads,
                    iteration=id(expr) in self._iteration_loads,
                    terminal=self._terminal,
                )
            )
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._visit_expr(child, depth, loop)
            elif isinstance(child, ast.keyword):
                self._visit_expr(child.value, depth, loop)

    def _record_load_names(self, expr: ast.AST, depth: int) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                self.events.append(
                    _NameEvent(
                        name=node.id, kind="load", stmt=self._stmt,
                        depth=depth, node=node,
                        exempt=id(node) in self._exempt_loads,
                        iteration=id(node) in self._iteration_loads,
                        terminal=self._terminal,
                    )
                )

    def _visit_comprehension(
        self,
        expr: ast.GeneratorExp | ast.ListComp | ast.SetComp | ast.DictComp,
        depth: int,
        loop: int | None,
    ) -> None:
        inner_depth = depth
        inner_loop = loop
        for generator in expr.generators:
            self._visit_expr(generator.iter, inner_depth, inner_loop)
            self.iterations.append((expr, generator.iter, inner_depth))
            self._mark_iteration(generator.iter)
            inner_depth += 1
            inner_loop = self._open_loop(expr, inner_depth, inner_loop)
            self._collect_stores(generator.target, inner_loop)
            for condition in generator.ifs:
                self._visit_expr(condition, inner_depth, inner_loop)
        if isinstance(expr, ast.DictComp):
            self._visit_expr(expr.key, inner_depth, inner_loop)
            self._visit_expr(expr.value, inner_depth, inner_loop)
        else:
            self._visit_expr(expr.elt, inner_depth, inner_loop)
        self.max_depth = max(self.max_depth, inner_depth)

    # -- helpers -------------------------------------------------------
    def _open_loop(self, node: ast.AST, depth: int, parent: int | None) -> int:
        self.loops.append(_LoopInfo(node=node, depth=depth, parent=parent))
        self.max_depth = max(self.max_depth, depth)
        return len(self.loops) - 1

    def _close_loop(self, index: int, parent: int | None) -> None:
        # Propagate assigned names upward so outer loops treat names bound
        # in inner loops as variant too.
        if parent is not None:
            self.loops[parent].assigned |= self.loops[index].assigned
            self.loops[parent].attr_stores |= self.loops[index].attr_stores

    def _loop_and_ancestors(self, index: int | None):
        while index is not None:
            yield index
            index = self.loops[index].parent

    def _mark_iteration(self, expr: ast.expr) -> None:
        if isinstance(expr, ast.Name):
            self._iteration_loads.add(id(expr))

    def _is_self_call(self, call: ast.Call) -> bool:
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        )

    def innermost(self, loop: int | None) -> _LoopInfo | None:
        return self.loops[loop] if loop is not None else None

    def has_inner_loop(self, loop_index: int) -> bool:
        return any(info.parent == loop_index for info in self.loops)


# ----------------------------------------------------------------------
# SKL301: single-use iterables consumed more than once
# ----------------------------------------------------------------------


def _is_generator_function(fn: FunctionInfo) -> bool:
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn.node:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _oneshot_value(
    resolver: Resolver, value: ast.expr | None, generator_fns: set[str]
) -> str | None:
    """Why a bound expression is a one-shot iterable, or None."""
    if value is None:
        return None
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None and "." not in name and name in _ONESHOT_BUILTINS:
            return f"a {name}() iterator"
        for qualname in resolver.resolve_call(value):
            if qualname in generator_fns:
                return f"the generator function {qualname}"
    return None


def _annotation_heads(annotation: ast.expr | None) -> set[str]:
    """Leading identifiers of an annotation (``Iterable[X] | None`` →
    ``{"Iterable", "None"}``)."""
    if annotation is None:
        return set()
    heads: set[str] = set()
    stack: list[ast.expr] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                stack.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                continue
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            stack.extend([node.left, node.right])
        elif isinstance(node, ast.Subscript):
            name = dotted_name(node.value)
            if name is not None:
                head = name.rsplit(".", 1)[-1]
                if head in ("Optional", "Union"):
                    inner = node.slice
                    stack.extend(
                        inner.elts if isinstance(inner, ast.Tuple) else [inner]
                    )
                else:
                    heads.add(head)
        else:
            name = dotted_name(node)
            if name is not None:
                heads.add(name.rsplit(".", 1)[-1])
    return heads


@dataclass
class _Binding:
    """One tracked one-shot (or suspect) binding of a local name."""

    name: str
    depth: int
    stmt: int
    reason: str
    definite: bool                # True: provably one-shot; False: suspect param


def _check_single_use(
    model: ProjectModel,
    module: ModuleInfo,
    fn: FunctionInfo,
    scan: _HotScan,
    generator_fns: set[str],
) -> list[Violation]:
    resolver = Resolver(model, module, fn)
    bindings: dict[str, _Binding] = {}
    violations: list[Violation] = []
    flagged: set[str] = set()

    # Suspect parameters: possibly one-shot from the caller's hands.
    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in ("self", "cls"):
            continue
        heads = _annotation_heads(arg.annotation)
        if heads & _REUSABLE_ANNOTATIONS:
            continue
        if heads & _ONESHOT_ANNOTATIONS or not heads:
            reason = (
                f"parameter '{arg.arg}' may be a one-shot iterable "
                f"({'annotated ' + '/'.join(sorted(heads & _ONESHOT_ANNOTATIONS)) if heads else 'unannotated'})"
            )
            bindings[arg.arg] = _Binding(
                name=arg.arg, depth=0, stmt=0, reason=reason,
                definite=bool(heads & _ONESHOT_ANNOTATIONS),
            )

    # consuming statements seen so far, per live binding
    consumed: dict[str, list[_NameEvent]] = {}

    def fire(binding: _Binding, event: _NameEvent, why: str) -> None:
        if binding.name in flagged:
            return
        flagged.add(binding.name)
        violations.append(
            Violation(
                rule="SKL301",
                path=module.path,
                line=getattr(event.node, "lineno", fn.node.lineno),
                col=getattr(event.node, "col_offset", 0) + 1,
                message=(
                    f"'{binding.name}' is {binding.reason} but {why} in "
                    f"{fn.qualname}; a second pass sees an exhausted "
                    "iterator — materialise it (list(...)) first"
                ),
            )
        )

    for event in scan.events:
        if event.kind == "store":
            # Rebinding ends the previous tracking for this name.
            consumed.pop(event.name, None)
            bindings.pop(event.name, None)
            reason = _oneshot_value(resolver, event.value, generator_fns)
            if reason is not None:
                bindings[event.name] = _Binding(
                    name=event.name, depth=event.depth, stmt=event.stmt,
                    reason=reason, definite=True,
                )
            continue
        binding = bindings.get(event.name)
        if binding is None or event.exempt:
            continue
        prior = consumed.setdefault(event.name, [])
        same_stmt = any(e.stmt == event.stmt for e in prior)
        if event.depth > binding.depth and not same_stmt:
            # Re-consumed on every iteration of an enclosing loop.
            if binding.definite or event.iteration:
                fire(binding, event, "consumed inside a loop")
                continue
        if prior and not same_stmt:
            strong = binding.definite or (
                event.iteration or any(e.iteration for e in prior)
            )
            if strong:
                fire(binding, event, "consumed more than once")
                continue
        if not event.terminal:
            # A load inside a return/raise ends its control path, so it
            # can never precede another consumption at runtime (the
            # `return self.run(trees)` early-exit pattern).
            prior.append(event)
    return violations


# ----------------------------------------------------------------------
# SKL302–SKL305: hot-loop rules
# ----------------------------------------------------------------------


def _invariant(expr: ast.expr, assigned: set[str]) -> bool:
    """Conservatively: no calls, and every name is bound outside the loop."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            return False
        if isinstance(node, ast.Name) and node.id in assigned:
            return False
    return True


def _chain_is_invariant(chain: str, info: _LoopInfo) -> bool:
    parts = chain.split(".")
    root = parts[0]
    if root in info.assigned:
        return False
    if root == "self" and info.self_call:
        # A self.method() call inside the loop may rewrite any attribute
        # (the window._rotate pattern) — assume variant.
        return False
    prefixes = {".".join(parts[: i + 1]) for i in range(1, len(parts))}
    return not (prefixes & info.attr_stores)


def _astype_round_trip(call: ast.Call) -> bool:
    """``x.astype(float64)...astype(int64)`` (or the reverse) in one chain."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
        return False
    for node in ast.walk(func.value):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
        ):
            return True
    return False


def _astype_fancy_chain(call: ast.Call) -> bool:
    """astype applied to a subscript result (or immediately subscripted)."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
        return False
    return isinstance(func.value, ast.Subscript)


def _check_hot_function(
    model: ProjectModel,
    module: ModuleInfo,
    fn: FunctionInfo,
    scan: _HotScan,
    chain: list[str],
    config: HotPathConfig,
) -> list[Violation]:
    resolver = Resolver(model, module, fn)
    columnar = dict(config.columnar_attrs)
    violations: list[Violation] = []
    provenance = f" (hot via {_chain_text(chain)})"

    def add(rule: str, node: ast.AST, message: str) -> None:
        violations.append(
            Violation(
                rule=rule,
                path=module.path,
                line=getattr(node, "lineno", fn.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                message=message + provenance,
            )
        )

    # ---- SKL302: element-wise loops over columnar data ----------------
    for iterating, source, depth in scan.iterations:
        expr = source
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "tolist"
        ):
            add(
                "SKL302", iterating,
                "element-wise loop over an ndarray via .tolist(); use the "
                "vectorised operation (or operate on the array directly)",
            )
            continue
        if isinstance(expr, ast.Attribute):
            base_types = resolver.expr_types(expr.value)
            for cls_name in base_types:
                columns = columnar.get(cls_name)
                if columns and expr.attr in columns:
                    add(
                        "SKL302", iterating,
                        f"element-wise loop over {cls_name.rsplit('.', 1)[-1]}"
                        f".{expr.attr} (an ndarray column); use a vectorised "
                        "helper (np.unique / bincount / matmul) instead",
                    )
                    break

    # ---- per-call rules ----------------------------------------------
    for call, depth, loop_index in scan.calls:
        info = scan.innermost(loop_index)
        resolved = resolver.resolve_call(call)
        qualnames = set(resolved)
        in_loop = info is not None

        innermost_loop = (
            in_loop and loop_index is not None
            and not scan.has_inner_loop(loop_index)
        )

        # SKL302: scalar array conversion per element.  Only in innermost
        # loops: a conversion per *group* in an outer loop is amortised
        # over the inner loop's elements.
        if innermost_loop and qualnames & _SCALAR_ARRAY_CALLS:
            ctor = next(iter(qualnames & _SCALAR_ARRAY_CALLS))
            if ctor in _ALLOC_CTORS and _invariant_args(call, info):
                pass  # handled below as a hoistable allocation (SKL303)
            else:
                add(
                    "SKL302", call,
                    f"{ctor.replace('numpy', 'np')} called per element inside "
                    "a loop; convert the whole batch once outside the loop",
                )
                continue

        # SKL303a: growing-concatenation in a loop is O(n²).
        if in_loop and qualnames & _GROWING_CONCAT:
            name = next(iter(qualnames & _GROWING_CONCAT))
            add(
                "SKL303", call,
                f"{name.replace('numpy', 'np')} inside a loop re-copies the "
                "array every iteration (O(n²)); collect parts and "
                "concatenate once after the loop",
            )
            continue

        # SKL303b: loop-invariant construction every iteration.
        if (
            in_loop
            and qualnames & _ALLOC_CTORS
            and (call.args or call.keywords)
            and _invariant_args(call, info)
        ):
            name = next(iter(qualnames & _ALLOC_CTORS))
            add(
                "SKL303", call,
                f"{name.replace('numpy', 'np').replace('collections.', '')} "
                "constructed from loop-invariant arguments on every "
                "iteration; hoist the allocation out of the loop",
            )
            continue

        # SKL304: dtype churn.
        if isinstance(call.func, ast.Attribute) and call.func.attr == "astype":
            if _astype_round_trip(call):
                add(
                    "SKL304", call,
                    "chained .astype() calls copy the array twice and churn "
                    "dtypes; convert once to the final dtype",
                )
                continue
            if _astype_fancy_chain(call):
                add(
                    "SKL304", call,
                    ".astype() on a fancy-indexed slice makes two full "
                    "copies; index first into the target dtype (or reorder)",
                )
                continue
            if innermost_loop:
                add(
                    "SKL304", call,
                    ".astype() inside a loop copies the array every "
                    "iteration; convert once outside the loop",
                )
                continue

        # SKL305: per-element observability.
        if in_loop and isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            receiver = call.func.value
            receiver_name = receiver.id if isinstance(receiver, ast.Name) else None
            if attr in _OBS_MUTATORS and not _is_plain_counter(receiver_name):
                add(
                    "SKL305", call,
                    f".{attr}() per element inside a loop takes the "
                    "instrument lock every iteration; accumulate locally and "
                    "use observe_batch / one inc(total) per batch",
                )
                continue
            if attr in _OBS_FACTORIES and receiver_name in (
                "obs", "metrics", "registry",
            ):
                add(
                    "SKL305", call,
                    f"registry lookup {receiver_name}.{attr}(...) per element "
                    "inside a loop; bind the instrument to a local before "
                    "the loop",
                )
                continue
            if attr in _LOG_METHODS and (
                (receiver_name or "").startswith(("log", "logger"))
                or any(q.startswith("logging.") for q in qualnames)
            ):
                add(
                    "SKL305", call,
                    "logging per element inside a hot loop; log once per "
                    "batch (or guard with isEnabledFor outside the loop)",
                )
                continue

    # ---- SKL303c: repeated invariant attribute chains -----------------
    for info in scan.loops:
        for chain_text, count in info.chain_counts.items():
            if count < 2:
                continue
            if not _chain_is_invariant(chain_text, info):
                continue
            root = chain_text.split(".", 1)[0]
            if root in module.imports:
                continue  # module-attribute chains (np.add.at) are cheap
            add(
                "SKL303", info.chains[chain_text],
                f"loop-invariant attribute chain '{chain_text}' read "
                f"{count}x per iteration; hoist it into a local before "
                "the loop",
            )

    # ---- SKL305: try re-entered per element ---------------------------
    for try_node, depth, loop_index in scan.tries:
        if depth < 1 or loop_index is None:
            continue
        enclosing = scan.loops[loop_index].node
        if (
            isinstance(enclosing, ast.While)
            and isinstance(enclosing.test, ast.Constant)
            and enclosing.test.value
        ):
            continue  # `while True` event loops are per-batch, not per-element
        if any(
            isinstance(node, (ast.For, ast.AsyncFor, ast.While, ast.comprehension))
            for node in ast.walk(try_node)
        ):
            continue  # the try amortises over an inner loop (per group)
        add(
            "SKL305", try_node,
            "try/except inside a hot loop sets up exception handling "
            "per element; move the try outside the loop (or batch the "
            "fallible step)",
        )

    return violations


def _invariant_args(call: ast.Call, info: _LoopInfo | None) -> bool:
    if info is None:
        return False
    return all(_invariant(arg, info.assigned) for arg in call.args) and all(
        _invariant(kw.value, info.assigned) for kw in call.keywords
    )


def _is_plain_counter(receiver_name: str | None) -> bool:
    """``n.inc()``-style false-positive guard: obs instruments are almost
    always reached via obs/metrics/self attributes, not bare locals named
    like counters — but a bare local *bound from a registry* is exactly
    the fix, so only exempt nothing for now (kept for clarity)."""
    return False


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def check_hotpath(
    model: ProjectModel,
    graph: CallGraph,
    config: HotPathConfig = DEFAULT_CONFIG,
) -> list[Violation]:
    """Run the SKL301–SKL305 checks over the project."""
    violations: list[Violation] = []
    generator_fns = {
        qualname
        for qualname, fn in model.functions.items()
        if _is_generator_function(fn)
    }
    chains = hot_functions(model, graph, config)
    for qualname, fn in model.functions.items():
        module = model.modules[fn.module]
        scan = _HotScan(fn).run()
        # SKL301 is project-wide: exhausted iterators are correctness
        # bugs wherever they occur.
        violations += _check_single_use(model, module, fn, scan, generator_fns)
        chain = chains.get(qualname)
        if chain is not None:
            violations += _check_hot_function(
                model, module, fn, scan, chain, config
            )
    return violations
