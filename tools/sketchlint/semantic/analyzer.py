"""Entry point for the semantic phase: files in, violations out."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from tools.sketchlint.semantic.callgraph import CallGraph
from tools.sketchlint.semantic.concurrency import check_concurrency
from tools.sketchlint.semantic.dataflow import DataflowAnalysis
from tools.sketchlint.semantic.hotpath import check_hotpath
from tools.sketchlint.semantic.model import ProjectModel
from tools.sketchlint.semantic.rules import (
    SEMANTIC_RULES_BY_ID,
    check_estimator_purity,
    check_numpy_deserialisation,
    check_snapshot_reachability,
)
from tools.sketchlint.suppress import filter_suppressed
from tools.sketchlint.violations import Violation


def analyze_project(
    files: Iterable[tuple[Path, str]],
    select: Iterable[str] | None = None,
) -> list[Violation]:
    """Run the whole-project phase over ``(path, source)`` pairs.

    ``select`` restricts output to the given SKL1xx ids (None = all).
    Suppression comments (line- and file-level) are honoured.
    """
    model = ProjectModel.build(files)
    graph = CallGraph.build(model)
    violations: list[Violation] = []
    violations += DataflowAnalysis(model).run()  # SKL101 / SKL102
    violations += check_snapshot_reachability(model, graph)  # SKL103
    violations += check_estimator_purity(model, graph)  # SKL104
    violations += check_numpy_deserialisation(model)  # SKL105
    violations += check_concurrency(model, graph)  # SKL201..SKL205
    violations += check_hotpath(model, graph)  # SKL301..SKL305
    if select is not None:
        wanted = {token.strip().upper() for token in select}
        violations = [v for v in violations if v.rule in wanted]
    else:
        wanted = set(SEMANTIC_RULES_BY_ID)
        violations = [v for v in violations if v.rule in wanted]
    sources = {info.path: info.source for info in model.modules.values()}
    violations = filter_suppressed(sorted(set(violations), key=Violation.sort_key), sources)
    return violations


def analyze_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
) -> list[Violation]:
    """Discover files under ``paths`` and run :func:`analyze_project`."""
    from tools.sketchlint.engine import iter_python_files  # avoid cycle

    files: list[tuple[Path, str]] = []
    for file_path in iter_python_files(paths):
        try:
            files.append((file_path, file_path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError):
            continue  # the per-file phase reports unreadable files
    return analyze_project(files, select)
