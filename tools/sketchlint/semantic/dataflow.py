"""Intra-procedural taint dataflow with cross-function summaries.

Two lattices ride on every abstract value (:class:`Taint`):

* **value width** — can this value exceed int64?  Sources are the
  functions of ``repro.hashing.pairing`` (Cantor pairing values are
  arbitrary precision in ``PF(.)`` mode); sanitizers are ``fold_to_width``,
  ``to_field`` and modular/masking arithmetic (``%``, ``&``, ``>>``).
  Containers carry separate key/element and mapping-value slots so a dict
  with big keys but small counts does not poison a values-only narrowing.
* **seed provenance** — ``neutral`` < ``config`` < ``foreign``.  Reads of
  ``repro.core.config`` constants (or attributes of its classes) are
  ``config``; values derived from ``random``/``time``/``uuid``/``secrets``
  or ``os.urandom`` are ``foreign``.  Only provably-foreign seeds are
  flagged at RNG/ξ construction sites (SKL102).

Each function is summarised as: which parameter slots flow into an
int64-narrowing operation, which parameters are used as RNG seeds, and
the taint of its return value (with symbolic parameter tags substituted
at call sites).  Summaries are iterated to a fixpoint over the call
graph, then a recording pass emits SKL101/SKL102 violations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from tools.sketchlint.semantic.callgraph import Resolver
from tools.sketchlint.semantic.model import (
    FunctionInfo,
    ProjectModel,
    dotted_name,
)
from tools.sketchlint.violations import Violation

NEUTRAL = "neutral"
CONFIG = "config"
FOREIGN = "foreign"
_SEED_RANK = {NEUTRAL: 0, CONFIG: 1, FOREIGN: 2}

#: Module whose functions return values that may exceed int64.
BIG_SOURCE_MODULE = "repro.hashing.pairing"
#: Width sanitizers: reduce a big value into a bounded residue.
WIDTH_SANITIZERS = frozenset({f"{BIG_SOURCE_MODULE}.fold_to_width"})
SANITIZER_METHOD_NAMES = frozenset({"to_field"})
#: Module whose constants / dataclasses carry config seed provenance.
CONFIG_MODULE = "repro.core.config"
#: Module whose classes are ξ generators: constructing one is a seed sink.
XI_MODULE = "repro.sketch.xi"

#: External callables whose result is a nondeterministic (foreign) value.
FOREIGN_MODULES = frozenset({"random", "time", "secrets", "uuid"})
FOREIGN_CALLS = frozenset({"os.urandom", "os.getrandom", "os.getpid"})

#: RNG constructors whose seed argument must not be foreign (SKL102).
RNG_SINKS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "random.seed",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.seed",
        "repro.hashing.rng.default_generator",
    }
)

#: numpy entry points that materialise data at a fixed dtype (SKL101).
NARROWING_CALLS = frozenset({"numpy.asarray", "numpy.array", "numpy.fromiter"})
FIXED_INT_DTYPES = frozenset(
    {
        "int", "intp", "uintp", "int_", "longlong", "ulonglong",
        "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
    }
)

_CLEAN_BUILTINS = frozenset(
    {"len", "bool", "str", "repr", "format", "isinstance", "hash", "id",
     "round", "divmod", "bytes", "bytearray", "memoryview", "print"}
)
_PRESERVING_BUILTINS = frozenset(
    {"int", "abs", "list", "tuple", "set", "frozenset", "sorted", "iter",
     "reversed", "next", "sum", "max", "min", "float"}
)
_CONTAINER_METHODS = frozenset(
    {"keys", "values", "items", "get", "setdefault", "pop", "copy",
     "append", "add", "extend", "update"}
)

MAX_FIXPOINT_PASSES = 10


@dataclass(frozen=True)
class Taint:
    """Abstract value: width + seed lattices with symbolic parameter tags.

    ``width`` is the scalar itself; ``keys`` covers iteration elements
    and mapping keys; ``values`` covers mapping values.  Tags name the
    ``(parameter, slot)`` pairs of the enclosing function whose taint
    would flow here — they power the cross-function summaries.
    """

    width: bool = False
    keys: bool = False
    values: bool = False
    seed: str = NEUTRAL
    width_tags: frozenset = frozenset()
    keys_tags: frozenset = frozenset()
    values_tags: frozenset = frozenset()
    seed_tags: frozenset = frozenset()

    def join(self, other: "Taint") -> "Taint":
        return Taint(
            width=self.width or other.width,
            keys=self.keys or other.keys,
            values=self.values or other.values,
            seed=join_seed(self.seed, other.seed),
            width_tags=self.width_tags | other.width_tags,
            keys_tags=self.keys_tags | other.keys_tags,
            values_tags=self.values_tags | other.values_tags,
            seed_tags=self.seed_tags | other.seed_tags,
        )

    def seed_only(self) -> "Taint":
        return Taint(seed=self.seed, seed_tags=self.seed_tags)


CLEAN = Taint()
BIG = Taint(width=True)


def join_seed(a: str, b: str) -> str:
    return a if _SEED_RANK[a] >= _SEED_RANK[b] else b


def slot_flag(t: Taint, slot: str) -> bool:
    return {"direct": t.width, "keys": t.keys, "values": t.values}[slot]


def slot_tags(t: Taint, slot: str) -> frozenset:
    return {
        "direct": t.width_tags,
        "keys": t.keys_tags,
        "values": t.values_tags,
    }[slot]


@dataclass(frozen=True)
class Summary:
    """What a function does to its inputs and returns to its caller."""

    #: ``(param, slot)`` pairs that flow into an int64-narrowing operation.
    narrowed: frozenset = frozenset()
    #: parameters used (possibly transitively) as an RNG/ξ seed.
    seed_sinks: frozenset = frozenset()
    returns: Taint = CLEAN


class DataflowAnalysis:
    """Fixpoint driver: summaries first, then a violation-recording pass."""

    def __init__(self, model: ProjectModel):
        self.model = model
        self.summaries: dict[str, Summary] = {}
        self.violations: set[Violation] = set()

    def run(self) -> list[Violation]:
        for _ in range(MAX_FIXPOINT_PASSES):
            changed = False
            for fn in self.model.functions.values():
                summary = _FunctionAnalyzer(self, fn, record=False).analyze()
                if summary != self.summaries.get(fn.qualname):
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        for fn in self.model.functions.values():
            _FunctionAnalyzer(self, fn, record=True).analyze()
        return sorted(self.violations, key=lambda v: v.sort_key())


class _FunctionAnalyzer:
    """One forward pass over a function body, in source order."""

    def __init__(self, analysis: DataflowAnalysis, fn: FunctionInfo, record: bool):
        self.analysis = analysis
        self.model = analysis.model
        self.fn = fn
        self.module = self.model.modules[fn.module]
        self.record = record
        self.resolver = Resolver(self.model, self.module, fn)
        self.env: dict[str, Taint] = {}
        self.narrowed: set = set()
        self.seed_sinks: set = set()
        self.returns = CLEAN
        for param in fn.param_names:
            self.env[param] = Taint(
                width_tags=frozenset({(param, "direct")}),
                keys_tags=frozenset({(param, "keys")}),
                values_tags=frozenset({(param, "values")}),
                seed_tags=frozenset({param}),
            )

    def analyze(self) -> Summary:
        self._exec(self.fn.node.body)
        return Summary(
            narrowed=frozenset(self.narrowed),
            seed_sinks=frozenset(self.seed_sinks),
            returns=self.returns,
        )

    def _violation(self, rule: str, node: ast.AST, message: str) -> None:
        if self.record:
            self.analysis.violations.add(
                Violation(
                    rule=rule,
                    path=self.module.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=message,
                )
            )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _exec(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            elif isinstance(stmt, ast.Assign):
                taint = self._eval(stmt.value)
                for target in stmt.targets:
                    self._bind(target, taint, stmt)
                if len(stmt.targets) == 1:
                    self.resolver.bind(stmt.targets[0], stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._bind(stmt.target, self._eval(stmt.value), stmt)
                    self.resolver.bind(stmt.target, stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                taint = self._eval(stmt.target).join(self._eval(stmt.value))
                self._bind(stmt.target, taint, stmt)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self.returns = self.returns.join(self._eval(stmt.value))
            elif isinstance(stmt, ast.Expr):
                self._eval(stmt.value)
            elif isinstance(stmt, ast.For):
                self._bind_loop_target(stmt.target, stmt.iter)
                self._exec(stmt.body)
                self._exec(stmt.orelse)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._eval(stmt.test)
                self._exec(stmt.body)
                self._exec(stmt.orelse)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    taint = self._eval(item.context_expr)
                    if item.optional_vars is not None:
                        self._bind(item.optional_vars, taint, stmt)
                self._exec(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._exec(stmt.body)
                for handler in stmt.handlers:
                    self._exec(handler.body)
                self._exec(stmt.orelse)
                self._exec(stmt.finalbody)
            elif isinstance(stmt, (ast.Raise, ast.Assert)):
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._eval(child)

    def _bind(self, target: ast.expr, taint: Taint, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, ast.Tuple):
            element = self._element(taint).join(taint.seed_only())
            for elt in target.elts:
                self._bind(elt, element, stmt)
        elif isinstance(target, ast.Subscript):
            self._check_counter_store(target, taint, stmt)
            base = target.value
            if isinstance(base, ast.Name) and base.id in self.env:
                key_t = self._eval(target.slice)
                old = self.env[base.id]
                self.env[base.id] = old.join(
                    Taint(
                        keys=key_t.width,
                        values=taint.width,
                        keys_tags=key_t.width_tags,
                        values_tags=taint.width_tags,
                    )
                )
            # Nested subscripts / setdefault chains are opaque: no binding.
        elif isinstance(target, ast.Attribute):
            self._check_counter_store(target, taint, stmt)

    def _check_counter_store(
        self, target: ast.expr, taint: Taint, stmt: ast.stmt
    ) -> None:
        """A width-tainted value stored into a ``counters`` array (SKL101)."""
        attr = target
        if isinstance(attr, ast.Subscript):
            attr = attr.value
        if not (isinstance(attr, ast.Attribute) and attr.attr == "counters"):
            return
        if taint.width or taint.keys:
            self._violation(
                "SKL101",
                stmt,
                "value with pairing provenance (may exceed int64) is stored "
                "into a fixed-width 'counters' array",
            )
        self.narrowed |= taint.width_tags | taint.keys_tags

    def _bind_loop_target(self, target: ast.expr, iterable: ast.expr) -> None:
        # ``for k, v in d.items()``: keys slot → k, values slot → v.
        if (
            isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr == "items"
            and not iterable.args
        ):
            recv = self._eval(iterable.func.value)
            pair = (
                Taint(width=recv.keys, width_tags=recv.keys_tags).join(recv.seed_only()),
                Taint(width=recv.values, width_tags=recv.values_tags).join(recv.seed_only()),
            )
            for elt, taint in zip(target.elts, pair):
                self._bind(elt, taint, iterable)
            return
        taint = self._eval(iterable)
        self._bind(target, self._element(taint).join(taint.seed_only()), iterable)

    @staticmethod
    def _element(t: Taint) -> Taint:
        """Taint of one element when iterating a container."""
        return Taint(width=t.keys, width_tags=t.keys_tags,
                     seed=t.seed, seed_tags=t.seed_tags)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, expr: ast.expr) -> Taint:
        if isinstance(expr, ast.Name):
            return self._eval_name(expr)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            left, right = self._eval(expr.left), self._eval(expr.right)
            if isinstance(expr.op, (ast.Mod, ast.BitAnd, ast.RShift)):
                # Modular reduction / masking bounds the result: width clean.
                return Taint(
                    seed=join_seed(left.seed, right.seed),
                    seed_tags=left.seed_tags | right.seed_tags,
                )
            return left.join(right)
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.BoolOp):
            out = CLEAN
            for value in expr.values:
                out = out.join(self._eval(value))
            return out
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return CLEAN
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body).join(self._eval(expr.orelse))
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value)
            self._eval(expr.slice)
            return Taint(
                width=base.keys or base.values,
                width_tags=base.keys_tags | base.values_tags,
                seed=base.seed,
                seed_tags=base.seed_tags,
            )
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            out = CLEAN
            for elt in expr.elts:
                value = elt.value if isinstance(elt, ast.Starred) else elt
                t = self._eval(value)
                out = out.join(
                    Taint(keys=t.width or t.keys,
                          keys_tags=t.width_tags | t.keys_tags).join(t.seed_only())
                )
            return out
        if isinstance(expr, ast.Dict):
            out = CLEAN
            for key, value in zip(expr.keys, expr.values):
                key_t = self._eval(key) if key is not None else CLEAN
                value_t = self._eval(value)
                out = out.join(
                    Taint(
                        keys=key_t.width,
                        values=value_t.width,
                        keys_tags=key_t.width_tags,
                        values_tags=value_t.width_tags,
                        seed=join_seed(key_t.seed, value_t.seed),
                        seed_tags=key_t.seed_tags | value_t.seed_tags,
                    )
                )
            return out
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for comp in expr.generators:
                self._bind_loop_target(comp.target, comp.iter)
                for condition in comp.ifs:
                    self._eval(condition)
            elt = self._eval(expr.elt)
            return Taint(keys=elt.width, keys_tags=elt.width_tags).join(elt.seed_only())
        if isinstance(expr, ast.DictComp):
            for comp in expr.generators:
                self._bind_loop_target(comp.target, comp.iter)
                for condition in comp.ifs:
                    self._eval(condition)
            key_t, value_t = self._eval(expr.key), self._eval(expr.value)
            return Taint(
                keys=key_t.width,
                values=value_t.width,
                keys_tags=key_t.width_tags,
                values_tags=value_t.width_tags,
                seed=join_seed(key_t.seed, value_t.seed),
                seed_tags=key_t.seed_tags | value_t.seed_tags,
            )
        if isinstance(expr, ast.NamedExpr):
            taint = self._eval(expr.value)
            self._bind(expr.target, taint, expr)
            return taint
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        return CLEAN

    def _eval_name(self, expr: ast.Name) -> Taint:
        if expr.id in self.env:
            return self.env[expr.id]
        return self._constant_taint(expr.id)

    def _eval_attribute(self, expr: ast.Attribute) -> Taint:
        dotted = dotted_name(expr)
        if dotted is not None:
            head = dotted.partition(".")[0]
            if head not in self.env:
                taint = self._constant_taint(dotted)
                if taint is not CLEAN:
                    return taint
        base = self._eval(expr.value)
        base_types = self.resolver.expr_types(expr.value)
        for cls_name in base_types:
            cls_info = self.model.classes.get(cls_name)
            if cls_info is not None and cls_info.module == CONFIG_MODULE:
                # Attribute of a config object (e.g. ``config.seed``).
                return Taint(seed=CONFIG, seed_tags=base.seed_tags)
        return base.seed_only()

    def _constant_taint(self, dotted: str) -> Taint:
        """Config-module constants carry config seed provenance."""
        resolved = self.model.resolve(self.module, dotted)
        if resolved in self.model.constants:
            if resolved.rpartition(".")[0] == CONFIG_MODULE:
                return Taint(seed=CONFIG)
        return CLEAN

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _eval_call(self, call: ast.Call) -> Taint:
        arg_taints: list[Taint] = []
        for arg in call.args:
            value = arg.value if isinstance(arg, ast.Starred) else arg
            arg_taints.append(self._eval(value))
        kw_taints: dict[str, Taint] = {}
        star_kwargs = CLEAN
        for keyword in call.keywords:
            taint = self._eval(keyword.value)
            if keyword.arg is None:
                star_kwargs = star_kwargs.join(taint)
            else:
                kw_taints[keyword.arg] = taint
        receiver_taint: Taint | None = None
        if isinstance(call.func, ast.Attribute):
            receiver_taint = self._eval(call.func.value)

        qualnames = self.resolver.resolve_call(call)
        self._check_narrowing_sink(call, qualnames, arg_taints, kw_taints)
        self._check_seed_sink(call, qualnames, arg_taints, kw_taints)

        callees = self._project_callees(call)
        if callees:
            out = CLEAN
            for fn_info, skip_first in callees:
                out = out.join(
                    self._apply_project_call(
                        call, fn_info, skip_first, receiver_taint,
                        arg_taints, kw_taints,
                    )
                )
            return out
        return self._apply_external_call(
            call, qualnames, receiver_taint, arg_taints, kw_taints, star_kwargs
        )

    def _project_callees(self, call: ast.Call) -> list[tuple[FunctionInfo, bool]]:
        func = call.func
        name = dotted_name(func)
        if name is not None:
            head = name.partition(".")[0]
            if head not in self.resolver.types:
                resolved = self.model.resolve(self.module, name)
                fn = self.model.functions.get(resolved)
                if fn is not None:
                    skip = fn.cls is not None and fn.param_names[:1] in (
                        ["self"], ["cls"]
                    )
                    return [(fn, skip)]
                cls_info = self.model.classes.get(resolved)
                if cls_info is not None:
                    init = cls_info.methods.get("__init__")
                    return [(init, True)] if init is not None else []
        if isinstance(func, ast.Attribute):
            base_types = self.resolver.expr_types(func.value)
            return [
                (m, True) for m in self.model.lookup_method(base_types, func.attr)
            ]
        return []

    def _map_param_taints(
        self,
        fn_info: FunctionInfo,
        skip_first: bool,
        receiver_taint: Taint | None,
        arg_taints: list[Taint],
        kw_taints: dict[str, Taint],
    ) -> dict[str, Taint]:
        args = fn_info.node.args
        positional = [a.arg for a in (*args.posonlyargs, *args.args)]
        mapping: dict[str, Taint] = {}
        if skip_first and positional:
            if receiver_taint is not None:
                mapping[positional[0]] = receiver_taint
            positional = positional[1:]
        for param, taint in zip(positional, arg_taints):
            mapping[param] = taint
        all_params = set(fn_info.param_names)
        for name, taint in kw_taints.items():
            if name in all_params:
                mapping[name] = taint
        return mapping

    def _apply_project_call(
        self,
        call: ast.Call,
        fn_info: FunctionInfo,
        skip_first: bool,
        receiver_taint: Taint | None,
        arg_taints: list[Taint],
        kw_taints: dict[str, Taint],
    ) -> Taint:
        # Intrinsic source: anything defined in the pairing module returns
        # a potentially >int64 value, except the designated reducer.
        if fn_info.module == BIG_SOURCE_MODULE:
            if fn_info.qualname in WIDTH_SANITIZERS:
                return CLEAN
            return BIG
        if fn_info.name in SANITIZER_METHOD_NAMES:
            return CLEAN
        summary = self.analysis.summaries.get(fn_info.qualname, Summary())
        mapping = self._map_param_taints(
            fn_info, skip_first, receiver_taint, arg_taints, kw_taints
        )
        for param, slot in summary.narrowed:
            taint = mapping.get(param)
            if taint is None:
                continue
            if slot_flag(taint, slot):
                self._violation(
                    "SKL101",
                    call,
                    f"argument '{param}' of {fn_info.qualname} flows into an "
                    "int64-narrowing operation but may exceed int64 "
                    "(pairing provenance); reduce with to_field/fold_to_width "
                    "first",
                )
            self.narrowed |= slot_tags(taint, slot)
        for param in summary.seed_sinks:
            taint = mapping.get(param)
            if taint is None:
                continue
            if taint.seed == FOREIGN:
                self._violation(
                    "SKL102",
                    call,
                    f"argument '{param}' of {fn_info.qualname} is used as an "
                    "RNG/ξ seed but derives from a nondeterministic source; "
                    "seeds must flow from repro.core.config",
                )
            self.seed_sinks |= taint.seed_tags
        return self._substitute_return(summary.returns, mapping)

    def _substitute_return(self, rt: Taint, mapping: dict[str, Taint]) -> Taint:
        out = replace(
            rt, width_tags=frozenset(), keys_tags=frozenset(),
            values_tags=frozenset(), seed_tags=frozenset(),
        )
        for slot, tags in (
            ("direct", rt.width_tags), ("keys", rt.keys_tags),
            ("values", rt.values_tags),
        ):
            for param, param_slot in tags:
                taint = mapping.get(param)
                if taint is None:
                    continue
                if slot_flag(taint, param_slot):
                    if slot == "direct":
                        out = replace(out, width=True)
                    elif slot == "keys":
                        out = replace(out, keys=True)
                    else:
                        out = replace(out, values=True)
                carried = slot_tags(taint, param_slot)
                if slot == "direct":
                    out = replace(out, width_tags=out.width_tags | carried)
                elif slot == "keys":
                    out = replace(out, keys_tags=out.keys_tags | carried)
                else:
                    out = replace(out, values_tags=out.values_tags | carried)
        seed = rt.seed
        seed_tags: frozenset = frozenset()
        for param in rt.seed_tags:
            taint = mapping.get(param)
            if taint is not None:
                seed = join_seed(seed, taint.seed)
                seed_tags |= taint.seed_tags
        return replace(out, seed=seed, seed_tags=seed_tags)

    def _apply_external_call(
        self,
        call: ast.Call,
        qualnames: list[str],
        receiver_taint: Taint | None,
        arg_taints: list[Taint],
        kw_taints: dict[str, Taint],
        star_kwargs: Taint,
    ) -> Taint:
        for qualname in qualnames:
            head = qualname.partition(".")[0]
            if qualname in WIDTH_SANITIZERS:
                return CLEAN
            if head in FOREIGN_MODULES or qualname in FOREIGN_CALLS:
                return Taint(seed=FOREIGN)
            if qualname in _CLEAN_BUILTINS:
                return CLEAN
            if qualname in _PRESERVING_BUILTINS:
                return arg_taints[0] if arg_taints else CLEAN
        func = call.func
        if isinstance(func, ast.Attribute) and receiver_taint is not None:
            if func.attr in SANITIZER_METHOD_NAMES:
                return CLEAN
            if func.attr in _CONTAINER_METHODS:
                return self._container_method(
                    func.attr, receiver_taint, arg_taints
                )
        # Unknown call: conservatively join everything that flows in.
        out = receiver_taint if receiver_taint is not None else CLEAN
        for taint in arg_taints:
            out = out.join(taint)
        for taint in kw_taints.values():
            out = out.join(taint)
        return out.join(star_kwargs)

    def _container_method(
        self, attr: str, recv: Taint, arg_taints: list[Taint]
    ) -> Taint:
        if attr == "keys":
            return Taint(keys=recv.keys, keys_tags=recv.keys_tags).join(
                recv.seed_only()
            )
        if attr == "values":
            return Taint(keys=recv.values, keys_tags=recv.values_tags).join(
                recv.seed_only()
            )
        if attr == "items":
            return recv
        if attr in ("get", "setdefault", "pop"):
            out = Taint(width=recv.values, width_tags=recv.values_tags).join(
                recv.seed_only()
            )
            if attr == "setdefault" and len(arg_taints) > 1:
                out = out.join(arg_taints[1])
            elif attr == "get" and len(arg_taints) > 1:
                out = out.join(arg_taints[1])
            return out
        if attr == "copy":
            return recv
        # append/add/extend/update mutate the receiver; element taint only.
        return CLEAN

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def _check_narrowing_sink(
        self,
        call: ast.Call,
        qualnames: list[str],
        arg_taints: list[Taint],
        kw_taints: dict[str, Taint],
    ) -> None:
        if not any(q in NARROWING_CALLS for q in qualnames):
            return
        dtype_expr = None
        for keyword in call.keywords:
            if keyword.arg == "dtype":
                dtype_expr = keyword.value
        if dtype_expr is None and len(call.args) > 1:
            dtype_expr = call.args[1]
        if dtype_expr is None or not _is_fixed_int_dtype(dtype_expr):
            return
        if not arg_taints:
            return
        data = arg_taints[0]
        if data.width or data.keys:
            sink = next(q for q in qualnames if q in NARROWING_CALLS)
            self._violation(
                "SKL101",
                call,
                f"{sink} narrows a value with pairing provenance (may exceed "
                "int64) to a fixed integer dtype; reduce with "
                "to_field/fold_to_width first",
            )
        self.narrowed |= data.width_tags | data.keys_tags

    def _check_seed_sink(
        self,
        call: ast.Call,
        qualnames: list[str],
        arg_taints: list[Taint],
        kw_taints: dict[str, Taint],
    ) -> None:
        sink = None
        for qualname in qualnames:
            if qualname in RNG_SINKS:
                sink = qualname
            cls_info = self.analysis.model.classes.get(qualname)
            if cls_info is not None and cls_info.module == XI_MODULE:
                sink = qualname
        if sink is None:
            return
        seed_taint = kw_taints.get("seed")
        if seed_taint is None and arg_taints:
            seed_taint = arg_taints[0]
        if seed_taint is None:
            return
        if seed_taint.seed == FOREIGN:
            self._violation(
                "SKL102",
                call,
                f"seed for {sink} derives from a nondeterministic source "
                "(random/time/uuid/secrets); seeds must flow from "
                "repro.core.config",
            )
        self.seed_sinks |= seed_taint.seed_tags


def _is_fixed_int_dtype(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value in FIXED_INT_DTYPES
    dotted = dotted_name(expr)
    if dotted is None:
        return False
    return dotted.rsplit(".", 1)[-1] in FIXED_INT_DTYPES
