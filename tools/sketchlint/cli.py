"""Command-line front end: ``python -m tools.sketchlint src/``.

Exit codes: 0 = clean, 1 = violations found, 2 = usage/parse failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from tools.sketchlint.engine import LintUsageError, lint_paths
from tools.sketchlint.rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.sketchlint",
        description=(
            "Domain-aware static analysis for the SketchTree reproduction: "
            "determinism, numeric-safety and sketch-correctness invariants "
            "(rules SKL001-SKL008). Suppress a hit inline with "
            "`# sketchlint: disable=SKL00x`."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.summary}")
        return 0
    select = args.select.split(",") if args.select else None
    try:
        violations, n_files = lint_paths(args.paths, select=select)
    except (LintUsageError, OSError) as error:
        print(f"sketchlint: error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": n_files,
                    "violations": [v.to_dict() for v in violations],
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render())
        noun = "violation" if len(violations) == 1 else "violations"
        print(f"sketchlint: {len(violations)} {noun} in {n_files} files checked")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
