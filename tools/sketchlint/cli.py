"""Command-line front end: ``python -m tools.sketchlint src/``.

Exit codes: 0 = clean, 1 = findings (including unparseable target files,
reported as SKL000), 2 = usage errors only (unknown rule id, missing
path, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from tools.sketchlint.baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineError,
    load_baseline,
    render_baseline,
    split_baselined,
)
from tools.sketchlint.engine import (
    PARSE_ERROR_RULE,
    LintUsageError,
    lint_paths_with_sources,
)
from tools.sketchlint.rules import RULES
from tools.sketchlint.sarif import render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.sketchlint",
        description=(
            "Domain-aware static analysis for the SketchTree reproduction. "
            "A per-file pass (SKL001-SKL008) checks determinism, "
            "numeric-safety and sketch-correctness invariants; a "
            "whole-project semantic pass (SKL101-SKL105) tracks seed "
            "provenance and value width across module boundaries. Suppress "
            "a hit inline with `# sketchlint: disable=SKL00x` or for a "
            "whole file with `# sketchlint: disable-file=SKL00x`."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--semantic",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the whole-project semantic phase (default: on)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the per-file phase "
            "(0 = one per CPU; default: 1, serial)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE_PATH),
        help="baseline file of accepted findings (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> None:
    from tools.sketchlint.semantic.rules import SEMANTIC_RULES

    print(f"{PARSE_ERROR_RULE}  target file does not parse (or cannot be read)")
    for rule in RULES:
        print(f"{rule.id}  {rule.summary}")
    for rule in SEMANTIC_RULES:
        print(f"{rule.id}  {rule.summary}")


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0
    select = args.select.split(",") if args.select else None
    try:
        violations, n_files, sources = lint_paths_with_sources(
            args.paths, select=select, semantic=args.semantic, jobs=args.jobs
        )
        if args.update_baseline:
            Path(args.baseline).write_text(
                render_baseline(violations, sources), encoding="utf-8"
            )
            noun = "finding" if len(violations) == 1 else "findings"
            print(f"sketchlint: baseline updated with {len(violations)} {noun}")
            return 0
        baseline = load_baseline(args.baseline)
    except (LintUsageError, BaselineError, OSError) as error:
        print(f"sketchlint: error: {error}", file=sys.stderr)
        return 2
    new, known = split_baselined(violations, baseline, sources)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": n_files,
                    "baselined": len(known),
                    "violations": [v.to_dict() for v in new],
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(render_sarif(new, sources), end="")
    else:
        for violation in new:
            print(violation.render())
        noun = "violation" if len(new) == 1 else "violations"
        tail = f" ({len(known)} baselined)" if known else ""
        print(
            f"sketchlint: {len(new)} {noun} in {n_files} files checked{tail}"
        )
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
