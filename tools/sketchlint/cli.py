"""Command-line front end: ``python -m tools.sketchlint src/``.

Exit codes: 0 = clean, 1 = findings (including unparseable target files,
reported as SKL000), 2 = usage errors only (unknown rule id, missing
path, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from tools.sketchlint.baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineError,
    load_baseline,
    refresh_baseline,
    split_baselined,
)
from tools.sketchlint.engine import (
    PARSE_ERROR_RULE,
    LintUsageError,
    lint_paths_with_sources,
)
from tools.sketchlint.rules import RULES
from tools.sketchlint.sarif import render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.sketchlint",
        description=(
            "Domain-aware static analysis for the SketchTree reproduction. "
            "A per-file pass (SKL001-SKL008) checks determinism, "
            "numeric-safety and sketch-correctness invariants; a "
            "whole-project semantic pass (SKL101-SKL105) tracks seed "
            "provenance and value width across module boundaries. Suppress "
            "a hit inline with `# sketchlint: disable=SKL00x` or for a "
            "whole file with `# sketchlint: disable-file=SKL00x`."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--semantic",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the whole-project semantic phase (default: on)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the per-file phase "
            "(0 = one per CPU; default: 1, serial)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE_PATH),
        help="baseline file of accepted findings (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain-hot",
        action="store_true",
        help=(
            "print the SKL3xx hot set (functions reachable from the "
            "configured hot entrypoints) with one sample call chain and "
            "the max loop-nesting depth per function, then exit"
        ),
    )
    return parser


def _list_rules() -> None:
    from tools.sketchlint.semantic.rules import SEMANTIC_RULES

    print(f"{PARSE_ERROR_RULE}  target file does not parse (or cannot be read)")
    for rule in RULES:
        print(f"{rule.id}  {rule.summary}")
    for rule in SEMANTIC_RULES:
        print(f"{rule.id}  {rule.summary}")


def _explain_hot(paths: Sequence[str]) -> int:
    from tools.sketchlint.engine import iter_python_files
    from tools.sketchlint.semantic.callgraph import CallGraph
    from tools.sketchlint.semantic.hotpath import explain_hot
    from tools.sketchlint.semantic.model import ProjectModel

    try:
        files = []
        for file_path in iter_python_files(paths):
            try:
                files.append((file_path, file_path.read_text(encoding="utf-8")))
            except (OSError, UnicodeDecodeError):
                continue
        model = ProjectModel.build(files)
        graph = CallGraph.build(model)
    except LintUsageError as error:
        print(f"sketchlint: error: {error}", file=sys.stderr)
        return 2
    print(explain_hot(model, graph), end="")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0
    if args.explain_hot:
        return _explain_hot(args.paths)
    select = args.select.split(",") if args.select else None
    try:
        violations, n_files, sources = lint_paths_with_sources(
            args.paths, select=select, semantic=args.semantic, jobs=args.jobs
        )
        if args.update_baseline:
            document, n_current, n_pruned = refresh_baseline(
                args.baseline, violations, sources
            )
            Path(args.baseline).write_text(document, encoding="utf-8")
            noun = "finding" if n_current == 1 else "findings"
            tail = (
                f" ({n_pruned} stale entr"
                f"{'y' if n_pruned == 1 else 'ies'} for deleted files pruned)"
                if n_pruned
                else ""
            )
            print(f"sketchlint: baseline updated with {n_current} {noun}{tail}")
            return 0
        baseline = load_baseline(args.baseline)
    except (LintUsageError, BaselineError, OSError) as error:
        print(f"sketchlint: error: {error}", file=sys.stderr)
        return 2
    new, known = split_baselined(violations, baseline, sources)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": n_files,
                    "baselined": len(known),
                    "violations": [v.to_dict() for v in new],
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(render_sarif(new, sources), end="")
    else:
        for violation in new:
            print(violation.render())
        noun = "violation" if len(new) == 1 else "violations"
        tail = f" ({len(known)} baselined)" if known else ""
        print(
            f"sketchlint: {len(new)} {noun} in {n_files} files checked{tail}"
        )
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
