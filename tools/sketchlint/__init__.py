"""sketchlint: domain-aware static analysis for the SketchTree repro.

The paper's accuracy guarantees rest on invariants the type system cannot
see — four-wise-independent ξ families drawn from reproducible seeds,
fixed irreducible fingerprint polynomials, monotonic benchmark clocks.
This package enforces them with a pure-AST pass (no runtime deps beyond
the stdlib):

========  ==============================================================
SKL001    unseeded / stdlib-``random`` RNG in sketch/hashing/core paths
SKL002    float ``==`` / ``!=`` in estimator code
SKL003    mutable default arguments
SKL004    wall-clock ``time.time`` in measured sections
SKL005    bare / silently swallowed exceptions
SKL006    seed or polynomial literals outside ``repro.core.config``
SKL007    missing ``__slots__`` on EnumTree inner-loop classes
SKL008    module-import-time I/O or RNG construction
========  ==============================================================

Run ``python -m tools.sketchlint src/``; suppress one line with
``# sketchlint: disable=SKL00x``.  See ``docs/static-analysis.md``.
"""

from tools.sketchlint.engine import (
    LintUsageError,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    select_rules,
)
from tools.sketchlint.rules import RULES, RULES_BY_ID, Rule
from tools.sketchlint.violations import FileContext, Violation

__all__ = [
    "FileContext",
    "LintUsageError",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "Violation",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "select_rules",
]
