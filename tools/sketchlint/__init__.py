"""sketchlint: domain-aware static analysis for the SketchTree repro.

The paper's accuracy guarantees rest on invariants the type system cannot
see — four-wise-independent ξ families drawn from reproducible seeds,
fixed irreducible fingerprint polynomials, monotonic benchmark clocks.
This package enforces them with a pure-AST pass (no runtime deps beyond
the stdlib), in two phases.

Per-file rules:

========  ==============================================================
SKL000    target file does not parse (or cannot be read)
SKL001    unseeded / stdlib-``random`` RNG in sketch/hashing/core paths
SKL002    float ``==`` / ``!=`` in estimator code
SKL003    mutable default arguments
SKL004    wall-clock ``time.time`` in measured sections
SKL005    bare / silently swallowed exceptions
SKL006    seed or polynomial literals outside ``repro.core.config``
SKL007    missing ``__slots__`` on EnumTree inner-loop classes
SKL008    module-import-time I/O or RNG construction
========  ==============================================================

Whole-project semantic rules (symbol table + call graph + taint dataflow,
see :mod:`tools.sketchlint.semantic`):

========  ==============================================================
SKL101    pairing-provenance value (>int64) narrowed to a fixed dtype
SKL102    RNG/ξ seeded from a non-config (nondeterministic) source
SKL103    pickle / nondeterminism reachable from the snapshot path
SKL104    counter writes reachable from estimator entry points
SKL105    ``np.load`` without ``allow_pickle=False`` / untyped frombuffer
========  ==============================================================

Run ``python -m tools.sketchlint src/``; suppress one line with
``# sketchlint: disable=SKL00x`` or a whole file with
``# sketchlint: disable-file=SKL00x``.  Pre-existing findings can be
accepted via ``tools/sketchlint/baseline.json`` (``--update-baseline``).
See ``docs/static-analysis.md``.
"""

from tools.sketchlint.engine import (
    PARSE_ERROR_RULE,
    LintUsageError,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_paths_with_sources,
    lint_source,
    select_rules,
    split_select,
)
from tools.sketchlint.rules import RULES, RULES_BY_ID, Rule
from tools.sketchlint.violations import FileContext, Violation

__all__ = [
    "FileContext",
    "LintUsageError",
    "PARSE_ERROR_RULE",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "Violation",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_paths_with_sources",
    "lint_source",
    "select_rules",
    "split_select",
]
