"""SARIF 2.1.0 serialisation for GitHub code scanning upload."""

from __future__ import annotations

import json

from tools.sketchlint.baseline import finding_keys
from tools.sketchlint.rules import RULES
from tools.sketchlint.violations import Violation

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"
TOOL_NAME = "sketchlint"
TOOL_VERSION = "0.2.0"


def _rule_catalogue() -> list[dict]:
    from tools.sketchlint.engine import PARSE_ERROR_RULE
    from tools.sketchlint.semantic.rules import SEMANTIC_RULES

    entries = [
        {
            "id": PARSE_ERROR_RULE,
            "shortDescription": {"text": "target file does not parse"},
        }
    ]
    entries += [
        {"id": rule.id, "shortDescription": {"text": rule.summary}}
        for rule in RULES
    ]
    entries += [
        {"id": rule.id, "shortDescription": {"text": rule.summary}}
        for rule in SEMANTIC_RULES
    ]
    return entries


def render_sarif(
    violations: list[Violation], sources: dict[str, str]
) -> str:
    """One SARIF run containing every finding of this invocation.

    ``partialFingerprints`` reuses the baseline content-hash key so code
    scanning tracks findings across line moves the same way the baseline
    does.
    """
    rules = _rule_catalogue()
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    keys = finding_keys(violations, sources)
    results = []
    for violation in sorted(set(violations), key=Violation.sort_key):
        result: dict = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col,
                        },
                    }
                }
            ],
            "partialFingerprints": {"sketchlint/v1": keys[violation]},
        }
        if violation.rule in rule_index:
            result["ruleIndex"] = rule_index[violation.rule]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "https://example.invalid/sketchlint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2) + "\n"
