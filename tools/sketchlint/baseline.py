"""Baseline files: accept pre-existing findings, fail only on new ones.

Keys are content hashes, not line numbers: ``sha256(rule | path |
stripped-source-line | occurrence-index)``.  Inserting code above a
baselined finding moves its line but not its key; editing the offending
line (or adding a second identical one later in the file for the
occurrence already claimed) invalidates the key and resurfaces the
finding.  The committed baseline lives at ``tools/sketchlint/baseline.json``
and is kept *empty* for this repository — CI asserts it is not stale.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from tools.sketchlint.violations import Violation

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = Path(__file__).parent / "baseline.json"


class BaselineError(Exception):
    """The baseline file is unreadable or malformed."""


def finding_keys(
    violations: list[Violation], sources: dict[str, str]
) -> dict[Violation, str]:
    """Content-hash key per violation.

    Violations on identical (rule, path, line-text) triples are
    disambiguated by their occurrence index in line order, so two hits on
    textually identical lines get distinct, stable keys.
    """
    line_cache: dict[str, list[str]] = {}
    occurrence: dict[tuple[str, str, str], int] = {}
    keys: dict[Violation, str] = {}
    for violation in sorted(set(violations), key=Violation.sort_key):
        source = sources.get(violation.path, "")
        if violation.path not in line_cache:
            line_cache[violation.path] = source.splitlines()
        lines = line_cache[violation.path]
        text = ""
        if 1 <= violation.line <= len(lines):
            text = lines[violation.line - 1].strip()
        triple = (violation.rule, violation.path, text)
        index = occurrence.get(triple, 0)
        occurrence[triple] = index + 1
        digest = hashlib.sha256(
            "|".join([violation.rule, violation.path, text, str(index)]).encode()
        ).hexdigest()[:20]
        keys[violation] = digest
    return keys


def load_baseline(path: str | Path) -> dict[str, dict]:
    """Key → descriptive metadata.  A missing file is an empty baseline."""
    file_path = Path(path)
    if not file_path.exists():
        return {}
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"cannot read baseline {file_path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {file_path} has unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    findings = payload.get("findings", {})
    if not isinstance(findings, dict):
        raise BaselineError(f"baseline {file_path}: 'findings' must be an object")
    return findings


def render_baseline(
    violations: list[Violation], sources: dict[str, str]
) -> str:
    """Serialise current findings as a baseline document (deterministic).

    The output is byte-identical regardless of input order: violations
    are keyed in sorted order, a key collision keeps the first (sorted)
    violation, every object is emitted with sorted keys, and the
    document ends with exactly one trailing newline.
    """
    keys = finding_keys(violations, sources)
    findings: dict[str, dict] = {}
    for violation, key in keys.items():  # keys is in Violation.sort_key order
        if key not in findings:
            findings[key] = {
                "rule": violation.rule,
                "path": violation.path,
                "message": violation.message,
            }
    document = {
        "version": BASELINE_VERSION,
        "findings": {key: findings[key] for key in sorted(findings)},
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_baseline(
    path: str | Path, violations: list[Violation], sources: dict[str, str]
) -> None:
    Path(path).write_text(render_baseline(violations, sources), encoding="utf-8")


def refresh_baseline(
    path: str | Path, violations: list[Violation], sources: dict[str, str]
) -> tuple[str, int, int]:
    """The updated baseline document, plus (n_current, n_pruned).

    ``--update-baseline`` semantics: findings from this run replace every
    entry for a path that was linted this run (``sources`` holds exactly
    the linted files), entries for paths *outside* this run's scope are
    retained so a partial-tree update cannot discard accepted findings
    elsewhere — but only while their file still exists.  Entries whose
    file is gone are pruned: a stale entry can never match a real finding
    again, and keeping it would let the baseline-staleness gate pass
    vacuously forever.
    """
    existing = load_baseline(path)
    keys = finding_keys(violations, sources)
    findings: dict[str, dict] = {}
    for violation, key in keys.items():  # Violation.sort_key order
        if key not in findings:
            findings[key] = {
                "rule": violation.rule,
                "path": violation.path,
                "message": violation.message,
            }
    n_current = len(findings)
    linted = set(sources)
    n_pruned = 0
    for key, meta in existing.items():
        if key in findings:
            continue
        entry_path = meta.get("path") if isinstance(meta, dict) else None
        if not isinstance(entry_path, str) or entry_path in linted:
            continue  # re-linted this run: current findings are the truth
        if not Path(entry_path).exists():
            n_pruned += 1
            continue
        findings[key] = meta
    document = {
        "version": BASELINE_VERSION,
        "findings": {key: findings[key] for key in sorted(findings)},
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n", n_current, n_pruned


def split_baselined(
    violations: list[Violation],
    baseline: dict[str, dict],
    sources: dict[str, str],
) -> tuple[list[Violation], list[Violation]]:
    """Partition into (new, baselined) against an existing baseline."""
    if not baseline:
        return list(violations), []
    keys = finding_keys(violations, sources)
    new: list[Violation] = []
    known: list[Violation] = []
    for violation in violations:
        if keys.get(violation) in baseline:
            known.append(violation)
        else:
            new.append(violation)
    return new, known
