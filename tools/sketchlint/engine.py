"""File discovery, suppression handling and rule dispatch."""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Iterator

from tools.sketchlint.rules import RULES, Rule
from tools.sketchlint.suppress import Suppressions
from tools.sketchlint.violations import FileContext, Violation

#: Rule id reserved for files the linter cannot parse (or read).
PARSE_ERROR_RULE = "SKL000"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


class LintUsageError(Exception):
    """Bad invocation: unknown rule id, missing path, …"""


def select_rules(select: Iterable[str] | None) -> tuple[Rule, ...]:
    """Resolve a ``--select`` list to per-file rules (None = all rules)."""
    rules, _, _ = split_select(select)
    return rules


def split_select(
    select: Iterable[str] | None,
) -> tuple[tuple[Rule, ...], set[str] | None, bool]:
    """Partition a ``--select`` list across the two phases.

    Returns ``(per_file_rules, semantic_ids, include_parse_errors)``;
    ``semantic_ids`` is ``None`` when every semantic rule should run.
    Unknown ids raise :class:`LintUsageError`.
    """
    if select is None:
        return RULES, None, True
    from tools.sketchlint.semantic.rules import SEMANTIC_RULES_BY_ID

    wanted = [token.strip().upper() for token in select if token.strip()]
    per_file_by_id = {rule.id: rule for rule in RULES}
    known = set(per_file_by_id) | set(SEMANTIC_RULES_BY_ID) | {PARSE_ERROR_RULE}
    unknown = [token for token in wanted if token not in known]
    if unknown:
        raise LintUsageError(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    per_file = tuple(per_file_by_id[t] for t in wanted if t in per_file_by_id)
    semantic = {t for t in wanted if t in SEMANTIC_RULES_BY_ID}
    return per_file, semantic, PARSE_ERROR_RULE in wanted


def lint_source(source: str, path: str, rules: tuple[Rule, ...] = RULES) -> list[Violation]:
    """Lint one already-read source string ("path" is for scoping/reports)."""
    normalised = Path(path).as_posix()
    suppressions = Suppressions(source)
    try:
        tree = ast.parse(source, filename=normalised)
    except SyntaxError as error:
        violation = Violation(
            rule=PARSE_ERROR_RULE,
            path=normalised,
            line=error.lineno or 1,
            col=(error.offset or 0) + 1,
            message=f"file does not parse: {error.msg}",
        )
        return [] if suppressions.hides(violation) else [violation]
    context = FileContext(path=normalised, tree=tree, source=source)
    found: list[Violation] = []
    for rule in rules:
        if not rule.applies_to(normalised):
            continue
        for violation in rule.check(context):
            if not suppressions.hides(violation):
                found.append(violation)
    found.sort(key=Violation.sort_key)
    return found


def lint_file(path: str | Path, rules: tuple[Rule, ...] = RULES) -> list[Violation]:
    """Lint one file on disk.

    An unreadable file is a finding (SKL000), not a crash: the linter must
    report on whatever it was pointed at and keep going.
    """
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return [
            Violation(
                rule=PARSE_ERROR_RULE,
                path=file_path.as_posix(),
                line=1,
                col=1,
                message=f"file cannot be read: {error}",
            )
        ]
    return lint_source(source, str(file_path), rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint, skipping caches
    and build artifacts."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS:
                    continue
                if any(part.endswith(".egg-info") for part in candidate.parts):
                    continue
                yield candidate
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise LintUsageError(f"path does not exist: {path}")


def _lint_worker(
    path_str: str, select: tuple[str, ...] | None
) -> tuple[str, str | None, list[Violation]]:
    """The per-file phase for one file: read, parse, run per-file rules.

    Pure and picklable — its only inputs are the arguments and its only
    output is the return value, so ``--jobs`` can run it in worker
    processes with results merged in submission order.  A ``None``
    source means the file could not be read (the violation says why).
    """
    file_path = Path(path_str)
    posix = file_path.as_posix()
    per_file_rules, _, _ = split_select(select)
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        violation = Violation(
            rule=PARSE_ERROR_RULE,
            path=posix,
            line=1,
            col=1,
            message=f"file cannot be read: {error}",
        )
        return posix, None, [violation]
    return posix, source, lint_source(source, path_str, per_file_rules)


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    semantic: bool = True,
    jobs: int = 1,
) -> tuple[list[Violation], int]:
    """Lint files and/or directory trees (both phases).

    Returns ``(violations, n_files_checked)``; violations are sorted by
    location.
    """
    violations, n_files, _ = lint_paths_with_sources(
        paths, select, semantic, jobs=jobs
    )
    return violations, n_files


def lint_paths_with_sources(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    semantic: bool = True,
    jobs: int = 1,
) -> tuple[list[Violation], int, dict[str, str]]:
    """Like :func:`lint_paths`, also returning path → source for every file
    that could be read (the baseline/SARIF writers need line content).

    ``jobs`` parallelises the per-file phase across processes (0 = one
    per CPU); the semantic phase always runs serially in this process,
    and the output is identical for every ``jobs`` value.
    """
    select_ids = tuple(select) if select is not None else None
    _, semantic_ids, include_parse = split_select(select_ids)
    if jobs < 0:
        raise LintUsageError(f"--jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    all_files = list(iter_python_files(paths))
    n_files = len(all_files)
    if jobs > 1 and n_files > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, n_files)) as pool:
            results = list(
                pool.map(
                    _lint_worker,
                    [str(p) for p in all_files],
                    [select_ids] * n_files,
                )
            )
    else:
        results = [_lint_worker(str(p), select_ids) for p in all_files]
    violations: list[Violation] = []
    sources: dict[str, str] = {}
    files: list[tuple[Path, str]] = []
    for file_path, (posix, source, found) in zip(all_files, results):
        violations.extend(found)
        if source is not None:
            sources[posix] = source
            files.append((file_path, source))
    if semantic and (semantic_ids is None or semantic_ids):
        from tools.sketchlint.semantic import analyze_project

        violations.extend(analyze_project(files, select=semantic_ids))
    if not include_parse:
        violations = [v for v in violations if v.rule != PARSE_ERROR_RULE]
    violations.sort(key=Violation.sort_key)
    return violations, n_files, sources
