"""File discovery, suppression handling and rule dispatch."""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

from tools.sketchlint.rules import RULES, Rule
from tools.sketchlint.violations import FileContext, Violation

#: Rule id reserved for files the linter cannot parse.
PARSE_ERROR_RULE = "SKL000"

_SUPPRESS_RE = re.compile(r"#\s*sketchlint:\s*disable=([A-Za-z0-9_,\s]+)")

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


class LintUsageError(Exception):
    """Bad invocation: unknown rule id, missing path, …"""


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled on that line (or {"ALL"})."""
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        }
        if rules:
            suppressions.setdefault(lineno, set()).update(rules)
    return suppressions


def _is_suppressed(violation: Violation, suppressions: dict[int, set[str]]) -> bool:
    rules = suppressions.get(violation.line)
    if rules is None:
        return False
    return "ALL" in rules or violation.rule in rules


def select_rules(select: Iterable[str] | None) -> tuple[Rule, ...]:
    """Resolve a ``--select`` list (None = all rules)."""
    if select is None:
        return RULES
    wanted = [token.strip().upper() for token in select if token.strip()]
    by_id = {rule.id: rule for rule in RULES}
    unknown = [token for token in wanted if token not in by_id]
    if unknown:
        raise LintUsageError(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"known: {', '.join(by_id)}"
        )
    return tuple(by_id[token] for token in wanted)


def lint_source(source: str, path: str, rules: tuple[Rule, ...] = RULES) -> list[Violation]:
    """Lint one already-read source string ("path" is for scoping/reports)."""
    normalised = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=normalised)
    except SyntaxError as error:
        return [
            Violation(
                rule=PARSE_ERROR_RULE,
                path=normalised,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                message=f"file does not parse: {error.msg}",
            )
        ]
    context = FileContext(path=normalised, tree=tree, source=source)
    suppressions = _parse_suppressions(source)
    found: list[Violation] = []
    for rule in rules:
        if not rule.applies_to(normalised):
            continue
        for violation in rule.check(context):
            if not _is_suppressed(violation, suppressions):
                found.append(violation)
    found.sort(key=Violation.sort_key)
    return found


def lint_file(path: str | Path, rules: tuple[Rule, ...] = RULES) -> list[Violation]:
    """Lint one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return lint_source(source, str(file_path), rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint, skipping caches
    and build artifacts."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS:
                    continue
                if any(part.endswith(".egg-info") for part in candidate.parts):
                    continue
                yield candidate
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise LintUsageError(f"path does not exist: {path}")


def lint_paths(
    paths: Iterable[str | Path], select: Iterable[str] | None = None
) -> tuple[list[Violation], int]:
    """Lint files and/or directory trees.

    Returns ``(violations, n_files_checked)``; violations are sorted by
    location.
    """
    rules = select_rules(select)
    violations: list[Violation] = []
    n_files = 0
    for file_path in iter_python_files(paths):
        n_files += 1
        violations.extend(lint_file(file_path, rules))
    violations.sort(key=Violation.sort_key)
    return violations, n_files
