"""Suppression comments, shared by the per-file and semantic phases.

Two forms are recognised:

* line-level — ``# sketchlint: disable=SKL003`` on the offending line
  silences the named rules (or ``ALL``) for that line only;
* file-level — ``# sketchlint: disable-file=SKL005`` anywhere in the file
  (conventionally the first lines) silences the named rules for the whole
  file.  This is the escape hatch for ``examples/`` and ``benchmarks/``,
  which legitimately use wall clocks.
"""

from __future__ import annotations

import re

from tools.sketchlint.violations import Violation

_LINE_RE = re.compile(r"#\s*sketchlint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_RE = re.compile(r"#\s*sketchlint:\s*disable-file=([A-Za-z0-9_,\s]+)")


def _split_rules(raw: str) -> set[str]:
    return {token.strip().upper() for token in raw.split(",") if token.strip()}


class Suppressions:
    """Parsed suppression state for one source file."""

    def __init__(self, source: str):
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _FILE_RE.search(line)
            if match is not None:
                self.file_wide |= _split_rules(match.group(1))
                continue
            match = _LINE_RE.search(line)
            if match is not None:
                rules = _split_rules(match.group(1))
                if rules:
                    self.by_line.setdefault(lineno, set()).update(rules)

    def hides(self, violation: Violation) -> bool:
        if "ALL" in self.file_wide or violation.rule in self.file_wide:
            return True
        rules = self.by_line.get(violation.line)
        if rules is None:
            return False
        return "ALL" in rules or violation.rule in rules


def filter_suppressed(
    violations: list[Violation], sources: dict[str, str]
) -> list[Violation]:
    """Drop violations hidden by suppression comments in their file."""
    cache: dict[str, Suppressions] = {}
    kept: list[Violation] = []
    for violation in violations:
        source = sources.get(violation.path)
        if source is not None:
            if violation.path not in cache:
                cache[violation.path] = Suppressions(source)
            if cache[violation.path].hides(violation):
                continue
        kept.append(violation)
    return kept
