"""Core datatypes shared by the sketchlint rules, engine and CLI."""

from __future__ import annotations

import ast
from dataclasses import dataclass


@dataclass(frozen=True)
class Violation:
    """One rule hit at a source location.

    Ordering is (path, line, col, rule) so reports read top-to-bottom per
    file regardless of which rule fired first.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to inspect one source file.

    ``path`` is normalised to POSIX separators so scope predicates can
    match package sub-paths (``/repro/sketch/``) portably.
    """

    path: str
    tree: ast.Module
    source: str

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )
