"""Component micro-benchmarks: throughput of the pipeline's stages.

Unlike the figure benches (single-shot experiment regenerations), these
use pytest-benchmark's statistics properly — many rounds over small
units — to characterise the substrate:

* EnumTree enumeration rate (patterns/second) on both dataset shapes;
* extended Prüfer construction;
* Rabin fingerprinting of pattern sequences;
* ξ evaluation (both families) over a value batch;
* AMS batch updates and point estimates;
* end-to-end ``SketchTree.update`` per tree.

No paper claims here — these are the engineering numbers a downstream
user would ask for.
"""

import numpy as np
import pytest

from repro import SketchTree, SketchTreeConfig
from repro.core.encoding import PatternEncoder
from repro.datasets import DblpGenerator, TreebankGenerator
from repro.enumtree import enumerate_patterns
from repro.prufer import prufer_of_nested
from repro.sketch import BchXiGenerator, SketchMatrix, XiGenerator


@pytest.fixture(scope="module")
def treebank_tree():
    return next(iter(TreebankGenerator(seed=1).generate(1)))


@pytest.fixture(scope="module")
def dblp_tree():
    return next(iter(DblpGenerator(seed=1).generate(1)))


@pytest.fixture(scope="module")
def sample_patterns(treebank_tree):
    return enumerate_patterns(treebank_tree, 4)


def test_micro_enumtree_treebank(benchmark, treebank_tree):
    patterns = benchmark(enumerate_patterns, treebank_tree, 4)
    assert patterns


def test_micro_enumtree_dblp(benchmark, dblp_tree):
    patterns = benchmark(enumerate_patterns, dblp_tree, 4)
    assert patterns


def test_micro_prufer(benchmark, sample_patterns):
    def encode_all():
        return [prufer_of_nested(p) for p in sample_patterns]

    sequences = benchmark(encode_all)
    assert len(sequences) == len(sample_patterns)


def test_micro_rabin_encoding(benchmark, sample_patterns):
    def encode_all():
        encoder = PatternEncoder(seed=1)  # fresh: defeat the memo
        return [encoder.encode(p) for p in sample_patterns]

    values = benchmark(encode_all)
    assert len(values) == len(sample_patterns)


def test_micro_rabin_encoding_batched(benchmark, sample_patterns):
    """The columnar counterpart of per-pattern encoding (same values)."""

    def encode_all():
        encoder = PatternEncoder(seed=1)  # fresh: defeat the memo
        return encoder.encode_batch(sample_patterns)

    values = benchmark(encode_all)
    assert len(values) == len(sample_patterns)


@pytest.mark.parametrize(
    "family", ["polynomial", "bch"], ids=["xi-polynomial", "xi-bch"]
)
def test_micro_xi_batch(benchmark, family):
    if family == "polynomial":
        generator = XiGenerator(350, independence=4, seed=1)
    else:
        generator = BchXiGenerator(350, seed=1)
    values = np.arange(1024, dtype=np.int64) * 7919 % (1 << 31)
    signs = benchmark(generator.xi_batch, values)
    assert signs.shape == (350, 1024)


def test_micro_ams_batch_update(benchmark):
    matrix = SketchMatrix(50, 7, seed=1)
    values = np.arange(1024, dtype=np.int64) * 104729 % (1 << 31)

    benchmark(matrix.update_batch, values)
    assert matrix.counters.any()


def test_micro_ams_estimate(benchmark):
    matrix = SketchMatrix(50, 7, seed=1)
    matrix.update_counts({v: 3 for v in range(500)})
    estimate = benchmark(matrix.estimate, 42)
    assert isinstance(estimate, float)


def test_micro_sketchtree_update(benchmark, treebank_tree):
    config = SketchTreeConfig(
        s1=50, s2=7, max_pattern_edges=4, n_virtual_streams=229, seed=1
    )
    synopsis = SketchTree(config)
    benchmark(synopsis.update, treebank_tree)
    assert synopsis.n_trees > 0


def test_micro_sketchtree_update_batch(benchmark):
    """Cross-tree micro-batching: 16 trees per ``update_batch`` call."""
    config = SketchTreeConfig(
        s1=50, s2=7, max_pattern_edges=4, n_virtual_streams=229, seed=1
    )
    synopsis = SketchTree(config)
    trees = list(TreebankGenerator(seed=2).generate(16))
    benchmark(synopsis.update_batch, trees)
    assert synopsis.n_trees > 0
