"""Table 1: dataset statistics (trees, k, distinct pattern counts).

Paper claims asserted:

* the deterministic approach needs one counter per distinct pattern, a
  number in the millions at paper scale — here, far exceeding the
  SketchTree synopsis size at the same stream scale;
* TREEBANK is deep/narrow, DBLP shallow/bushy.
"""

from repro.experiments import table1


def test_table1(benchmark, scale, save_result):
    result = benchmark.pedantic(table1.run, args=(scale,), rounds=1, iterations=1)
    save_result("table1_datasets", table1.render(result))

    by_name = {row.dataset: row for row in result.rows}
    treebank, dblp = by_name["TREEBANK"], by_name["DBLP"]

    # Shape signatures of the two corpora.
    assert treebank.mean_depth > dblp.mean_depth
    assert dblp.mean_fanout > treebank.mean_fanout
    assert treebank.max_pattern_size == scale.treebank_k
    assert dblp.max_pattern_size == scale.dblp_k

    # The deterministic-counting burden: distinct patterns vastly exceed
    # what a fixed synopsis would store (the Section 1 motivation).
    for row in result.rows:
        assert row.n_distinct_patterns > 1000
        assert row.n_distinct_patterns <= row.n_occurrences
