"""Appendix: the Figure 10 protocol on the XMark-like third corpus.

Claims asserted:

* the XMark-like stream's shape interpolates the two paper corpora on
  both axes (depth between DBLP and TREEBANK; fan-out between TREEBANK
  and DBLP) — so this genuinely probes the middle of the shape spectrum;
* the Figure 10 trends hold there too: error falls with top-k and with
  lower selectivity — the algorithm's behaviour, not a shape artifact.
"""

import math

from repro.experiments import appendix_xmark


def finite(series):
    return [value for value in series if not math.isnan(value)]


def test_appendix_xmark(benchmark, scale, save_result):
    result = benchmark.pedantic(
        appendix_xmark.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_result("appendix_xmark", appendix_xmark.render(result))

    assert result.shapes.depth_interpolates()
    assert result.shapes.fanout_interpolates()

    accuracy = result.accuracy
    n_buckets = len(accuracy.points[0].bucket_errors)
    # Top-k helps in every populated bucket.
    for bucket in range(n_buckets):
        series = finite(accuracy.errors_for_bucket(bucket))
        if len(series) >= 2:
            assert min(series[1:]) <= series[0]
    # Less selective estimates better.
    first = finite(accuracy.errors_for_bucket(0))
    last = finite(accuracy.errors_for_bucket(n_buckets - 1))
    if first and last:
        assert sum(last) / len(last) < sum(first) / len(first)
