"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
synthetic streams, asserts the paper's *qualitative* claims (who wins,
what falls, where the crossovers are), and writes the rendered table to
``benchmarks/results/`` for side-by-side comparison with the paper (see
EXPERIMENTS.md).

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``default`` /
``paper`` (default: ``default``).  Dataset preparation is cached across
benches within the session, so the first bench of a session pays it once.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.scale import by_name

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The experiment scale for this benchmark session."""
    return by_name(os.environ.get("REPRO_BENCH_SCALE", "default"))


@pytest.fixture(scope="session")
def save_result():
    """Writes a rendered experiment table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
