"""Figure 12(c,d): PRODUCT workload estimation error (TREEBANK).

Paper claims asserted: error falls with top-k and with larger ``s1``,
and — the Section 7.9.2 comparison — PRODUCT errors exceed SUM errors at
matched settings, because the X²/2! estimator's variance is larger
(Appendix B bounds it by ``(1+2n)/4 · SJ²`` against the sum's linear
``2(t−1) · SJ``).
"""

import math

import pytest

from repro.experiments import fig12


@pytest.fixture(scope="module")
def results(scale):
    return {
        s1: fig12.run("product", s1=s1, scale=scale)
        for s1 in scale.treebank_s1
    }


def test_fig12c_product_low_s1(benchmark, scale, save_result, results):
    result = benchmark.pedantic(
        lambda: results[scale.treebank_s1[0]], rounds=1, iterations=1
    )
    save_result("fig12c_product_s1low", fig12.render(result))
    _assert_topk_trend(result)


def test_fig12d_product_high_s1(benchmark, scale, save_result, results):
    result = benchmark.pedantic(
        lambda: results[scale.treebank_s1[1]], rounds=1, iterations=1
    )
    save_result("fig12d_product_s1high", fig12.render(result))
    _assert_topk_trend(result)


def test_fig12_product_error_exceeds_sum_error(benchmark, scale, results):
    def compare():
        sum_result = fig12.run("sum", s1=scale.treebank_s1[1], scale=scale)
        product_result = results[scale.treebank_s1[1]]
        return sum_result.overall_mean_error(), product_result.overall_mean_error()

    sum_error, product_error = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert product_error > sum_error


def _assert_topk_trend(result):
    per_point = []
    for point in result.points:
        values = [
            b.mean_relative_error
            for b in point.bucket_errors
            if b.n_queries and not math.isnan(b.mean_relative_error)
        ]
        if values:
            per_point.append(sum(values) / len(values))
    assert len(per_point) >= 2
    assert per_point[-1] < per_point[0]
