"""Ablations: virtual streams, CountSketch, mapping function, Theorem 2.

Design-choice claims asserted (DESIGN.md's ablation index):

* more virtual streams → lower error (Section 5.3's self-join argument);
* AMS + virtual streams is competitive with an equal-memory CountSketch
  (the paper's reduction is estimator-agnostic);
* Rabin fingerprints are word-sized and collision-free in practice,
  while exact pairing values overflow any machine word (Section 6.1's
  motivation);
* Theorem 2's combined sum estimator is not worse than summing
  per-pattern estimates (Section 3.2's comparison).
"""

from repro.experiments import ablations


def test_ablation_virtual_streams(benchmark, scale, save_result):
    result = benchmark.pedantic(
        ablations.run_virtual_streams,
        args=(scale,),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_virtual_streams", ablations.render_virtual_streams(result))
    errors = {p.n_streams: p.mean_error for p in result.points}
    counts = sorted(errors)
    assert errors[counts[-1]] < errors[counts[0]]


def test_ablation_countsketch(benchmark, scale, save_result):
    result = benchmark.pedantic(
        ablations.run_countsketch, args=(scale,), rounds=1, iterations=1
    )
    save_result("ablation_countsketch", ablations.render_countsketch(result))
    # Same memory order; both estimators deliver sane errors and neither
    # is catastrophically worse — the reduction is estimator-agnostic.
    assert result.countsketch_memory_bytes <= 1.2 * result.ams_memory_bytes
    assert result.ams_mean_error < 10
    assert result.countsketch_mean_error < 10


def test_ablation_mapping(benchmark, scale, save_result):
    result = benchmark.pedantic(
        ablations.run_mapping, args=(scale,), rounds=1, iterations=1
    )
    save_result("ablation_mapping", ablations.render_mapping(result))
    assert result.pairing_collisions == 0          # injective by theorem
    assert result.rabin_collisions <= 3            # ~n^2/2^32 expected
    assert result.rabin_max_value_bits <= 31       # fits a machine word
    assert result.pairing_max_value_bits > 64      # overflows any word


def test_ablation_sum_estimator(benchmark, scale, save_result):
    result = benchmark.pedantic(
        ablations.run_sum_estimator, args=(scale,), rounds=1, iterations=1
    )
    save_result("ablation_sum_estimator", ablations.render_sum_estimator(result))
    assert result.combined_mean_error <= result.naive_mean_error * 1.2
