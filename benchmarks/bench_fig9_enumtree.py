"""Figure 9: EnumTree cost and generated-pattern counts vs k.

Paper claims asserted:

* the number of generated patterns grows with ``k`` (Figure 9(b));
* processing time grows *almost linearly* with the number of patterns
  (Figures 9(a) vs 9(b) have the same shape) — asserted as the
  per-pattern cost staying within a small factor across ``k``;
* DBLP generates more patterns than TREEBANK per tree at its ``k``
  because of its larger fan-out ("more choices for picking child edges").
"""

import pytest

from repro.experiments import fig09


@pytest.mark.parametrize("dataset", ["treebank", "dblp"])
def test_fig9_enumtree(benchmark, scale, save_result, dataset):
    result = benchmark.pedantic(
        fig09.run, args=(dataset, scale), rounds=1, iterations=1
    )
    save_result(f"fig09_enumtree_{dataset}", fig09.render(result))

    counts = [p.n_patterns for p in result.points]
    times = [p.total_seconds for p in result.points]
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]
    assert all(t > 0 for t in times)

    # Linearity: per-pattern cost within a small factor across k (ignore
    # tiny-k points where fixed per-tree overhead dominates).
    rates = [p.microseconds_per_pattern for p in result.points
             if p.n_patterns > 10_000]
    if len(rates) >= 2:
        assert max(rates) <= 5 * min(rates)


def test_fig9_dblp_generates_more_patterns_per_tree(benchmark, scale):
    def run_both():
        return fig09.run("treebank", scale), fig09.run("dblp", scale)

    treebank, dblp = benchmark.pedantic(run_both, rounds=1, iterations=1)
    k = min(scale.treebank_k, scale.dblp_k)
    per_tree_treebank = treebank.points[k - 1].n_patterns / scale.treebank_trees
    per_tree_dblp = dblp.points[k - 1].n_patterns / scale.dblp_trees
    assert per_tree_dblp > per_tree_treebank
