"""Figure 10(a,b): TREEBANK estimation error vs top-k at s1 = 25 and 50.

Paper claims asserted:

* average relative error drops as the top-k size grows (frequent-value
  deletion shrinks the virtual streams' self-join sizes) — gradually, as
  reported for TREEBANK's moderate skew;
* less selective buckets estimate better (Theorem 1);
* raising ``s1`` (25 → 50) lowers error at matched top-k;
* the reproduction reaches the paper's headline 10–15%-error regime in
  its least selective bucket;
* the paper-style memory accounting grows linearly in the top-k size.
"""

import math

import pytest

from repro.experiments import fig10


def finite(series):
    return [value for value in series if not math.isnan(value)]


@pytest.fixture(scope="module")
def results(scale):
    s1_low, s1_high = scale.treebank_s1
    return {
        s1: fig10.run("treebank", s1=s1, scale=scale)
        for s1 in (s1_low, s1_high)
    }


def test_fig10a_treebank_low_s1(benchmark, scale, save_result, results):
    s1_low = scale.treebank_s1[0]
    result = benchmark.pedantic(
        lambda: results[s1_low], rounds=1, iterations=1
    )
    save_result("fig10a_treebank_s1low", fig10.render(result))
    _assert_topk_and_selectivity_trends(result)


def test_fig10b_treebank_high_s1(benchmark, scale, save_result, results):
    s1_high = scale.treebank_s1[1]
    result = benchmark.pedantic(
        lambda: results[s1_high], rounds=1, iterations=1
    )
    save_result("fig10b_treebank_s1high", fig10.render(result))
    _assert_topk_and_selectivity_trends(result)

    # Headline claim: 10-15% error is reachable in the least selective
    # bucket at the higher s1 with a healthy top-k (quantitative claims
    # need the default scale or more).
    if scale.name != "smoke":
        last_bucket = result.errors_for_bucket(
            len(result.points[0].bucket_errors) - 1
        )
        assert min(finite(last_bucket)) < 0.20


def test_fig10_higher_s1_is_more_accurate(benchmark, scale, results):
    s1_low, s1_high = scale.treebank_s1

    def mean_errors():
        out = {}
        for s1, result in results.items():
            values = [
                b.mean_relative_error
                for p in result.points
                for b in p.bucket_errors
                if b.n_queries and not math.isnan(b.mean_relative_error)
            ]
            out[s1] = sum(values) / len(values)
        return out

    means = benchmark.pedantic(mean_errors, rounds=1, iterations=1)
    assert means[s1_high] < means[s1_low]


def _assert_topk_and_selectivity_trends(result):
    n_buckets = len(result.points[0].bucket_errors)

    # Memory grows with top-k (the paper's x-axis annotation).
    memories = [p.memory_bytes for p in result.points]
    assert memories == sorted(memories)
    assert memories[-1] > memories[0]

    # Top-k trend: the best swept top-k beats top-k = 0 in every
    # populated bucket, and the largest top-k beats it in the aggregate.
    for bucket in range(n_buckets):
        series = finite(result.errors_for_bucket(bucket))
        if len(series) >= 2:
            assert min(series[1:]) <= series[0]
    per_point = []
    for point in result.points:
        values = [
            b.mean_relative_error
            for b in point.bucket_errors
            if b.n_queries and not math.isnan(b.mean_relative_error)
        ]
        if values:
            per_point.append(sum(values) / len(values))
    if len(per_point) >= 2:
        assert per_point[-1] < per_point[0]

    # Selectivity trend: the least selective bucket beats the most
    # selective one at every top-k (Theorem 1: error ∝ 1/f_q).
    first = finite(result.errors_for_bucket(0))
    last = finite(result.errors_for_bucket(n_buckets - 1))
    if first and last:
        assert sum(last) / len(last) < sum(first) / len(first)
