"""Observability-overhead benchmark: metrics enabled vs. disabled ingest.

The :mod:`repro.obs` layer promises that the disabled default costs one
attribute check per hot-path call and that enabling a full
:class:`~repro.obs.MetricsRegistry` stays within a few percent of the
uninstrumented throughput.  This bench measures both ends of that claim
on one generated stream:

* **disabled** — :class:`~repro.stream.engine.StreamProcessor` feeding a
  :class:`~repro.core.sketchtree.SketchTree` with the process-default
  :data:`~repro.obs.NULL_REGISTRY` (exactly what every pre-existing
  caller gets).
* **enabled** — the same run with an explicit
  :class:`~repro.obs.MetricsRegistry` wired through the processor and
  the synopsis, so every span, histogram, and pull instrument is live.

Both runs ingest the *same* trees into identically-configured synopses;
the script asserts the final sketch counters are bit-identical before
reporting any number, so "low overhead" is never bought with a different
answer.  Timing uses ``ProcessingStats.elapsed_seconds`` (consumer-only
timed region — generator cost excluded); after one untimed warm-up per
side the repeats *interleave* disabled and enabled runs and the minimum
per side is kept, so scheduler noise, cache state, and frequency scaling
hit both sides alike.  Results are
written as JSON — by default ``BENCH_obs.json`` at the repo root, which
CI uploads as an artifact — and the script exits non-zero when the
enabled-path overhead exceeds ``--max-overhead-pct``.

Run::

    PYTHONPATH=src python benchmarks/bench_obs.py --trees 120
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro import SketchTree, SketchTreeConfig
from repro.datasets import DblpGenerator, TreebankGenerator
from repro.obs import MetricsRegistry, Registry, to_json_dict
from repro.stream import StreamProcessor

REPO_ROOT = Path(__file__).resolve().parent.parent

GENERATORS = {"treebank": TreebankGenerator, "dblp": DblpGenerator}


def make_config(seed: int) -> SketchTreeConfig:
    """The paper's experimental configuration (Section 7.1)."""
    return SketchTreeConfig(
        s1=50, s2=7, max_pattern_edges=4, n_virtual_streams=229, seed=seed
    )


def ingest_once(
    trees: list, batch_trees: int, seed: int, metrics: Registry | None
) -> tuple[float, SketchTree]:
    """One full ingest; returns the consumer-only elapsed time."""
    synopsis = SketchTree(make_config(seed), metrics=metrics)
    processor = StreamProcessor(
        [synopsis], batch_trees=batch_trees, metrics=metrics
    )
    stats = processor.run(trees)
    return stats.elapsed_seconds, synopsis


def best_of_interleaved(
    repeats: int, trees: list, batch_trees: int, seed: int, registry: Registry
) -> tuple[float, float, SketchTree, SketchTree]:
    """Minimum elapsed time per side over ``repeats`` interleaved ingests.

    One untimed warm-up per side first, then disabled/enabled runs
    alternate — strictly sequential sides let interpreter warm-up,
    cache state, and frequency scaling bias whichever side runs first,
    which on small CI streams dwarfs the effect being measured.  Every
    repeat builds a fresh synopsis; the last pair is returned for the
    bit-identity check (all repeats are deterministic, so any would do).
    """
    ingest_once(trees, batch_trees, seed, None)  # warm-up, untimed
    ingest_once(trees, batch_trees, seed, registry)
    best_disabled = best_enabled = float("inf")
    disabled_st = enabled_st = None
    for _ in range(repeats):
        elapsed, disabled_st = ingest_once(trees, batch_trees, seed, None)
        best_disabled = min(best_disabled, elapsed)
        elapsed, enabled_st = ingest_once(trees, batch_trees, seed, registry)
        best_enabled = min(best_enabled, elapsed)
    assert disabled_st is not None and enabled_st is not None
    return best_disabled, best_enabled, disabled_st, enabled_st


def counters_of(synopsis: SketchTree) -> list[np.ndarray]:
    """Every virtual stream's counter matrix, in residue order."""
    streams = synopsis.streams
    return [streams.sketch(r).counters for r in range(streams.n_streams)]


def run_dataset(
    name: str, n_trees: int, batch_trees: int, seed: int, repeats: int
) -> dict:
    trees = list(GENERATORS[name](seed=seed + 1).generate(n_trees))

    registry = MetricsRegistry()
    disabled_seconds, enabled_seconds, disabled_st, enabled_st = (
        best_of_interleaved(repeats, trees, batch_trees, seed, registry)
    )

    identical = disabled_st.n_values == enabled_st.n_values and all(
        np.array_equal(a, b)
        for a, b in zip(counters_of(disabled_st), counters_of(enabled_st))
    )
    overhead_pct = (
        (enabled_seconds - disabled_seconds) / disabled_seconds * 100.0
        if disabled_seconds > 0
        else 0.0
    )
    exported = to_json_dict(registry)
    return {
        "dataset": name,
        "n_trees": n_trees,
        "n_values": enabled_st.n_values,
        "batch_trees": batch_trees,
        "repeats": repeats,
        "bit_identical": bool(identical),
        "disabled": {
            "seconds": round(disabled_seconds, 6),
            "trees_per_second": round(n_trees / disabled_seconds, 2),
        },
        "enabled": {
            "seconds": round(enabled_seconds, 6),
            "trees_per_second": round(n_trees / enabled_seconds, 2),
            "n_counters": len(exported["counters"]),
            "n_gauges": len(exported["gauges"]),
            "n_histograms": len(exported["histograms"]),
        },
        "overhead_pct": round(overhead_pct, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--trees", type=int, default=120, help="trees per dataset (default 120)"
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        choices=sorted(GENERATORS),
        default=sorted(GENERATORS),
        help="datasets to ingest (default: both)",
    )
    parser.add_argument(
        "--batch-trees",
        type=int,
        default=32,
        help="cross-tree micro-batch size (default 32)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="ingests per side; minimum elapsed is reported (default 3)",
    )
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=5.0,
        help="fail (exit 1) when metrics-enabled ingest is more than this "
        "many percent slower than disabled (default 5.0)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_obs.json",
        help="output JSON path (default: BENCH_obs.json at the repo root)",
    )
    args = parser.parse_args(argv)

    runs = []
    for name in args.datasets:
        result = run_dataset(
            name, args.trees, args.batch_trees, args.seed, args.repeats
        )
        runs.append(result)
        print(
            f"{name:>9}: {result['n_trees']} trees / {result['n_values']} values  "
            f"disabled {result['disabled']['seconds']:.3f}s  "
            f"enabled {result['enabled']['seconds']:.3f}s  "
            f"overhead {result['overhead_pct']:+.1f}%  "
            f"bit_identical={result['bit_identical']}"
        )

    report = {
        "benchmark": "obs_overhead",
        "config": {"s1": 50, "s2": 7, "k": 4, "p": 229, "seed": args.seed},
        "max_overhead_pct": args.max_overhead_pct,
        "runs": runs,
        "worst_overhead_pct": max(r["overhead_pct"] for r in runs),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not all(r["bit_identical"] for r in runs):
        print(
            "FAIL: metrics-enabled counters diverged from the disabled path",
            file=sys.stderr,
        )
        return 1
    if report["worst_overhead_pct"] > args.max_overhead_pct:
        print(
            f"FAIL: metrics overhead {report['worst_overhead_pct']:.1f}% exceeds "
            f"the {args.max_overhead_pct:.1f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
