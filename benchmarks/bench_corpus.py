"""Accuracy-vs-exact report on real-format corpora (the scenario pack).

Every other benchmark streams synthetic generators; this one runs the
:mod:`repro.corpora` readers over the committed fixture corpora — real
Penn-Treebank bracketed trees and a real-shape DBLP XML document — and
compares SketchTree estimates against :class:`~repro.ExactCounter`
ground truth on a query set drawn from the corpus itself (the most
frequent patterns, a mid-frequency band, and singletons).

Real corpora exercise what the synthetic Zipf vocabularies cannot: the
label alphabet *grows along the stream* (new authors, venues, words keep
arriving), so the report also records distinct-label counts at ten
checkpoints of each stream.

Gates (the CI smoke step relies on these):

* each fixture corpus parses to its expected tree count through
  :class:`~repro.stream.engine.StreamProcessor`;
* every exact count in the query set is positive and every estimate is
  finite;
* the mean absolute relative error over the frequent-pattern band stays
  under ``FREQUENT_ERROR_GATE`` (deterministic: fixed seed, fixed
  fixtures).

Results are written as JSON — by default ``BENCH_corpus.json`` at the
repo root, which CI uploads as an artifact.

Run::

    PYTHONPATH=src python benchmarks/bench_corpus.py
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.corpora import CorpusReader
from repro.query.pattern import pattern_edges
from repro.stream import StreamProcessor
from repro.trees import from_nested, to_sexpr

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "corpora"

#: The committed fixture corpora and the tree counts they must parse to.
CORPORA = {
    "wsj-ptb": {
        "reader": dict(
            path=str(FIXTURES / "wsj_sample_*.mrg"),
            format="ptb",
            functions="remove",
            remove_empty=True,
        ),
        "expected_trees": 11,
    },
    "negra-export": {
        "reader": dict(
            path=str(FIXTURES / "negra_sample.export"),
            format="export",
        ),
        "expected_trees": 3,
    },
    "dblp-xml": {
        "reader": dict(
            path=str(FIXTURES / "dblp_sample.xml"),
            format="dblp-xml",
        ),
        "expected_trees": 8,
    },
}

#: Mean |relative error| allowed over the frequent-pattern band
#: (deterministic runs measure ~0.02-0.06; headroom for config tweaks).
FREQUENT_ERROR_GATE = 0.25

#: Queries sampled per corpus: most frequent / mid-band / singletons.
N_FREQUENT, N_MID, N_RARE = 6, 4, 2


def make_config(seed: int) -> SketchTreeConfig:
    """A mid-size synopsis: small enough for CI, sized per Theorem 1."""
    return SketchTreeConfig(
        s1=64, s2=7, max_pattern_edges=3, n_virtual_streams=229, seed=seed
    )


def label_growth(trees, checkpoints: int = 10) -> list[dict]:
    """Distinct-label counts at ``checkpoints`` positions of the stream."""
    seen: set[str] = set()
    series: list[dict] = []
    n = len(trees)
    marks = sorted({max(1, round(n * i / checkpoints)) for i in range(1, checkpoints + 1)})
    for position, tree in enumerate(trees, start=1):
        seen.update(tree.labels)
        if position in marks or position == n:
            series.append({"trees": position, "distinct_labels": len(seen)})
    return series


def pick_queries(exact: ExactCounter) -> list[tuple]:
    """Frequent, mid-band and singleton patterns from the exact table."""
    ranked = exact.counts.most_common()
    frequent = [pattern for pattern, _ in ranked[:N_FREQUENT]]
    mid_start = len(ranked) // 2
    mid = [pattern for pattern, _ in ranked[mid_start : mid_start + N_MID]]
    rare = [pattern for pattern, count in reversed(ranked) if count >= 1][:N_RARE]
    out: list[tuple] = []
    for pattern in frequent + mid + rare:
        if pattern not in out:
            out.append(pattern)
    return out


def run_corpus(name: str, spec: dict, seed: int) -> dict:
    trees = CorpusReader(**spec["reader"]).trees()
    if len(trees) != spec["expected_trees"]:
        raise AssertionError(
            f"{name}: expected {spec['expected_trees']} trees, parsed {len(trees)}"
        )
    config = make_config(seed)
    synopsis = SketchTree(config)
    stats = StreamProcessor([synopsis]).run(trees)
    assert stats.n_trees == len(trees)
    exact = ExactCounter(config.max_pattern_edges).ingest(trees)

    rows = []
    frequent_errors = []
    for rank, pattern in enumerate(pick_queries(exact)):
        truth = exact.count_ordered(pattern)
        estimate = synopsis.estimate_ordered(pattern)
        assert truth > 0, f"{name}: zero exact count for {pattern!r}"
        assert math.isfinite(estimate), f"{name}: non-finite estimate"
        relative_error = abs(estimate - truth) / truth
        if rank < N_FREQUENT:
            frequent_errors.append(relative_error)
        rows.append(
            {
                "pattern": to_sexpr(from_nested(pattern)),
                "edges": pattern_edges(pattern),
                "exact": truth,
                "estimate": round(estimate, 2),
                "relative_error": round(relative_error, 4),
            }
        )
    mean_frequent = sum(frequent_errors) / len(frequent_errors)
    assert mean_frequent <= FREQUENT_ERROR_GATE, (
        f"{name}: mean frequent-band relative error {mean_frequent:.3f} "
        f"exceeds gate {FREQUENT_ERROR_GATE}"
    )
    all_errors = [row["relative_error"] for row in rows]
    return {
        "n_trees": len(trees),
        "n_values": synopsis.n_values,
        "distinct_patterns": len(exact.counts),
        "label_growth": label_growth(trees),
        "queries": rows,
        "mean_frequent_relative_error": round(mean_frequent, 4),
        "mean_relative_error": round(sum(all_errors) / len(all_errors), 4),
    }


def render(report: dict) -> str:
    lines = []
    for name, section in report["corpora"].items():
        growth = section["label_growth"]
        lines.append(
            f"{name}: {section['n_trees']} trees, "
            f"{section['n_values']} pattern occurrences, "
            f"{section['distinct_patterns']} distinct patterns, "
            f"labels {growth[0]['distinct_labels']} -> "
            f"{growth[-1]['distinct_labels']}"
        )
        for row in section["queries"]:
            lines.append(
                f"  exact {row['exact']:>5}  est {row['estimate']:>8.1f}  "
                f"relerr {row['relative_error']:>6.3f}  {row['pattern'][:64]}"
            )
        lines.append(
            f"  mean relerr: frequent band "
            f"{section['mean_frequent_relative_error']:.3f}, "
            f"all {section['mean_relative_error']:.3f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_corpus.json"),
        help="JSON report path (default: BENCH_corpus.json at the repo root)",
    )
    args = parser.parse_args(argv)
    report = {
        "config": {
            "s1": 64,
            "s2": 7,
            "max_pattern_edges": 3,
            "n_virtual_streams": 229,
            "seed": args.seed,
        },
        "frequent_error_gate": FREQUENT_ERROR_GATE,
        "corpora": {
            name: run_corpus(name, spec, args.seed)
            for name, spec in CORPORA.items()
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render(report))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
