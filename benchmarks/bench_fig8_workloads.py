"""Figure 8: single-pattern query workload histograms for both datasets.

Paper claims asserted: every selectivity bucket is populated, query
counts sit inside their bucket's range, and the actual counts span a
wide interval (the paper's [872, 18256] / [206, 4547], scaled).
"""

import pytest

from repro.experiments import fig08


@pytest.mark.parametrize("dataset", ["treebank", "dblp"])
def test_fig8_workload(benchmark, scale, save_result, dataset):
    result = benchmark.pedantic(
        fig08.run, args=(dataset, scale), rounds=1, iterations=1
    )
    save_result(f"fig08_workload_{dataset}", fig08.render(result))

    assert result.n_queries > 0
    populated = [b for b in result.buckets if b.n_queries]
    # Nearly every paper bucket is populated at the default scale; smoke
    # streams are too short to fill the narrow low-selectivity buckets.
    assert len(populated) >= (3 if scale.name != "smoke" else 1)
    for bucket in populated:
        assert bucket.min_count >= 1
        assert bucket.max_count >= bucket.min_count
    # Counts span the buckets: the widest bucket's max dominates the
    # narrowest bucket's min (by a clear factor once the stream is long
    # enough for counts to spread — i.e. beyond the smoke scale).
    factor = 2 if scale.name != "smoke" else 1
    assert populated[-1].max_count >= factor * populated[0].min_count
