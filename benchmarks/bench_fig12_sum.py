"""Figure 12(a,b): SUM workload estimation error (TREEBANK).

Paper claims asserted: average relative error falls steadily with the
top-k size and falls when ``s1`` grows — the same trends as Figure 10,
now for the Theorem 2 multi-pattern estimator.
"""

import math

import pytest

from repro.experiments import fig12


def finite(series):
    return [value for value in series if not math.isnan(value)]


@pytest.fixture(scope="module")
def results(scale):
    return {
        s1: fig12.run("sum", s1=s1, scale=scale) for s1 in scale.treebank_s1
    }


def test_fig12a_sum_low_s1(benchmark, scale, save_result, results):
    result = benchmark.pedantic(
        lambda: results[scale.treebank_s1[0]], rounds=1, iterations=1
    )
    save_result("fig12a_sum_s1low", fig12.render(result))
    _assert_topk_trend(result)


def test_fig12b_sum_high_s1(benchmark, scale, save_result, results):
    result = benchmark.pedantic(
        lambda: results[scale.treebank_s1[1]], rounds=1, iterations=1
    )
    save_result("fig12b_sum_s1high", fig12.render(result))
    _assert_topk_trend(result)


def test_fig12_sum_s1_improves_accuracy(benchmark, scale, results):
    s1_low, s1_high = scale.treebank_s1
    means = benchmark.pedantic(
        lambda: {s1: results[s1].overall_mean_error() for s1 in results},
        rounds=1,
        iterations=1,
    )
    assert means[s1_high] < means[s1_low]


def _assert_topk_trend(result):
    per_point = []
    for point in result.points:
        values = [
            b.mean_relative_error
            for b in point.bucket_errors
            if b.n_queries and not math.isnan(b.mean_relative_error)
        ]
        if values:
            per_point.append(sum(values) / len(values))
    assert len(per_point) >= 2
    assert min(per_point[1:]) < per_point[0]
    assert per_point[-1] < per_point[0]
