"""Figure 11: SUM and PRODUCT composite workload histograms.

Paper claims asserted: the composite workloads exist at the expected
sizes, every query combines the right number of *distinct* patterns, and
selectivities follow the paper's definitions (sum resp. product of
actual counts over total sequences processed).
"""

import pytest

from repro.experiments import fig11
from repro.experiments.data import prepared


@pytest.mark.parametrize("kind,n_patterns", [("sum", 3), ("product", 2)])
def test_fig11_composite_workload(benchmark, scale, save_result, kind, n_patterns):
    result = benchmark.pedantic(
        fig11.run, args=(kind, scale), rounds=1, iterations=1
    )
    save_result(f"fig11_{kind}_workload", fig11.render(result))

    assert result.n_queries > 0
    workload = fig11.composite_workload(kind, scale)
    exact = prepared("treebank", scale).exact
    for query in workload.all_queries():
        assert len(set(query.patterns)) == n_patterns
        counts = [exact.count_ordered(p) for p in query.patterns]
        if kind == "sum":
            assert query.actual == sum(counts)
        else:
            product = 1
            for count in counts:
                product *= count
            assert query.actual == product
        assert query.selectivity == pytest.approx(query.actual / exact.n_values)
