"""Ablations for the extension subsystems: ξ family and self-join budget.

Claims asserted:

* the BCH parity-check ξ construction (the paper's) and the polynomial
  hashing family deliver statistically comparable accuracy — both are
  four-wise independent, so Theorem 1 makes no distinction;
* top-k tracking removes the bulk of the stream's self-join size under
  skew, and the synopsis' own F2 estimate of the residual agrees with
  the exact accounting within the estimator's tolerance — the foundation
  of the self-reported error bars.
"""

import pytest

from repro.experiments import ablations


def test_ablation_xi_family(benchmark, scale, save_result):
    result = benchmark.pedantic(
        ablations.run_xi_family, args=(scale,), rounds=1, iterations=1
    )
    save_result("ablation_xi_family", ablations.render_xi_family(result))
    assert result.polynomial_mean_error < 10
    assert result.bch_mean_error < 10
    # Comparable accuracy: neither construction wins by a large factor.
    ratio = result.bch_mean_error / max(result.polynomial_mean_error, 1e-9)
    assert 0.4 < ratio < 2.5


def test_ablation_false_positives(benchmark, scale, save_result):
    result = benchmark.pedantic(
        ablations.run_false_positives, args=(scale,), rounds=1, iterations=1
    )
    save_result(
        "ablation_false_positives", ablations.render_false_positives(result)
    )
    # Equation 10's consequence: phantoms are almost never estimated as
    # frequent, and their typical estimate is far below the heavy tail.
    assert result.false_frequent_rate <= 0.02
    assert result.mean_absolute_estimate < result.frequent_threshold


def test_ablation_query_size(benchmark, scale, save_result):
    result = benchmark.pedantic(
        ablations.run_query_size, args=(scale,), rounds=1, iterations=1
    )
    save_result("ablation_query_size", ablations.render_query_size(result))
    assert len(result.points) >= 3
    # The size effect is a frequency effect: mean counts fall with size...
    actuals = [p.mean_actual for p in result.points]
    assert actuals[-1] < actuals[0]
    # ...and relative error is (weakly) worse for the largest patterns
    # than the smallest, at fixed memory.
    errors = [p.mean_relative_error for p in result.points]
    assert errors[-1] >= errors[0] * 0.8


def test_ablation_stream_scaling(benchmark, scale, save_result):
    result = benchmark.pedantic(
        ablations.run_stream_scaling, args=(scale,), rounds=1, iterations=1
    )
    save_result(
        "ablation_stream_scaling", ablations.render_stream_scaling(result)
    )
    errors = [
        p.mean_relative_error
        for p in result.points
        if p.mean_relative_error == p.mean_relative_error
    ]
    assert len(errors) >= 2
    # Fixed memory, growing stream: relative error for fixed-selectivity
    # queries stays bounded (no blow-up with stream length).
    assert max(errors) <= 3.0 * min(errors) + 0.05


def test_ablation_self_join(benchmark, scale, save_result):
    result = benchmark.pedantic(
        ablations.run_self_join, args=(scale,), rounds=1, iterations=1
    )
    save_result("ablation_self_join", ablations.render_self_join(result))

    off, on = result.points
    # Top-k removes a substantial share of the self-join mass.
    assert on.true_residual_self_join < 0.7 * off.true_residual_self_join
    # The synopsis' own F2 estimate tracks the exact accounting.
    for point in result.points:
        assert point.sketch_estimated_self_join == pytest.approx(
            point.true_residual_self_join, rel=0.5
        )
