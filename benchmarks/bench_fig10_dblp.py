"""Figure 10(c,d): DBLP estimation error vs top-k at s1 = 50 and 75.

Paper claims asserted, beyond the shared trends (error falls with top-k
and with selectivity, rises with fewer s1):

* the *drastic* improvement at a small top-k: DBLP's pattern
  distribution is more skewed, so deleting few frequent patterns already
  collapses the error (Section 7.7: 248% → 11% at top-k 1 → 50).  We
  assert the first non-zero top-k point captures most of the total
  improvement, unlike TREEBANK's gradual curve.
"""

import math

import pytest

from repro.experiments import fig10


def finite(series):
    return [value for value in series if not math.isnan(value)]


@pytest.fixture(scope="module")
def results(scale):
    s1_low, s1_high = scale.dblp_s1
    return {
        s1: fig10.run("dblp", s1=s1, scale=scale) for s1 in (s1_low, s1_high)
    }


def test_fig10c_dblp_low_s1(benchmark, scale, save_result, results):
    result = benchmark.pedantic(
        lambda: results[scale.dblp_s1[0]], rounds=1, iterations=1
    )
    save_result("fig10c_dblp_s1low", fig10.render(result))
    _assert_trends(result)


def test_fig10d_dblp_high_s1(benchmark, scale, save_result, results):
    result = benchmark.pedantic(
        lambda: results[scale.dblp_s1[1]], rounds=1, iterations=1
    )
    save_result("fig10d_dblp_s1high", fig10.render(result))
    _assert_trends(result)
    # Headline: the least selective *populated* bucket reaches the
    # paper's regime (quantitative claims need the default scale or more).
    if scale.name != "smoke":
        last = finite(
            result.errors_for_bucket(len(result.points[0].bucket_errors) - 1)
        )
        assert last and min(last) < 0.25


def test_fig10_dblp_sharp_early_improvement(benchmark, scale, results):
    """The skew signature: the first small top-k captures >= 60% of the
    total error reduction in the aggregate (DBLP's 'drastic' drop)."""

    def early_share():
        result = results[scale.dblp_s1[0]]
        per_point = []
        for point in result.points:
            values = [
                b.mean_relative_error
                for b in point.bucket_errors
                if b.n_queries and not math.isnan(b.mean_relative_error)
            ]
            per_point.append(sum(values) / len(values))
        total_drop = per_point[0] - min(per_point)
        first_drop = per_point[0] - per_point[1]
        return first_drop / total_drop if total_drop > 0 else 1.0

    share = benchmark.pedantic(early_share, rounds=1, iterations=1)
    # The sharp drop needs enough stream for the skew to materialise.
    assert share >= (0.6 if scale.name != "smoke" else 0.2)


def _assert_trends(result):
    n_buckets = len(result.points[0].bucket_errors)
    memories = [p.memory_bytes for p in result.points]
    assert memories == sorted(memories)
    for bucket in range(n_buckets):
        series = finite(result.errors_for_bucket(bucket))
        if len(series) >= 2:
            assert min(series[1:]) <= series[0]
    first = finite(result.errors_for_bucket(0))
    last = finite(result.errors_for_bucket(n_buckets - 1))
    if first and last:
        assert sum(last) / len(last) < sum(first) / len(first)
