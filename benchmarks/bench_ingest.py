"""Ingest-throughput benchmark: columnar batch path vs. legacy per-value path.

The columnar refactor claims the same bit-identical synopsis at a
fraction of the per-value dispatch cost.  This bench measures both ends
of that claim on one generated stream:

* **legacy** — the pre-columnar inner loop: per-pattern
  ``PatternEncoder.encode`` followed by one
  ``streams.sketch(streams.residue(v)).update(v)`` per encoded value
  (exactly what ``SketchTree.update`` compiled down to before the
  :class:`~repro.core.batch.EncodedBatch` pipeline).
* **batched** — the shipped path:
  :class:`~repro.stream.engine.StreamProcessor` with cross-tree
  micro-batching feeding ``SketchTree.update_batch``.

Both runs ingest the *same* trees into identically-configured synopses;
the script asserts the final sketch counters are bit-identical before
reporting any number, so the speedup is never bought with a different
answer.  A third run repeats the batched path with top-k tracking on
(``topk_size=8``); its gate is the fold/unfold invariant of
:mod:`repro.core.topk` — unfolding every tracker must restore counters
bit-identical to the ``topk_size=0`` run.  Results (trees/sec,
values/sec, speedup, top-k overhead) are written as JSON — by default
``BENCH_ingest.json`` at the repo root, which CI uploads as an
artifact.

The batched run is instrumented with a live
:class:`~repro.obs.MetricsRegistry`, so the report also breaks the
batched wall time into the pipeline's span stages (enumerate → encode →
apply) — the numbers profiling would otherwise have to re-derive.

Run::

    PYTHONPATH=src python benchmarks/bench_ingest.py --trees 120
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import SketchTree, SketchTreeConfig
from repro.datasets import DblpGenerator, TreebankGenerator
from repro.enumtree.enumerate import iter_pattern_multiset
from repro.obs import MetricsRegistry
from repro.stream import StreamProcessor

REPO_ROOT = Path(__file__).resolve().parent.parent

GENERATORS = {"treebank": TreebankGenerator, "dblp": DblpGenerator}


#: Per-stream tracker capacity for the top-k run (Section 5.2).
TOPK_SIZE = 8


def make_config(seed: int, topk_size: int = 0) -> SketchTreeConfig:
    """The paper's experimental configuration (Section 7.1)."""
    return SketchTreeConfig(
        s1=50, s2=7, max_pattern_edges=4, n_virtual_streams=229, seed=seed,
        topk_size=topk_size,
    )


def ingest_legacy(synopsis: SketchTree, trees: list) -> tuple[float, int]:
    """The pre-columnar loop: encode and route one value at a time.

    Bookkeeping (n_trees/n_values) is updated outside the timed region so
    both paths report identical metadata; the timed region covers exactly
    the work the old ``SketchTree.update`` did per tree.
    """
    k = synopsis.config.max_pattern_edges
    encoder = synopsis.encoder
    streams = synopsis.streams
    # Collect setup garbage and pause the collector for the timed region:
    # whichever path runs second would otherwise pay cycle-scan time over
    # the first path's still-live caches (both paths get the same terms).
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        n_values = 0
        for tree in trees:
            for pattern in iter_pattern_multiset(tree, k):
                value = encoder.encode(pattern)
                streams.sketch(streams.residue(value)).update(value)
                n_values += 1
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, n_values


def ingest_batched(
    synopsis: SketchTree, trees: list, batch_trees: int
) -> tuple[float, int]:
    """The shipped path: StreamProcessor cross-tree micro-batching."""
    processor = StreamProcessor([synopsis], batch_trees=batch_trees)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        processor.run(trees)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, synopsis.n_values


def stage_timings(metrics: MetricsRegistry) -> dict[str, dict]:
    """Per-stage span totals (``ingest_*_seconds`` histograms) as JSON.

    The batched synopsis runs with a live registry, so the pipeline's own
    spans (enumerate → encode → apply, see ``SketchTree.update_batch``)
    accumulate the stage breakdown as a side effect of the timed run.
    """
    stages: dict[str, dict] = {}
    for histogram in metrics.all_histograms():
        name = histogram.name
        if name.startswith("ingest_") and name.endswith("_seconds"):
            stage = name[len("ingest_") : -len("_seconds")]
            stages[stage] = {
                "seconds": round(histogram.total, 6),
                "spans": histogram.count,
            }
    return stages


def counters_of(synopsis: SketchTree) -> list[np.ndarray]:
    """Every virtual stream's counter matrix, in residue order."""
    streams = synopsis.streams
    return [streams.sketch(r).counters for r in range(streams.n_streams)]


def run_dataset(name: str, n_trees: int, batch_trees: int, seed: int) -> dict:
    trees = list(GENERATORS[name](seed=seed + 1).generate(n_trees))

    legacy_st = SketchTree(make_config(seed))
    legacy_seconds, n_values = ingest_legacy(legacy_st, trees)

    metrics = MetricsRegistry()
    batched_st = SketchTree(make_config(seed), metrics=metrics)
    batched_seconds, batched_values = ingest_batched(batched_st, trees, batch_trees)

    identical = batched_values == n_values and all(
        np.array_equal(a, b)
        for a, b in zip(counters_of(legacy_st), counters_of(batched_st))
    )

    # The top-k run: same stream, per-stream trackers on.  Tracking
    # deletes heavy values from the counters as it goes, so the gate is
    # the fold/unfold protocol's invariant instead of raw equality:
    # unfolding every tracker must restore counters bit-identical to the
    # topk_size=0 run (same seed -> same xi family).
    topk_st = SketchTree(make_config(seed, topk_size=TOPK_SIZE))
    topk_seconds, topk_values = ingest_batched(topk_st, trees, batch_trees)
    for _, tracker in list(topk_st.streams.iter_trackers()):
        tracker.unfold()
    topk_identical = topk_values == n_values and all(
        np.array_equal(a, b)
        for a, b in zip(counters_of(batched_st), counters_of(topk_st))
    )

    speedup = legacy_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    return {
        "dataset": name,
        "n_trees": n_trees,
        "n_values": n_values,
        "batch_trees": batch_trees,
        "bit_identical": bool(identical),
        "legacy": {
            "seconds": round(legacy_seconds, 6),
            "trees_per_second": round(n_trees / legacy_seconds, 2),
            "values_per_second": round(n_values / legacy_seconds, 2),
        },
        "batched": {
            "seconds": round(batched_seconds, 6),
            "trees_per_second": round(n_trees / batched_seconds, 2),
            "values_per_second": round(n_values / batched_seconds, 2),
            "stages": stage_timings(metrics),
        },
        "topk": {
            "topk_size": TOPK_SIZE,
            "seconds": round(topk_seconds, 6),
            "trees_per_second": round(n_trees / topk_seconds, 2),
            "values_per_second": round(n_values / topk_seconds, 2),
            "overhead_vs_batched": round(
                topk_seconds / batched_seconds if batched_seconds > 0 else 0.0,
                3,
            ),
            "unfold_bit_identical": bool(topk_identical),
        },
        "speedup": round(speedup, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--trees", type=int, default=120, help="trees per dataset (default 120)"
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        choices=sorted(GENERATORS),
        default=sorted(GENERATORS),
        help="datasets to ingest (default: both)",
    )
    parser.add_argument(
        "--batch-trees",
        type=int,
        default=32,
        help="cross-tree micro-batch size for the batched path (default 32)",
    )
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_ingest.json",
        help="output JSON path (default: BENCH_ingest.json at the repo root)",
    )
    args = parser.parse_args(argv)

    runs = []
    for name in args.datasets:
        result = run_dataset(name, args.trees, args.batch_trees, args.seed)
        runs.append(result)
        print(
            f"{name:>9}: {result['n_trees']} trees / {result['n_values']} values  "
            f"legacy {result['legacy']['seconds']:.3f}s  "
            f"batched {result['batched']['seconds']:.3f}s  "
            f"topk {result['topk']['seconds']:.3f}s  "
            f"speedup {result['speedup']:.1f}x  "
            f"bit_identical={result['bit_identical']}  "
            f"unfold_bit_identical={result['topk']['unfold_bit_identical']}"
        )

    report = {
        "benchmark": "ingest_throughput",
        "config": {"s1": 50, "s2": 7, "k": 4, "p": 229, "seed": args.seed},
        "runs": runs,
        "min_speedup": min(r["speedup"] for r in runs),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not all(r["bit_identical"] for r in runs):
        print("FAIL: batched counters diverged from the legacy path", file=sys.stderr)
        return 1
    if not all(r["topk"]["unfold_bit_identical"] for r in runs):
        print(
            "FAIL: unfolded top-k counters diverged from the topk_size=0 run",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
