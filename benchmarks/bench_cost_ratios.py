"""Stream-processing cost ratios (Sections 7.6/7.7 text claims).

Paper claims asserted:

* raising ``s1`` raises processing cost markedly (the paper measured
  ≈2.3× for a 2× s1 on TREEBANK, ≈1.6× for 1.5× s1 on DBLP) — asserted
  as a clearly super-unit ratio;
* raising the top-k size is nearly free (paper: 4–10%) — asserted as a
  small ratio bounded well below the s1 ratio.

Absolute times are host- and substrate-specific; the *ordering* of the
two knobs' costs is the reproducible claim.
"""

import pytest

from repro.experiments import cost


@pytest.mark.parametrize("dataset", ["treebank", "dblp"])
def test_cost_ratios(benchmark, scale, save_result, dataset):
    result = benchmark.pedantic(
        cost.run,
        args=(dataset, scale),
        kwargs={"n_trees": 120},
        rounds=1,
        iterations=1,
    )
    save_result(f"cost_ratios_{dataset}", cost.render(result))

    s1_low, s1_high = (
        scale.treebank_s1 if dataset == "treebank" else scale.dblp_s1
    )
    low_topk, high_topk = 1, 8
    s1_ratio = result.s1_ratio(s1_low, s1_high, low_topk)
    topk_ratio = result.topk_ratio(s1_low, low_topk, high_topk)

    # Growing top-k costs little (the paper's 4-10% claim).
    assert topk_ratio < 1.5
    if dataset == "treebank":
        # Deep k=6 trees generate large per-tree pattern batches, so the
        # sketch-update cost (∝ s1) is visible: the s1 knob costs real
        # time, as in the paper.
        assert s1_ratio > 1.05
        assert topk_ratio < s1_ratio
    else:
        # Shallow k=4 DBLP-like trees are dominated by enumeration and
        # encoding in this substrate, so a 1.5x s1 step barely moves the
        # wall clock — a documented substrate difference (the paper's
        # C++ build was sketch-update-bound).  Only sanity-bound it.
        assert 0.7 < s1_ratio < 2.5
