"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.scale == "default"
        assert args.dataset is None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "huge"])

    def test_snapshot_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["snapshot"])

    def test_snapshot_save_defaults(self):
        args = build_parser().parse_args(["snapshot", "save", "out.sktsnap"])
        assert args.snapshot_command == "save"
        assert args.path == "out.sktsnap"
        assert args.dataset == "dblp"
        assert args.topk == 0 and not args.summary


class TestMain:
    def test_table1_smoke(self, capsys):
        assert main(["table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "TREEBANK" in out and "DBLP" in out

    def test_fig8_single_dataset(self, capsys):
        assert main(["fig8", "--scale", "smoke", "--dataset", "dblp"]) == 0
        out = capsys.readouterr().out
        assert "DBLP" in out
        assert "TREEBANK" not in out

    def test_out_file_written(self, capsys, tmp_path):
        out = tmp_path / "report.txt"
        assert main(["table1", "--scale", "smoke", "--out", str(out)]) == 0
        capsys.readouterr()
        assert "Table 1" in out.read_text()

    def test_fig10_with_s1_override(self, capsys):
        code = main(
            ["fig10", "--scale", "smoke", "--dataset", "treebank", "--s1", "25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "s1=25" in out
        assert "s1=50" not in out


class TestSnapshotCommands:
    OPTS = ["--n-trees", "40", "--s1", "10", "--s2", "3", "--streams", "13"]

    def test_save_then_load_and_query(self, capsys, tmp_path):
        path = tmp_path / "snap.sktsnap"
        assert main(["snapshot", "save", str(path)] + self.OPTS) == 0
        assert path.exists()
        capsys.readouterr()
        code = main(["snapshot", "load", str(path), "--query", "(article (author))"])
        assert code == 0
        out = capsys.readouterr().out
        assert "format version:  1" in out
        assert "trees:           40" in out
        assert "estimate:" in out

    def test_load_corrupt_snapshot_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.sktsnap"
        path.write_bytes(b"not a snapshot")
        assert main(["snapshot", "load", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_continues_from_checkpoint(self, capsys, tmp_path):
        ckpts = str(tmp_path / "ckpts")
        base = ["snapshot", "resume", ckpts, "--every", "10"] + self.OPTS
        assert main(base) == 0
        first = capsys.readouterr().out
        assert "resumed from 0 checkpointed trees" in first
        assert main(base[:5] + ["--n-trees", "60"] + self.OPTS[2:]) == 0
        second = capsys.readouterr().out
        assert "resumed from 40 checkpointed trees; processed 20 more" in second
