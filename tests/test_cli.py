"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.scale == "default"
        assert args.dataset is None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "huge"])


class TestMain:
    def test_table1_smoke(self, capsys):
        assert main(["table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "TREEBANK" in out and "DBLP" in out

    def test_fig8_single_dataset(self, capsys):
        assert main(["fig8", "--scale", "smoke", "--dataset", "dblp"]) == 0
        out = capsys.readouterr().out
        assert "DBLP" in out
        assert "TREEBANK" not in out

    def test_out_file_written(self, capsys, tmp_path):
        out = tmp_path / "report.txt"
        assert main(["table1", "--scale", "smoke", "--out", str(out)]) == 0
        capsys.readouterr()
        assert "Table 1" in out.read_text()

    def test_fig10_with_s1_override(self, capsys):
        code = main(
            ["fig10", "--scale", "smoke", "--dataset", "treebank", "--s1", "25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "s1=25" in out
        assert "s1=50" not in out
