"""Shared hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.trees.builders import from_nested
from repro.trees.tree import LabeledTree, Nested

#: Small label alphabet so random trees repeat labels (more interesting
#: pattern collisions and arrangements).
LABELS = ("A", "B", "C", "D", "E")

labels = st.sampled_from(LABELS)


def nested_trees(
    max_nodes: int = 10, label_strategy: st.SearchStrategy[str] = labels
) -> st.SearchStrategy[Nested]:
    """Random nested-tuple trees with roughly ``max_nodes`` nodes.

    ``max_nodes`` bounds the recursion's *leaf* budget; single-child
    chains can exceed it (hypothesis counts leaves, not nodes).  Tests
    that are super-linearly sensitive to tree size must filter with
    :func:`count_nodes`.
    """

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        return st.tuples(label_strategy, st.lists(children, max_size=3).map(tuple))

    base = st.tuples(label_strategy, st.just(()))
    return st.recursive(base, extend, max_leaves=max_nodes)


def labeled_trees(max_nodes: int = 10) -> st.SearchStrategy[LabeledTree]:
    """Random :class:`LabeledTree` objects."""
    return nested_trees(max_nodes).map(from_nested)


def count_nodes(nested: Nested) -> int:
    label, children = nested
    return 1 + sum(count_nodes(child) for child in children)
