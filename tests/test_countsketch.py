"""Tests for the CountSketch baseline."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sketch import CountSketch


class TestCountSketch:
    def test_recovers_heavy_value(self):
        sketch = CountSketch(width=128, depth=5, seed=1)
        sketch.update_counts({10: 1000, **{v: 2 for v in range(100, 160)}})
        assert abs(sketch.estimate(10) - 1000) < 60

    def test_exact_when_no_collisions(self):
        sketch = CountSketch(width=1024, depth=5, seed=2)
        sketch.update(7, 13)
        assert sketch.estimate(7) == 13.0

    def test_absent_value_small(self):
        sketch = CountSketch(width=256, depth=5, seed=3)
        sketch.update_counts({v: 3 for v in range(50)})
        assert abs(sketch.estimate(9999)) <= 9  # at most a few colliders

    def test_update_batch_equals_loop(self):
        a = CountSketch(32, 3, seed=4)
        b = CountSketch(32, 3, seed=4)
        values = [3, 1, 4, 1, 5]
        for v in values:
            a.update(v)
        b.update_batch(np.asarray(values, dtype=np.int64))
        assert np.array_equal(a.counters, b.counters)

    def test_deletion(self):
        sketch = CountSketch(64, 3, seed=5)
        sketch.update(9, 8)
        sketch.update(9, -8)
        assert not sketch.counters.any()

    def test_deterministic_given_seed(self):
        a, b = CountSketch(64, 3, seed=6), CountSketch(64, 3, seed=6)
        a.update(1, 5)
        b.update(1, 5)
        assert np.array_equal(a.counters, b.counters)

    def test_memory_accounting(self):
        sketch = CountSketch(width=100, depth=4, seed=0)
        assert sketch.memory_bytes() == 100 * 4 * 8

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigError):
            CountSketch(0, 3)
        with pytest.raises(ConfigError):
            CountSketch(8, 0)

    def test_unbiased_over_draws(self):
        counts = {1: 30, 2: 20, 3: 10, 4: 5}
        estimates = []
        for seed in range(200):
            sketch = CountSketch(8, 1, seed=seed)
            sketch.update_counts(counts)
            estimates.append(sketch.estimate(2))
        assert abs(np.mean(estimates) - 20) < 6
