"""Property test: the synopsis is a pure function of (config, stream).

This is the runtime counterpart of sketchlint's SKL001/SKL006/SKL008
rules — every random choice in the system is derived from the config
seed, so two synopses built with the same config over the same stream
must agree *bit for bit*, not just statistically.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SketchTreeConfig
from repro.core.sketchtree import SketchTree
from repro.trees.builders import from_nested

from tests.strategies import nested_trees

streams = st.lists(nested_trees(max_nodes=6), min_size=1, max_size=5)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _build(seed: int, trees, topk_size: int = 0) -> SketchTree:
    config = SketchTreeConfig(
        s1=6,
        s2=3,
        max_pattern_edges=2,
        n_virtual_streams=11,
        seed=seed,
        topk_size=topk_size,
    )
    synopsis = SketchTree(config)
    for nested in trees:
        synopsis.update(from_nested(nested))
    return synopsis


def _assert_identical_sketch_state(a: SketchTree, b: SketchTree) -> None:
    counters_a = dict(a.streams.iter_sketches())
    counters_b = dict(b.streams.iter_sketches())
    assert counters_a.keys() == counters_b.keys()
    for residue, matrix in counters_a.items():
        assert np.array_equal(matrix.counters, counters_b[residue].counters), (
            f"virtual stream {residue} diverged"
        )


@settings(max_examples=25, deadline=None)
@given(trees=streams, seed=seeds)
def test_same_config_same_stream_is_bit_identical(trees, seed):
    first = _build(seed, trees)
    second = _build(seed, trees)
    assert first.n_trees == second.n_trees
    assert first.n_values == second.n_values
    _assert_identical_sketch_state(first, second)


@settings(max_examples=10, deadline=None)
@given(trees=streams, seed=seeds)
def test_determinism_holds_with_topk_tracking(trees, seed):
    first = _build(seed, trees, topk_size=4)
    second = _build(seed, trees, topk_size=4)
    _assert_identical_sketch_state(first, second)
    tracked_a = {r: t.tracked for r, t in first.streams.iter_trackers()}
    tracked_b = {r: t.tracked for r, t in second.streams.iter_trackers()}
    assert tracked_a == tracked_b


@settings(max_examples=10, deadline=None)
@given(trees=streams, seed=seeds)
def test_estimates_are_reproducible(trees, seed):
    first = _build(seed, trees)
    second = _build(seed, trees)
    for query in ("(A (B))", "(B (A) (C))"):
        assert first.estimate_ordered(query) == second.estimate_ordered(query)
