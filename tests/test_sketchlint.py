"""Self-tests for the sketchlint static-analysis pass.

Three layers: (1) every SKL rule fires exactly once on its dedicated
fixture and nowhere else; (2) suppression comments and rule selection
work; (3) the real ``src/repro`` tree is violation-free — the invariant
the whole pass exists to keep true — and the CLI exit codes agree.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.sketchlint import (
    RULES,
    RULES_BY_ID,
    LintUsageError,
    lint_file,
    lint_paths,
    lint_source,
    select_rules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "sketchlint"
SRC = REPO_ROOT / "src"

RULE_FIXTURES = {
    "SKL001": FIXTURES / "bad/repro/sketch/skl001_stdlib_random.py",
    "SKL002": FIXTURES / "bad/repro/sketch/skl002_float_eq.py",
    "SKL003": FIXTURES / "bad/repro/sketch/skl003_mutable_default.py",
    "SKL004": FIXTURES / "bad/repro/sketch/skl004_wall_clock.py",
    "SKL005": FIXTURES / "bad/repro/stream/skl005_bare_except.py",
    "SKL006": FIXTURES / "bad/repro/sketch/skl006_seed_literal.py",
    "SKL007": FIXTURES / "bad/repro/trees/node.py",
    "SKL008": FIXTURES / "bad/repro/sketch/skl008_import_time_rng.py",
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_fixture_triggers_its_rule_exactly_once(self, rule_id):
        violations = lint_file(RULE_FIXTURES[rule_id])
        assert [v.rule for v in violations] == [rule_id]

    def test_every_rule_has_a_fixture(self):
        assert sorted(RULE_FIXTURES) == sorted(rule.id for rule in RULES)

    def test_clean_fixture_triggers_nothing(self):
        violations = lint_file(
            FIXTURES / "clean/repro/sketch/clean_module.py"
        )
        assert violations == []

    def test_violation_carries_location(self):
        (violation,) = lint_file(RULE_FIXTURES["SKL001"])
        assert violation.line == 3
        assert violation.path.endswith("skl001_stdlib_random.py")
        assert "SKL001" in violation.render()


class TestScoping:
    def test_skl001_ignores_random_outside_hot_paths(self):
        source = "import random\n"
        assert lint_source(source, "src/repro/experiments/fig99.py") == []
        assert lint_source(source, "src/repro/sketch/xi.py") != []

    def test_skl006_exempts_config_module(self):
        source = "def f(factory):\n    return factory(seed=777)\n"
        assert lint_source(source, "src/repro/core/config.py") == []
        assert lint_source(source, "src/repro/core/other.py") != []

    def test_skl007_only_designated_modules(self):
        source = "class Thing:\n    pass\n"
        assert lint_source(source, "src/repro/query/pattern.py") == []
        assert [v.rule for v in lint_source(source, "src/repro/trees/node.py")] == [
            "SKL007"
        ]

    def test_skl007_accepts_dataclass_slots(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Thing:\n"
            "    x: int\n"
        )
        assert lint_source(source, "src/repro/trees/node.py") == []


class TestSuppression:
    def test_inline_disable_comment_silences_rule(self):
        violations = lint_file(
            FIXTURES / "suppressed/repro/sketch/suppressed_module.py"
        )
        assert violations == []

    def test_disable_all_token(self):
        source = "import random  # sketchlint: disable=all\n"
        assert lint_source(source, "src/repro/sketch/x.py") == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = "import random  # sketchlint: disable=SKL002\n"
        assert [v.rule for v in lint_source(source, "src/repro/sketch/x.py")] == [
            "SKL001"
        ]


class TestEngine:
    def test_select_rules_unknown_id_raises(self):
        with pytest.raises(LintUsageError):
            select_rules(["SKL999"])

    def test_select_rules_subset(self):
        rules = select_rules(["skl003", "SKL005"])
        assert [rule.id for rule in rules] == ["SKL003", "SKL005"]

    def test_syntax_error_reported_not_raised(self):
        violations = lint_source("def broken(:\n", "src/repro/sketch/x.py")
        assert [v.rule for v in violations] == ["SKL000"]

    def test_lint_paths_walks_directories(self):
        violations, n_files = lint_paths([FIXTURES / "bad"])
        assert n_files == len(RULE_FIXTURES)
        assert sorted(v.rule for v in violations) == sorted(RULE_FIXTURES)

    def test_rule_catalogue_is_consistent(self):
        assert set(RULES_BY_ID) == {rule.id for rule in RULES}
        assert all(rule.summary for rule in RULES)


class TestSourceTreeIsClean:
    def test_src_repro_is_violation_free(self):
        """The invariant this PR establishes: the shipped tree lints clean."""
        violations, n_files = lint_paths([SRC])
        assert n_files > 50  # sanity: the walk actually found the package
        assert violations == []

    def test_tools_package_is_violation_free(self):
        violations, _ = lint_paths([REPO_ROOT / "tools"])
        assert violations == []


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.sketchlint", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_clean_tree_exits_zero(self):
        result = self._run("src")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 violations" in result.stdout

    def test_violation_fixture_exits_one_with_rule_id(self):
        result = self._run(str(RULE_FIXTURES["SKL001"]))
        assert result.returncode == 1
        assert "SKL001" in result.stdout

    def test_json_format(self):
        result = self._run("--format", "json", str(RULE_FIXTURES["SKL006"]))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["files_checked"] == 1
        assert [v["rule"] for v in payload["violations"]] == ["SKL006"]

    def test_unknown_rule_exits_two(self):
        result = self._run("--select", "SKL999", "src")
        assert result.returncode == 2

    def test_list_rules(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for rule in RULES:
            assert rule.id in result.stdout
