"""End-to-end tests for the SketchTree synopsis."""

import numpy as np
import pytest

from repro import (
    Count,
    ExactCounter,
    QueryNode,
    SketchTree,
    SketchTreeConfig,
)
from repro.errors import ConfigError, QueryError
from repro.trees import from_sexpr

CONFIG = SketchTreeConfig(
    s1=60, s2=7, max_pattern_edges=3, n_virtual_streams=31, seed=7
)

STREAM = [
    "(A (B) (C))",
    "(A (C) (B))",
    "(A (B (C)))",
    "(A (B) (C))",
    "(X (A (B)))",
    "(A (B) (B))",
]


def build(config=CONFIG, repeat=10):
    synopsis = SketchTree(config)
    exact = ExactCounter(config.max_pattern_edges)
    for _ in range(repeat):
        for text in STREAM:
            tree = from_sexpr(text)
            synopsis.update(tree)
            exact.update(tree)
    return synopsis, exact


class TestEndToEnd:
    def test_ordered_estimates_match_exact(self):
        synopsis, exact = build()
        for sexpr in ["(A (B) (C))", "(A (B (C)))", "(A (B))", "(X (A))"]:
            pattern = from_sexpr(sexpr).to_nested()
            estimate = synopsis.estimate_ordered(pattern)
            actual = exact.count_ordered(pattern)
            assert abs(estimate - actual) <= max(5, 0.3 * actual)

    def test_absent_pattern_near_zero(self):
        synopsis, _ = build()
        assert abs(synopsis.estimate_ordered("(Z (Q))")) < 10

    def test_unordered(self):
        synopsis, exact = build()
        pattern = from_sexpr("(A (B) (C))").to_nested()
        estimate = synopsis.estimate_unordered(pattern)
        actual = exact.count_unordered(pattern)
        assert abs(estimate - actual) <= max(5, 0.3 * actual)

    def test_sum(self):
        synopsis, exact = build()
        patterns = [
            from_sexpr("(A (B))").to_nested(),
            from_sexpr("(A (C))").to_nested(),
        ]
        estimate = synopsis.estimate_sum(patterns)
        actual = exact.count_sum(patterns)
        assert abs(estimate - actual) <= max(6, 0.3 * actual)

    def test_sum_accepts_a_generator(self):
        # estimate_sum takes Iterable: a one-shot generator must give
        # the same answer as the equivalent list (SKL301 bug class).
        synopsis, _ = build()
        patterns = [
            from_sexpr("(A (B))").to_nested(),
            from_sexpr("(A (C))").to_nested(),
        ]
        from_list = synopsis.estimate_sum(patterns)
        from_generator = synopsis.estimate_sum(p for p in patterns)
        assert from_generator == from_list

    def test_sum_rejects_duplicates(self):
        synopsis, _ = build(repeat=1)
        with pytest.raises(QueryError):
            synopsis.estimate_sum(["(A (B))", "(A (B))"])

    def test_or_query(self):
        synopsis, exact = build()
        estimate = synopsis.estimate_or("(A (B|C))")
        actual = exact.count_sum(
            [("A", (("B", ()),)), ("A", (("C", ()),))]
        )
        assert abs(estimate - actual) <= max(6, 0.3 * actual)

    def test_expression(self):
        synopsis, exact = build()
        expression = Count("(A (B))") - Count("(A (C))")
        estimate = synopsis.estimate_expression(expression)
        actual = exact.evaluate_expression(expression)
        assert abs(estimate - actual) <= 20

    def test_product_expression_needs_independence(self):
        synopsis, _ = build(repeat=1)
        product3 = Count("(A (B))") * Count("(A (C))") * Count("(X (A))")
        with pytest.raises(ConfigError):
            synopsis.estimate_expression(product3)

    def test_product_expression_with_independence(self):
        config = SketchTreeConfig(
            s1=120, s2=7, max_pattern_edges=3, n_virtual_streams=31,
            independence=6, seed=7,
        )
        synopsis = SketchTree(config)
        exact = ExactCounter(3)
        for _ in range(20):
            for text in STREAM:
                tree = from_sexpr(text)
                synopsis.update(tree)
                exact.update(tree)
        expression = Count("(A (B))") * Count("(A (C))")
        estimate = synopsis.estimate_expression(expression)
        actual = exact.evaluate_expression(expression)
        assert actual > 0
        assert abs(estimate - actual) <= 0.8 * actual

    def test_query_too_large_rejected(self):
        synopsis, _ = build(repeat=1)
        synopsis.estimate_ordered("(A (B (C (D))))")  # 3 edges: allowed
        with pytest.raises(QueryError):
            synopsis.estimate_ordered("(A (B (C (D (E)))))")  # 4 edges

    def test_zero_edge_query_rejected(self):
        synopsis, _ = build(repeat=1)
        with pytest.raises(QueryError):
            synopsis.estimate_ordered("A")

    def test_query_coercion_forms(self):
        synopsis, _ = build()
        tree = from_sexpr("(A (B))")
        nested = tree.to_nested()
        node = QueryNode.from_sexpr("(A (B))")
        values = {
            synopsis.estimate_ordered("(A (B))"),
            synopsis.estimate_ordered(tree),
            synopsis.estimate_ordered(nested),
            synopsis.estimate_ordered(node),
        }
        assert len(values) == 1

    def test_bad_query_type(self):
        synopsis, _ = build(repeat=1)
        with pytest.raises(QueryError):
            synopsis.estimate_ordered(42)


class TestIngestionPaths:
    def test_bulk_counts_equals_streaming(self):
        a = SketchTree(CONFIG)
        exact = ExactCounter(CONFIG.max_pattern_edges)
        for text in STREAM:
            tree = from_sexpr(text)
            a.update(tree)
            exact.update(tree)
        b = SketchTree(CONFIG)
        b.ingest_counts(exact.counts, n_trees=exact.n_trees)
        for residue, matrix in a.streams.iter_sketches():
            other = b.streams.sketch_if_allocated(residue)
            assert other is not None
            assert np.array_equal(matrix.counters, other.counters)
        assert a.n_values == b.n_values
        assert a.n_trees == b.n_trees

    def test_ingest_value_counts_with_pinned_encoder(self):
        from repro.core import PatternEncoder

        config = SketchTreeConfig(
            s1=40, s2=5, max_pattern_edges=2, n_virtual_streams=31,
            seed=1, encoder_seed=99,
        )
        encoder = PatternEncoder(seed=99)
        pattern = ("A", (("B", ()),))
        synopsis = SketchTree(config)
        synopsis.ingest_value_counts({encoder.encode(pattern): 25})
        assert synopsis.estimate_ordered(pattern) == pytest.approx(25.0)

    def test_update_from_patterns_matches_update(self):
        from repro.enumtree import enumerate_patterns

        tree = from_sexpr("(A (B) (C (D)))")
        k = CONFIG.max_pattern_edges
        via_tree = SketchTree(CONFIG)
        via_tree.update(tree)
        via_patterns = SketchTree(CONFIG)
        via_patterns.update_from_patterns(enumerate_patterns(tree, k))
        for residue, matrix in via_tree.streams.iter_sketches():
            other = via_patterns.streams.sketch_if_allocated(residue)
            assert other is not None
            assert np.array_equal(matrix.counters, other.counters)
        assert via_patterns.n_trees == 1
        assert via_patterns.n_values == via_tree.n_values

    def test_update_from_patterns_empty_document_counts_tree(self):
        synopsis = SketchTree(CONFIG)
        synopsis.update_from_patterns([])  # a single-node document
        assert synopsis.n_trees == 1
        assert synopsis.n_values == 0

    def test_delete_tree_inverts_update(self):
        synopsis = SketchTree(CONFIG)
        tree = from_sexpr("(A (B) (C))")
        other = from_sexpr("(A (B (C)))")
        synopsis.update(other)
        snapshot = {
            r: m.counters.copy() for r, m in synopsis.streams.iter_sketches()
        }
        synopsis.update(tree)
        synopsis.delete_tree(tree)
        for residue, matrix in synopsis.streams.iter_sketches():
            before = snapshot.get(residue)
            if before is None:
                assert not matrix.counters.any()
            else:
                assert np.array_equal(matrix.counters, before)
        assert synopsis.n_trees == 1

    def test_config_kwargs_constructor(self):
        synopsis = SketchTree(s1=10, s2=3, n_virtual_streams=31)
        assert synopsis.config.s1 == 10
        with pytest.raises(ConfigError):
            SketchTree(CONFIG, s1=10)


class TestTopKIntegration:
    def test_topk_improves_small_count_estimates(self):
        # One dominant pattern plus rare ones: with top-k the rare
        # estimates tighten because the heavy value leaves the sketch.
        heavy = from_sexpr("(H (H1) (H2))")
        rare = from_sexpr("(R (R1))")
        trees = [heavy] * 300 + [rare] * 5
        base = dict(s1=15, s2=5, max_pattern_edges=2, n_virtual_streams=1)
        errors = {}
        for topk in (0, 3):
            per_seed = []
            for seed in range(5):
                synopsis = SketchTree(
                    SketchTreeConfig(**base, topk_size=topk, seed=seed)
                )
                synopsis.ingest(trees)
                estimate = synopsis.estimate_ordered("(R (R1))")
                per_seed.append(abs(estimate - 5))
            errors[topk] = np.mean(per_seed)
        assert errors[3] <= errors[0]

    def test_tracked_query_compensated(self):
        heavy = from_sexpr("(H (H1))")
        config = SketchTreeConfig(
            s1=40, s2=5, max_pattern_edges=2, n_virtual_streams=31,
            topk_size=2, seed=3,
        )
        synopsis = SketchTree(config)
        for _ in range(200):
            synopsis.update(heavy)
        # The heavy pattern is (almost surely) tracked and deleted; the
        # query-time adjustment must restore its count.
        estimate = synopsis.estimate_ordered("(H (H1))")
        assert estimate == pytest.approx(200.0, abs=20)


class TestPersistence:
    def test_serde_roundtrip(self):
        synopsis, _ = build()
        clone = SketchTree.from_bytes(synopsis.to_bytes())
        assert clone.n_trees == synopsis.n_trees
        assert clone.estimate_ordered("(A (B))") == synopsis.estimate_ordered(
            "(A (B))"
        )

    def test_serde_preserves_topk(self):
        config = SketchTreeConfig(
            s1=40, s2=5, max_pattern_edges=2, n_virtual_streams=31,
            topk_size=2, seed=3,
        )
        synopsis = SketchTree(config)
        for _ in range(100):
            synopsis.update(from_sexpr("(H (H1))"))
        clone = SketchTree.from_bytes(synopsis.to_bytes())
        assert clone.estimate_ordered("(H (H1))") == synopsis.estimate_ordered(
            "(H (H1))"
        )

    def test_merge(self):
        half_a = [from_sexpr(s) for s in STREAM[:3]]
        half_b = [from_sexpr(s) for s in STREAM[3:]]
        a = SketchTree(CONFIG).ingest(half_a)
        b = SketchTree(CONFIG).ingest(half_b)
        whole = SketchTree(CONFIG).ingest(half_a + half_b)
        merged = a.merge(b)
        assert merged.estimate_ordered("(A (B))") == whole.estimate_ordered(
            "(A (B))"
        )
        assert merged.n_trees == whole.n_trees

    def test_merge_requires_same_config(self):
        a = SketchTree(CONFIG)
        b = SketchTree(SketchTreeConfig(s1=10, s2=3, n_virtual_streams=31))
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_merge_accepts_topk(self):
        """The fold/unfold protocol makes top-k operands mergeable; the
        detailed semantics live in tests/test_topk_merge.py."""
        config = SketchTreeConfig(
            s1=20, s2=3, n_virtual_streams=31, topk_size=2, seed=4
        )
        a, b = SketchTree(config), SketchTree(config)
        a.update(from_sexpr("(A (B))"))
        b.update(from_sexpr("(A (C))"))
        merged = a.merge(b)
        assert merged.n_trees == 2


class TestExtendedQueries:
    def test_extended_query_via_own_summary(self):
        config = SketchTreeConfig(
            s1=60, s2=7, max_pattern_edges=3, n_virtual_streams=31,
            maintain_summary=True, seed=2,
        )
        synopsis = SketchTree(config)
        exact = ExactCounter(3)
        for _ in range(20):
            for text in ["(A (B (C)))", "(A (C))", "(A (D))"]:
                tree = from_sexpr(text)
                synopsis.update(tree)
                exact.update(tree)
        query = QueryNode.from_sexpr("(A (//C))")
        estimate = synopsis.estimate_extended(query)
        actual = exact.count_sum(
            [("A", (("C", ()),)), ("A", (("B", (("C", ()),)),))]
        )
        assert abs(estimate - actual) <= max(6, 0.3 * actual)

    def test_extended_query_requires_summary(self):
        synopsis = SketchTree(CONFIG)
        with pytest.raises(QueryError):
            synopsis.estimate_extended(QueryNode.from_sexpr("(A (//C))"))

    def test_extended_query_external_summary(self):
        from repro import StructuralSummary

        synopsis, _ = build()
        summary = StructuralSummary()
        for text in STREAM:
            summary.add_tree(from_sexpr(text))
        estimate = synopsis.estimate_extended(
            QueryNode.from_sexpr("(A (*))"), summary=summary
        )
        assert estimate > 0

    def test_unresolvable_extended_query_is_zero(self):
        config = SketchTreeConfig(
            s1=10, s2=3, n_virtual_streams=31, maintain_summary=True
        )
        synopsis = SketchTree(config)
        synopsis.update(from_sexpr("(A (B))"))
        assert synopsis.estimate_extended(QueryNode.from_sexpr("(Z (//Q))")) == 0.0
