"""Tests for the exact counter (ground truth + deterministic strawman)."""

import pytest
from hypothesis import given, settings

from repro.core import ExactCounter
from repro.errors import QueryError
from repro.query.matching import count_ordered, count_unordered
from repro.trees import from_sexpr
from tests.strategies import labeled_trees


class TestExactCounter:
    def test_counts_accumulate_over_stream(self):
        exact = ExactCounter(2)
        exact.update(from_sexpr("(A (B))"))
        exact.update(from_sexpr("(A (B))"))
        assert exact.count_ordered(("A", (("B", ()),))) == 2
        assert exact.n_trees == 2

    def test_n_values_is_total_occurrences(self):
        exact = ExactCounter(2)
        exact.update(from_sexpr("(A (B) (C))"))
        # Patterns: A(B), A(C), A(B,C) -> 3 occurrences.
        assert exact.n_values == 3

    def test_unordered(self):
        exact = ExactCounter(2)
        exact.update(from_sexpr("(A (C) (B))"))
        assert exact.count_ordered(("A", (("B", ()), ("C", ())))) == 0
        assert exact.count_unordered(("A", (("B", ()), ("C", ())))) == 1

    def test_sum_deduplicates(self):
        exact = ExactCounter(2)
        exact.update(from_sexpr("(A (B))"))
        pattern = ("A", (("B", ()),))
        assert exact.count_sum([pattern, pattern]) == 1

    def test_query_size_enforced(self):
        exact = ExactCounter(2)
        exact.update(from_sexpr("(A (B (C (D))))"))
        with pytest.raises(QueryError):
            exact.count_ordered(("A", (("B", (("C", (("D", ()),)),)),)))
        with pytest.raises(QueryError):
            exact.count_ordered(("A", ()))  # zero edges

    def test_selectivity(self):
        exact = ExactCounter(2)
        exact.update(from_sexpr("(A (B) (C))"))
        assert exact.selectivity(("A", (("B", ()),))) == pytest.approx(1 / 3)
        assert exact.selectivity(("Z", (("Z", ()),))) == 0.0

    def test_self_join_size(self):
        exact = ExactCounter(1)
        exact.update(from_sexpr("(A (B) (B))"))  # A(B) twice
        assert exact.self_join_size() == 4

    def test_top(self):
        exact = ExactCounter(1)
        exact.update(from_sexpr("(A (B) (B) (C))"))
        assert exact.top(1) == [(("A", (("B", ()),)), 2)]

    def test_memory_bytes_grows_with_patterns(self):
        small = ExactCounter(2)
        small.update(from_sexpr("(A (B))"))
        big = ExactCounter(2)
        for i in range(50):
            big.update(from_sexpr(f"(A (L{i}))"))
        assert big.memory_bytes() > small.memory_bytes()

    def test_invalid_k(self):
        with pytest.raises(QueryError):
            ExactCounter(0)

    @given(labeled_trees(max_nodes=9))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_matcher_oracle(self, tree):
        exact = ExactCounter(3)
        exact.update(tree)
        # Every counted pattern's count equals the DP matcher's count.
        for pattern, count in exact.counts.items():
            assert count_ordered(tree, pattern) == count

    @given(labeled_trees(max_nodes=8))
    @settings(max_examples=25, deadline=None)
    def test_unordered_agrees_with_matcher(self, tree):
        exact = ExactCounter(2)
        exact.update(tree)
        for pattern in list(exact.counts)[:5]:
            assert exact.count_unordered(pattern) == count_unordered(tree, pattern)
