"""Tests for the BCH parity-check ξ construction.

Includes an *exhaustive* verification of exact four-wise independence:
the construction's bits are four-wise independent iff for every four
distinct domain points the four vectors ``(1, i, i³)`` over GF(2)^(2m+1)
are linearly independent (then the seed inner products are uniform on
{0,1}⁴) — we check both the linear-independence fact for a whole small
field and the uniformity directly by enumerating every seed.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hashing.gf2 import gf2_mulmod, random_irreducible
from repro.sketch import BchXiGenerator, SketchMatrix


class TestBasics:
    def test_values_plus_minus_one(self):
        gen = BchXiGenerator(64, m=31, seed=1)
        signs = gen.xi_batch(np.arange(200, dtype=np.int64))
        assert set(np.unique(signs)) <= {-1, 1}

    def test_deterministic(self):
        a, b = BchXiGenerator(8, seed=3), BchXiGenerator(8, seed=3)
        assert np.array_equal(a.xi(12345), b.xi(12345))

    def test_scalar_matches_batch(self):
        gen = BchXiGenerator(16, seed=5)
        batch = gen.xi_batch(np.asarray([7, 11], dtype=np.int64))
        assert np.array_equal(gen.xi(7), batch[:, 0])
        assert np.array_equal(gen.xi(11), batch[:, 1])

    def test_values_reduced_into_domain(self):
        gen = BchXiGenerator(8, m=10, seed=2)
        assert np.array_equal(gen.xi(3 + (1 << 10)), gen.xi(3))

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            BchXiGenerator(0)
        with pytest.raises(ConfigError):
            BchXiGenerator(4, m=1)

    def test_declares_fourwise(self):
        assert BchXiGenerator(4).independence == 4

    def test_statistics(self):
        gen = BchXiGenerator(4000, m=31, seed=7)
        assert abs(gen.xi(42).mean()) < 0.06
        assert abs((gen.xi(42) * gen.xi(43)).mean()) < 0.06
        product = gen.xi(1) * gen.xi(2) * gen.xi(3) * gen.xi(4)
        assert abs(product.mean()) < 0.06


class TestExactFourwiseIndependence:
    """The construction's defining property, verified exhaustively."""

    M = 5  # domain 32; gcd(3, 2^5 - 1) = 1 so cubing is a bijection

    def _vectors(self, poly):
        """(1, i, i³) for every i, packed into one integer per point."""
        m = self.M
        out = []
        for i in range(1 << m):
            cube = gf2_mulmod(gf2_mulmod(i, i, poly), i, poly)
            out.append((1 << (2 * m)) | (i << m) | cube)
        return out

    @staticmethod
    def _independent(vectors):
        basis = []
        for vector in vectors:
            for b in basis:
                vector = min(vector, vector ^ b)
            if vector == 0:
                return False
            basis.append(vector)
        return True

    def test_any_four_columns_linearly_independent(self):
        poly = random_irreducible(self.M, np.random.default_rng(0))
        vectors = self._vectors(poly)
        for subset in combinations(range(1 << self.M), 4):
            assert self._independent([vectors[i] for i in subset])

    def test_bits_uniform_over_all_seeds(self):
        """For sample 4-tuples, enumerating every (s0, s1, s2) seed gives
        a perfectly uniform joint bit distribution — exact independence,
        not just statistical."""
        from collections import Counter

        m = 4
        poly = random_irreducible(m, np.random.default_rng(1))

        def cube(i):
            return gf2_mulmod(gf2_mulmod(i, i, poly), i, poly)

        for points in [(0, 1, 2, 3), (1, 5, 9, 14), (2, 7, 8, 15)]:
            joint = Counter()
            for s0 in range(2):
                for s1 in range(1 << m):
                    for s2 in range(1 << m):
                        bits = tuple(
                            (s0 ^ bin(s1 & i).count("1") ^ bin(s2 & cube(i)).count("1")) & 1
                            for i in points
                        )
                        joint[bits] += 1
            assert len(joint) == 16
            assert len(set(joint.values())) == 1  # perfectly uniform


class TestSketchIntegration:
    def test_sketch_matrix_accepts_bch(self):
        matrix = SketchMatrix(40, 5, xi=BchXiGenerator(200, seed=2))
        matrix.update_counts({5: 120})
        assert matrix.estimate(5) == 120.0

    def test_product_degree_limit_enforced(self):
        matrix = SketchMatrix(10, 2, xi=BchXiGenerator(20, seed=2))
        with pytest.raises(ConfigError):
            matrix.estimate_product([1, 2, 3])  # needs 6-wise

    def test_sketchtree_bch_family(self):
        from repro import SketchTree, SketchTreeConfig
        from repro.trees import from_sexpr

        config = SketchTreeConfig(
            s1=40, s2=5, max_pattern_edges=2, n_virtual_streams=31,
            xi_family="bch", seed=4,
        )
        synopsis = SketchTree(config)
        for _ in range(10):
            synopsis.update(from_sexpr("(A (B) (C))"))
        assert synopsis.estimate_ordered("(A (B))") == pytest.approx(10.0, abs=4)

    def test_config_rejects_bch_with_high_independence(self):
        from repro import SketchTreeConfig
        from repro.errors import ConfigError as CE

        with pytest.raises(CE):
            SketchTreeConfig(xi_family="bch", independence=6)
        with pytest.raises(CE):
            SketchTreeConfig(xi_family="fourier")

    def test_unbiasedness_over_draws(self):
        counts = {1: 30, 2: 20, 3: 10}
        estimates = []
        for seed in range(200):
            matrix = SketchMatrix(1, 1, xi=BchXiGenerator(1, seed=seed))
            matrix.update_counts(counts)
            estimates.append(matrix.estimate(2))
        assert abs(np.mean(estimates) - 20) < 6
