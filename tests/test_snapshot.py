"""Tests for the versioned snapshot & recovery subsystem.

Covers the format round trip (property-based), the typed rejection of
corrupt / truncated / version-mismatched / misconfigured snapshots, the
crash-safe :class:`CheckpointManager`, checkpoint-resume equivalence in
:class:`StreamProcessor`, the summary-preserving merge fix, the guarded
legacy pickle loader, and the canonical value-reduction regression for
values at and beyond 2^31 - 1.
"""

import json
import pickle
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SketchTree, SketchTreeConfig
from repro.core.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointManager,
    config_fingerprint,
    load_snapshot,
    save_snapshot,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.core.topk import TopKTracker
from repro.errors import (
    ConfigError,
    PatternError,
    SnapshotConfigError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
)
from repro.query.summary import QueryNode, StructuralSummary
from repro.query.xpath import parse_xpath
from repro.sketch.ams import SketchMatrix
from repro.sketch.bch import BchXiGenerator
from repro.sketch.xi import MERSENNE_31, XiGenerator
from repro.stream.engine import StreamProcessor
from repro.trees import from_sexpr
from repro.trees.builders import from_nested
from tests.strategies import nested_trees

BASE = SketchTreeConfig(
    s1=12, s2=3, max_pattern_edges=2, n_virtual_streams=13, seed=5
)
FULL = SketchTreeConfig(
    s1=12,
    s2=3,
    max_pattern_edges=2,
    n_virtual_streams=13,
    topk_size=3,
    maintain_summary=True,
    seed=5,
)

STREAM = [
    "(A (B) (C))",
    "(A (C) (B))",
    "(A (B (C)))",
    "(X (A (B)))",
    "(A (B) (B))",
    "(B (C))",
] * 4


def build(config=FULL, texts=STREAM):
    synopsis = SketchTree(config)
    for text in texts:
        synopsis.update(from_sexpr(text))
    return synopsis


def assert_same_state(a: SketchTree, b: SketchTree):
    """Bit-identical counters plus identical trackers/summary/bookkeeping."""
    assert a.config == b.config
    assert a.n_trees == b.n_trees
    assert a.n_values == b.n_values
    left = dict(a.streams.iter_sketches())
    right = dict(b.streams.iter_sketches())
    assert left.keys() == right.keys()
    for residue, matrix in left.items():
        assert np.array_equal(matrix.counters, right[residue].counters)
    left_tracked = {r: t.tracked for r, t in a.streams.iter_trackers()}
    right_tracked = {r: t.tracked for r, t in b.streams.iter_trackers()}
    assert {r: t for r, t in left_tracked.items() if t} == {
        r: t for r, t in right_tracked.items() if t
    }
    if a.summary is None:
        assert b.summary is None
    else:
        assert b.summary is not None
        assert a.summary.to_dict() == b.summary.to_dict()


def rewrite_header(blob: bytes, mutate) -> bytes:
    """Re-frame ``blob`` after applying ``mutate(header_dict)``."""
    header_len = int.from_bytes(blob[len(MAGIC) : len(MAGIC) + 8], "big")
    start = len(MAGIC) + 8
    header = json.loads(blob[start : start + header_len])
    payload = blob[start + header_len :]
    mutate(header)
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return MAGIC + len(header_bytes).to_bytes(8, "big") + header_bytes + payload


class TestRoundTrip:
    def test_bit_identical_state(self):
        synopsis = build()
        restored = SketchTree.from_bytes(synopsis.to_bytes())
        assert_same_state(synopsis, restored)

    def test_estimates_identical(self):
        synopsis = build()
        restored = SketchTree.from_bytes(synopsis.to_bytes())
        queries = ["(A (B))", "(A (B) (C))", "(B (C))"]
        for q in queries:
            assert synopsis.estimate_ordered(q) == restored.estimate_ordered(q)
            assert synopsis.estimate_unordered(q) == restored.estimate_unordered(q)
        assert synopsis.estimate_sum(queries) == restored.estimate_sum(queries)
        extended = parse_xpath("//A/B")
        assert synopsis.estimate_extended(extended) == restored.estimate_extended(
            extended
        )

    def test_interrupted_run_equals_uninterrupted(self):
        # The acceptance scenario: snapshot halfway, restore, continue —
        # with top-k tracking and the structural summary enabled.
        half = len(STREAM) // 2
        uninterrupted = build(FULL, STREAM)
        first_half = build(FULL, STREAM[:half])
        resumed = SketchTree.from_bytes(first_half.to_bytes())
        for text in STREAM[half:]:
            resumed.update(from_sexpr(text))
        assert_same_state(uninterrupted, resumed)
        for q in ["(A (B))", "(A (C) (B))", "(X (A))"]:
            assert uninterrupted.estimate_ordered(q) == resumed.estimate_ordered(q)
            assert uninterrupted.estimate_unordered(
                q
            ) == resumed.estimate_unordered(q)
        expression = "COUNT(A/B) + COUNT(A/C) - COUNT(B/C)"
        assert uninterrupted.estimate_expression(
            expression
        ) == resumed.estimate_expression(expression)
        extended = parse_xpath("//A/*")
        assert uninterrupted.estimate_extended(
            extended
        ) == resumed.estimate_extended(extended)

    def test_empty_synopsis_round_trips(self):
        synopsis = SketchTree(FULL)
        restored = SketchTree.from_bytes(synopsis.to_bytes())
        assert_same_state(synopsis, restored)
        assert restored.n_trees == 0

    def test_pairing_big_values_round_trip(self):
        # Pairing-mode values exceed 64 bits; tracker state must survive
        # the decimal-string encoding in the header.
        config = SketchTreeConfig(
            s1=8,
            s2=3,
            max_pattern_edges=2,
            n_virtual_streams=7,
            topk_size=2,
            mapping="pairing",
            seed=3,
        )
        synopsis = build(config, STREAM[:8])
        restored = SketchTree.from_bytes(synopsis.to_bytes())
        assert_same_state(synopsis, restored)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(nested_trees(max_nodes=6), min_size=0, max_size=5))
    def test_round_trip_property(self, forest):
        synopsis = SketchTree(FULL)
        for nested in forest:
            synopsis.update(from_nested(nested))
        restored = SketchTree.from_bytes(synopsis.to_bytes())
        assert_same_state(synopsis, restored)
        assert synopsis.estimate_ordered("(A (B))") == restored.estimate_ordered(
            "(A (B))"
        )


class TestRejection:
    def test_bad_magic(self):
        with pytest.raises(SnapshotFormatError):
            snapshot_from_bytes(b"NOTASNAP" + b"\x00" * 32)

    def test_empty_blob(self):
        with pytest.raises(SnapshotFormatError):
            snapshot_from_bytes(b"")

    def test_pickle_blob_hints_at_legacy_loader(self):
        blob = pickle.dumps({"anything": 1})
        with pytest.raises(SnapshotFormatError, match="from_legacy_pickle"):
            snapshot_from_bytes(blob)

    def test_truncation_rejected_everywhere(self):
        blob = build(BASE, STREAM[:6]).to_bytes()
        header_len = int.from_bytes(blob[len(MAGIC) : len(MAGIC) + 8], "big")
        cuts = [
            4,  # inside the magic
            len(MAGIC) + 3,  # inside the length field
            len(MAGIC) + 8 + header_len // 2,  # inside the header
            len(MAGIC) + 8 + header_len,  # payload gone entirely
            len(blob) - 1,  # one payload byte short
        ]
        for cut in cuts:
            with pytest.raises(SnapshotIntegrityError):
                snapshot_from_bytes(blob[:cut])

    def test_flipped_payload_byte_rejected(self):
        blob = bytearray(build(BASE, STREAM[:6]).to_bytes())
        blob[-1] ^= 0xFF
        with pytest.raises(SnapshotIntegrityError, match="checksum"):
            snapshot_from_bytes(bytes(blob))

    @pytest.mark.parametrize("version", [0, 2, FORMAT_VERSION + 7])
    def test_version_mismatch_rejected(self, version):
        blob = build(BASE, STREAM[:4]).to_bytes()
        tampered = rewrite_header(
            blob, lambda h: h.__setitem__("format_version", version)
        )
        with pytest.raises(SnapshotVersionError):
            snapshot_from_bytes(tampered)

    def test_non_integer_version_rejected(self):
        blob = build(BASE, STREAM[:4]).to_bytes()
        tampered = rewrite_header(
            blob, lambda h: h.__setitem__("format_version", "1")
        )
        with pytest.raises(SnapshotFormatError):
            snapshot_from_bytes(tampered)

    def test_wrong_format_name_rejected(self):
        blob = build(BASE, STREAM[:4]).to_bytes()
        tampered = rewrite_header(
            blob, lambda h: h.__setitem__("format", "other-format")
        )
        with pytest.raises(SnapshotFormatError):
            snapshot_from_bytes(tampered)

    def test_missing_header_key_rejected(self):
        blob = build(BASE, STREAM[:4]).to_bytes()
        tampered = rewrite_header(blob, lambda h: h.pop("n_trees"))
        with pytest.raises(SnapshotFormatError, match="missing"):
            snapshot_from_bytes(tampered)

    def test_edited_config_fails_fingerprint(self):
        blob = build(BASE, STREAM[:4]).to_bytes()
        tampered = rewrite_header(
            blob, lambda h: h["config"].__setitem__("seed", 999)
        )
        with pytest.raises(SnapshotIntegrityError, match="fingerprint"):
            snapshot_from_bytes(tampered)

    def test_tracker_state_without_topk_rejected(self):
        blob = build(BASE, STREAM[:4]).to_bytes()  # BASE has topk_size=0
        tampered = rewrite_header(
            blob, lambda h: h.__setitem__("trackers", {"0": [["5", 2]]})
        )
        with pytest.raises(SnapshotFormatError, match="topk_size=0"):
            snapshot_from_bytes(tampered)

    def test_summary_without_maintain_summary_rejected(self):
        blob = build(BASE, STREAM[:4]).to_bytes()
        tampered = rewrite_header(
            blob, lambda h: h.__setitem__("summary", {"A": {}})
        )
        with pytest.raises(SnapshotFormatError, match="maintain_summary"):
            snapshot_from_bytes(tampered)

    def test_maintain_summary_without_summary_rejected(self):
        blob = build(FULL, STREAM[:4]).to_bytes()
        tampered = rewrite_header(blob, lambda h: h.__setitem__("summary", None))
        with pytest.raises(SnapshotFormatError, match="carries none"):
            snapshot_from_bytes(tampered)

    def test_negative_counts_rejected(self):
        blob = build(BASE, STREAM[:4]).to_bytes()
        tampered = rewrite_header(blob, lambda h: h.__setitem__("n_trees", -1))
        with pytest.raises(SnapshotFormatError):
            snapshot_from_bytes(tampered)

    def test_garbage_payload_rejected(self):
        blob = build(BASE, STREAM[:4]).to_bytes()
        header_len = int.from_bytes(blob[len(MAGIC) : len(MAGIC) + 8], "big")
        start = len(MAGIC) + 8
        header = json.loads(blob[start : start + header_len])
        payload = b"this is not an npz archive"
        import hashlib

        header["payload_size"] = len(payload)
        header["payload_sha256"] = hashlib.sha256(payload).hexdigest()
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        tampered = (
            MAGIC + len(header_bytes).to_bytes(8, "big") + header_bytes + payload
        )
        with pytest.raises(SnapshotFormatError, match="npz"):
            snapshot_from_bytes(tampered)


class TestFiles:
    def test_save_load_round_trip(self, tmp_path):
        synopsis = build()
        path = save_snapshot(synopsis, tmp_path / "snap.sktsnap")
        assert path.exists()
        assert_same_state(synopsis, load_snapshot(path))

    def test_no_temp_files_left_behind(self, tmp_path):
        save_snapshot(build(BASE, STREAM[:4]), tmp_path / "snap.sktsnap")
        assert [p.name for p in tmp_path.iterdir()] == ["snap.sktsnap"]

    def test_expected_config_match_accepted(self, tmp_path):
        path = save_snapshot(build(), tmp_path / "snap.sktsnap")
        assert load_snapshot(path, expected_config=FULL).n_trees == len(STREAM)

    def test_expected_config_mismatch_rejected(self, tmp_path):
        path = save_snapshot(build(), tmp_path / "snap.sktsnap")
        with pytest.raises(SnapshotConfigError):
            load_snapshot(path, expected_config=BASE)

    def test_fingerprint_distinguishes_configs(self):
        assert config_fingerprint(BASE) != config_fingerprint(FULL)
        assert config_fingerprint(BASE) == config_fingerprint(BASE)


class TestCheckpointManager:
    def test_keep_last_n(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        synopsis = SketchTree(BASE)
        for text in STREAM[:6]:
            synopsis.update(from_sexpr(text))
            manager.save(synopsis)
        names = [p.name for p in manager.paths()]
        assert names == [
            "checkpoint-000000000005.sktsnap",
            "checkpoint-000000000006.sktsnap",
        ]

    def test_load_latest_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_load_latest_falls_back_past_corruption(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=3)
        synopsis = SketchTree(BASE)
        for text in STREAM[:3]:
            synopsis.update(from_sexpr(text))
            manager.save(synopsis)
        newest = manager.latest_path()
        newest.write_bytes(newest.read_bytes()[:-5])  # damage the newest
        restored = manager.load_latest()
        assert restored is not None
        assert restored.n_trees == 2  # the newest *valid* checkpoint

    def test_all_corrupt_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        synopsis = build(BASE, STREAM[:2])
        path = manager.save(synopsis)
        path.write_bytes(b"garbage")
        with pytest.raises(SnapshotIntegrityError, match="no loadable"):
            manager.load_latest()

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(ConfigError):
            CheckpointManager(tmp_path, keep_last=0)
        with pytest.raises(ConfigError):
            CheckpointManager(tmp_path, prefix="a/b")


class TestStreamProcessorRecovery:
    def trees(self):
        return [from_sexpr(text) for text in STREAM]

    def test_resume_equals_uninterrupted(self, tmp_path):
        uninterrupted = SketchTree(FULL)
        StreamProcessor([uninterrupted]).run(self.trees())

        # "Crash" partway: only the first 10 trees get processed, with a
        # checkpoint every 4 — the last checkpoint holds 8 trees.
        manager = CheckpointManager(tmp_path, keep_last=2)
        crashed = StreamProcessor(
            [SketchTree(FULL)], snapshot_every=4, checkpoints=manager
        )
        crashed.run(self.trees()[:10])
        assert len(manager.paths()) == 2

        recovered = StreamProcessor(
            [SketchTree(FULL)], snapshot_every=4, checkpoints=manager
        )
        stats = recovered.resume(self.trees())
        assert stats.resumed_from == 8
        assert stats.n_trees == len(STREAM) - 8
        assert_same_state(uninterrupted, recovered.consumers[0])

    def test_resume_without_checkpoints_is_plain_run(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        processor = StreamProcessor([SketchTree(BASE)], checkpoints=manager)
        stats = processor.resume(self.trees())
        assert stats.resumed_from == 0
        assert stats.n_trees == len(STREAM)

    def test_snapshot_every_requires_manager(self):
        with pytest.raises(ConfigError):
            StreamProcessor([SketchTree(BASE)], snapshot_every=5)

    def test_checkpointing_requires_to_bytes(self, tmp_path):
        from repro.core import ExactCounter

        with pytest.raises(ConfigError, match="to_bytes"):
            StreamProcessor(
                [ExactCounter(2)],
                checkpoints=CheckpointManager(tmp_path),
            )

    def test_run_writes_snapshots_on_schedule(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=10)
        processor = StreamProcessor(
            [SketchTree(BASE)], snapshot_every=6, checkpoints=manager
        )
        stats = processor.run(self.trees())
        assert len(stats.snapshot_paths) == len(STREAM) // 6
        assert all(Path(p).exists() for p in stats.snapshot_paths)

    @settings(max_examples=12, deadline=None)
    @given(
        crash_at=st.integers(min_value=1, max_value=len(STREAM) - 1),
        every=st.integers(min_value=2, max_value=9),
    )
    def test_resume_matches_uninterrupted_events(self, crash_at, every):
        """Resume == uninterrupted, end to end: final synopsis state,
        checkpoint-callback arguments, and snapshot file names all match
        the run that never crashed — for any crash point and cadence.

        Before the boundary-alignment fix this failed whenever the
        newest checkpoint held a tree count that was not a multiple of
        ``every`` (and, even on multiples, the resumed callbacks
        reported relative positions).
        """
        import tempfile

        trees = [from_sexpr(text) for text in STREAM]

        with tempfile.TemporaryDirectory() as full_dir:
            manager = CheckpointManager(Path(full_dir), keep_last=50)
            full = StreamProcessor(
                [SketchTree(BASE)],
                checkpoint_every=every,
                on_checkpoint=lambda n: n,
                snapshot_every=every,
                checkpoints=manager,
            )
            full_stats = full.run(trees)
            full_names = [p.name for p in full_stats.snapshot_paths]
            uninterrupted = full.consumers[0]

        with tempfile.TemporaryDirectory() as crash_dir:
            manager = CheckpointManager(Path(crash_dir), keep_last=50)
            crashed = StreamProcessor(
                [SketchTree(BASE)],
                checkpoint_every=every,
                on_checkpoint=lambda n: n,
                snapshot_every=every,
                checkpoints=manager,
            )
            crash_stats = crashed.run(trees[:crash_at])

            recovered = StreamProcessor(
                [SketchTree(BASE)],
                checkpoint_every=every,
                on_checkpoint=lambda n: n,
                snapshot_every=every,
                checkpoints=manager,
            )
            stats = recovered.resume(trees)

            assert stats.resumed_from == (crash_at // every) * every
            assert stats.stream_position == len(trees)
            # Callback arguments are absolute: pre-crash events plus the
            # resumed ones reconstruct the uninterrupted sequence.
            assert (
                crash_stats.checkpoint_results + stats.checkpoint_results
                == full_stats.checkpoint_results
            )
            # Snapshot files are written at the same tree counts.
            crash_names = [p.name for p in crash_stats.snapshot_paths]
            resumed_names = [p.name for p in stats.snapshot_paths]
            assert crash_names + resumed_names == full_names
            assert_same_state(uninterrupted, recovered.consumers[0])


class TestTopKSnapshotRestore:
    def make_tracker(self):
        sketch = SketchMatrix(s1=8, s2=3, seed=11)
        return TopKTracker(size=3, sketch=sketch)

    def test_snapshot_is_independent_copy(self):
        tracker = self.make_tracker()
        for value in [5, 5, 5, 9, 9, 2]:
            tracker.process(value)
        state = tracker.snapshot()
        state[12345] = 99
        assert 12345 not in tracker.snapshot()

    def test_restore_round_trip_continues_identically(self):
        arrivals = [5, 5, 9, 5, 9, 2, 2, 2, 7]
        a = self.make_tracker()
        for value in arrivals:
            a.process(value)

        b = self.make_tracker()
        for value in arrivals[:5]:
            b.process(value)
        state, counters = b.snapshot(), b.sketch.counters.copy()

        c = self.make_tracker()
        c.sketch.counters = counters
        c.restore(state)
        for value in arrivals[5:]:
            c.process(value)
        assert a.tracked == c.tracked
        assert np.array_equal(a.sketch.counters, c.sketch.counters)

    def test_restore_rejects_nonpositive_counts(self):
        tracker = self.make_tracker()
        with pytest.raises(ConfigError):
            tracker.restore({5: 0})
        with pytest.raises(ConfigError):
            tracker.restore({5: -2})

    def test_restore_rejects_oversized_state(self):
        tracker = self.make_tracker()
        with pytest.raises(ConfigError):
            tracker.restore({v: 1 for v in range(tracker.size + 1)})


class TestSummarySerde:
    def test_to_dict_from_dict_round_trip(self):
        summary = StructuralSummary()
        for text in STREAM:
            summary.add_tree(from_sexpr(text))
        clone = StructuralSummary.from_dict(summary.to_dict())
        assert clone.to_dict() == summary.to_dict()
        assert clone.n_paths == summary.n_paths

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(PatternError):
            StructuralSummary.from_dict({"A": "not-a-dict"})
        with pytest.raises(PatternError):
            StructuralSummary.from_dict({"": {}})

    def test_merge_is_trie_union(self):
        a, b = StructuralSummary(), StructuralSummary()
        a.add_tree(from_sexpr("(A (B))"))
        b.add_tree(from_sexpr("(A (C (D)))"))
        merged = a.merge(b)
        assert merged.to_dict() == {"A": {"B": {}, "C": {"D": {}}}}
        # Inputs untouched.
        assert a.to_dict() == {"A": {"B": {}}}
        assert b.to_dict() == {"A": {"C": {"D": {}}}}


class TestMergeFix:
    def merge_config(self, maintain_summary):
        return SketchTreeConfig(
            s1=12,
            s2=3,
            max_pattern_edges=2,
            n_virtual_streams=13,
            maintain_summary=maintain_summary,
            seed=5,
        )

    def test_merged_summary_answers_extended_queries(self):
        config = self.merge_config(True)
        half = len(STREAM) // 2
        a = build(config, STREAM[:half])
        b = build(config, STREAM[half:])
        single = build(config, STREAM)
        merged = a.merge(b)
        assert merged.summary is not None
        assert merged.summary.to_dict() == single.summary.to_dict()
        query = parse_xpath("//A/B")
        assert merged.estimate_extended(query) == single.estimate_extended(query)

    def test_merge_refuses_summary_mismatch(self):
        a = build(self.merge_config(True), STREAM[:4])
        b = build(self.merge_config(False), STREAM[4:8])
        with pytest.raises(ConfigError):
            a.merge(b)


class TestLegacyPickle:
    def legacy_blob(self, synopsis):
        state = {
            "config": synopsis.config,
            "n_trees": synopsis.n_trees,
            "n_values": synopsis.n_values,
            "sketches": {
                residue: matrix.counters.copy()
                for residue, matrix in synopsis.streams.iter_sketches()
            },
            "trackers": {
                residue: tracker.snapshot()
                for residue, tracker in synopsis.streams.iter_trackers()
                if tracker.snapshot()
            },
        }
        return pickle.dumps(state)

    def test_loads_with_deprecation_warning(self):
        # The pickle format predates the structural summary, so the
        # round trip is exercised without one (to_bytes covers it).
        config = SketchTreeConfig(
            s1=12,
            s2=3,
            max_pattern_edges=2,
            n_virtual_streams=13,
            topk_size=3,
            seed=5,
        )
        synopsis = build(config)
        blob = self.legacy_blob(synopsis)
        with pytest.warns(DeprecationWarning, match="to_bytes"):
            restored = SketchTree.from_legacy_pickle(blob)
        assert_same_state(synopsis, restored)

    def test_rejects_garbage(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SnapshotFormatError):
                SketchTree.from_legacy_pickle(b"\x80\x04 garbage")

    def test_rejects_wrong_shape(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SnapshotFormatError, match="missing"):
                SketchTree.from_legacy_pickle(pickle.dumps({"config": BASE}))


class TestNoPickleInSnapshotPath:
    """The pickle-free invariant is enforced by sketchlint's SKL103
    (reachability from the snapshot entry points); this test pins that the
    check runs clean on the real tree and still has teeth."""

    SRC = Path(__file__).resolve().parent.parent / "src"

    def test_snapshot_path_is_skl103_clean(self):
        from tools.sketchlint.semantic import analyze_paths

        assert [
            v.render() for v in analyze_paths([self.SRC], select=["SKL103"])
        ] == []

    def test_skl103_fires_on_module_level_pickle(self):
        # Guard the guard: injecting a module-level ``import pickle`` into
        # the snapshot module must be caught (the old AST walker's job).
        from tools.sketchlint.semantic import analyze_project

        files = []
        for path in sorted(self.SRC.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            if path.name == "snapshot.py" and "repro" in path.parts:
                source = "import pickle\n" + source
            files.append((path, source))
        violations = analyze_project(files, select=["SKL103"])
        assert any(
            v.rule == "SKL103" and "module-level import of 'pickle'" in v.message
            for v in violations
        ), [v.render() for v in violations]


class TestCanonicalReduction:
    """Satellite 4: one family-specific reduction point, big-value safe."""

    def test_polynomial_family_values_beyond_field(self):
        xi = XiGenerator(n_instances=6, seed=9)
        for value in [MERSENNE_31 - 1, MERSENNE_31, MERSENNE_31 + 7, 2**63 - 1]:
            reduced = int(xi.to_field([value], count=1)[0])
            assert 0 <= reduced < MERSENNE_31
            assert reduced == value % MERSENNE_31

    def test_to_field_accepts_python_bigints(self):
        # Pairing values exceed int64; np.fromiter must not overflow.
        xi = XiGenerator(n_instances=4, seed=1)
        huge = 2**80 + 12345
        assert int(xi.to_field([huge], count=1)[0]) == huge % MERSENNE_31

    def test_bch_family_reduces_by_mask(self):
        xi = BchXiGenerator(n_instances=4, seed=2)
        mask = (1 << xi.m) - 1
        value = (7 << xi.m) | 123
        assert int(xi.to_field([value], count=1)[0]) == value & mask

    def test_estimates_unchanged_for_values_at_field_boundary(self):
        # Streaming v and v % (2^31 - 1) must hit identical counters —
        # the regression the redundant pre-reduction used to mask.
        big = {MERSENNE_31 + 11: 4, 2 * MERSENNE_31 + 3: 2}
        small = {value % MERSENNE_31: count for value, count in big.items()}
        a = SketchMatrix(s1=10, s2=3, seed=21)
        b = SketchMatrix(s1=10, s2=3, seed=21)
        a.update_counts(big)
        b.update_counts(small)
        assert np.array_equal(a.counters, b.counters)
        for value in big:
            assert a.estimate(value) == b.estimate(value % MERSENNE_31)


class TestExtendedQueryNode:
    def test_query_node_reexported(self):
        # estimate_extended accepts hand-built QueryNode trees too.
        synopsis = build()
        query = QueryNode("A", (QueryNode("*", ()),))
        assert synopsis.estimate_extended(query) == pytest.approx(
            synopsis.estimate_xpath("/A/*")
        )
