"""Tests for workload generation (single, SUM, PRODUCT)."""

import pytest

from repro.core import ExactCounter
from repro.errors import ConfigError
from repro.trees import from_sexpr
from repro.workload import (
    generate_product_workload,
    generate_sum_workload,
    generate_workload,
)


def small_exact():
    exact = ExactCounter(2)
    trees = (
        [from_sexpr("(A (B) (C))")] * 50
        + [from_sexpr("(A (D))")] * 10
        + [from_sexpr(f"(A (R{i}))") for i in range(20)]
    )
    for tree in trees:
        exact.update(tree)
    return exact


class TestSingleWorkload:
    def test_queries_bucketed_by_selectivity(self):
        exact = small_exact()
        buckets = ((0.0, 0.05), (0.05, 0.5))
        workload = generate_workload(exact, buckets, max_per_bucket=100, seed=1)
        for bucket, queries in zip(workload.buckets, workload.queries_by_bucket):
            for query in queries:
                assert bucket[0] <= query.selectivity < bucket[1]
                assert query.actual == exact.count_ordered(query.pattern)

    def test_max_per_bucket_enforced(self):
        exact = small_exact()
        workload = generate_workload(
            exact, ((0.0, 1.0),), max_per_bucket=5, seed=1
        )
        assert workload.queries_by_bucket[0] is not None
        assert len(workload.queries_by_bucket[0]) == 5

    def test_deterministic(self):
        exact = small_exact()
        a = generate_workload(exact, ((0.0, 1.0),), max_per_bucket=5, seed=3)
        b = generate_workload(exact, ((0.0, 1.0),), max_per_bucket=5, seed=3)
        assert a == b

    def test_edge_bounds_respected(self):
        exact = small_exact()
        workload = generate_workload(
            exact, ((0.0, 1.0),), min_edges=2, max_edges=2, seed=1
        )
        from repro.query.pattern import pattern_edges

        for query in workload.all_queries():
            assert pattern_edges(query.pattern) == 2

    def test_histogram(self):
        exact = small_exact()
        workload = generate_workload(exact, ((0.0, 0.05), (0.05, 1.0)), seed=1)
        histogram = workload.histogram()
        assert len(histogram) == 2
        assert sum(count for _, count in histogram) == workload.n_queries

    def test_empty_exact_rejected(self):
        with pytest.raises(ConfigError):
            generate_workload(ExactCounter(2), ((0.0, 1.0),))

    def test_invalid_buckets(self):
        exact = small_exact()
        with pytest.raises(ConfigError):
            generate_workload(exact, ())
        with pytest.raises(ConfigError):
            generate_workload(exact, ((0.5, 0.5),))


class TestCompositeWorkloads:
    def test_sum_queries_have_distinct_patterns(self):
        exact = small_exact()
        base = generate_workload(exact, ((0.0, 1.0),), max_per_bucket=30, seed=1)
        workload = generate_sum_workload(
            base, exact, ((0.0, 10.0),), n_queries=50, n_patterns=3, seed=2
        )
        for query in workload.all_queries():
            assert len(set(query.patterns)) == 3
            assert query.actual == sum(
                exact.count_ordered(p) for p in query.patterns
            )

    def test_product_actual_is_product(self):
        exact = small_exact()
        base = generate_workload(exact, ((0.0, 1.0),), max_per_bucket=30, seed=1)
        workload = generate_product_workload(
            base, exact, ((0.0, 1e9),), n_queries=30, n_patterns=2, seed=2
        )
        assert workload.n_queries > 0
        for query in workload.all_queries():
            product = 1
            for pattern in query.patterns:
                product *= exact.count_ordered(pattern)
            assert query.actual == product

    def test_selectivity_definition(self):
        # Paper: composite selectivity divides by total sequences processed.
        exact = small_exact()
        base = generate_workload(exact, ((0.0, 1.0),), max_per_bucket=30, seed=1)
        workload = generate_sum_workload(
            base, exact, ((0.0, 10.0),), n_queries=10, seed=4
        )
        for query in workload.all_queries():
            assert query.selectivity == pytest.approx(
                query.actual / exact.n_values
            )

    def test_pool_too_small_rejected(self):
        exact = small_exact()
        base = generate_workload(exact, ((0.9, 1.0),), seed=1)  # empty pool
        with pytest.raises(ConfigError):
            generate_sum_workload(base, exact, ((0.0, 1.0),), n_patterns=3)
