"""Tests for the k-wise independent ±1 random variable generators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sketch import MERSENNE_31, XiGenerator


class TestBasics:
    def test_values_are_plus_minus_one(self):
        gen = XiGenerator(50, seed=1)
        signs = gen.xi_batch(np.arange(200, dtype=np.int64))
        assert set(np.unique(signs)) <= {-1, 1}

    def test_deterministic_given_seed(self):
        a, b = XiGenerator(10, seed=3), XiGenerator(10, seed=3)
        assert np.array_equal(a.xi(12345), b.xi(12345))

    def test_different_seeds_differ(self):
        a, b = XiGenerator(64, seed=1), XiGenerator(64, seed=2)
        assert not np.array_equal(
            a.xi_batch(np.arange(64)), b.xi_batch(np.arange(64))
        )

    def test_scalar_matches_batch(self):
        gen = XiGenerator(20, seed=5)
        batch = gen.xi_batch(np.asarray([7, 11], dtype=np.int64))
        assert np.array_equal(gen.xi(7), batch[:, 0])
        assert np.array_equal(gen.xi(11), batch[:, 1])

    def test_big_integer_values_reduced(self):
        gen = XiGenerator(5, seed=2)
        huge = 10**30 + 7
        assert np.array_equal(gen.xi(huge), gen.xi(huge % MERSENNE_31))

    def test_xi_values_accepts_python_ints(self):
        gen = XiGenerator(5, seed=2)
        out = gen.xi_values([10**30, 3])
        assert out.shape == (5, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            XiGenerator(0)
        with pytest.raises(ConfigError):
            XiGenerator(4, independence=1)

    def test_spawn_derives_independent_generator(self):
        gen = XiGenerator(16, seed=1)
        spawned = gen.spawn(100)
        assert spawned.seed == 101
        assert not np.array_equal(
            gen.xi_batch(np.arange(16)), spawned.xi_batch(np.arange(16))
        )

    @given(st.integers(0, 2**31 - 2))
    def test_matches_explicit_horner(self, value):
        # Independent reimplementation of the polynomial hash.
        gen = XiGenerator(3, independence=4, seed=9)
        coeffs = gen._coeffs  # (k, n)
        for instance in range(3):
            h = 0
            for degree in range(3, -1, -1):
                h = (h * value + int(coeffs[degree, instance])) % MERSENNE_31
            expected = (h & 1) * 2 - 1
            assert gen.xi(value)[instance] == expected


class TestStatisticalProperties:
    """Empirical checks of the (approximate) k-wise independence.

    These use many instances so the law of large numbers applies across
    the *family*; tolerances are loose enough to be deterministic for the
    fixed seeds used.
    """

    N = 4000

    def test_zero_mean(self):
        gen = XiGenerator(self.N, seed=7)
        for value in (0, 1, 12345, MERSENNE_31 - 1):
            mean = gen.xi(value).mean()
            assert abs(mean) < 0.06

    def test_pairwise_uncorrelated(self):
        gen = XiGenerator(self.N, seed=8)
        base = gen.xi(42)
        for other in (43, 1000, 999983):
            correlation = (base * gen.xi(other)).mean()
            assert abs(correlation) < 0.06

    def test_fourwise_product_zero_mean(self):
        gen = XiGenerator(self.N, seed=9)
        product = (
            gen.xi(1) * gen.xi(2) * gen.xi(3) * gen.xi(4)
        ).mean()
        assert abs(product) < 0.06

    def test_squares_are_one(self):
        gen = XiGenerator(100, seed=10)
        assert np.array_equal(gen.xi(77) ** 2, np.ones(100, dtype=np.int64))

    def test_higher_independence_supported(self):
        gen = XiGenerator(self.N, independence=8, seed=11)
        values = [gen.xi(v) for v in range(6)]
        product = np.prod(values, axis=0).mean()
        assert abs(product) < 0.06
