"""Tests for the pattern → integer encoder (both mapping modes)."""

import pytest
from hypothesis import given, settings

from repro.core import PatternEncoder
from repro.errors import ConfigError
from tests.strategies import count_nodes, nested_trees


class TestEncoder:
    def test_deterministic_across_instances(self):
        a = PatternEncoder(seed=7)
        b = PatternEncoder(seed=7)
        pattern = ("A", (("B", ()), ("C", ())))
        assert a.encode(pattern) == b.encode(pattern)

    def test_different_seeds_usually_differ(self):
        pattern = ("A", (("B", ()),))
        values = {PatternEncoder(seed=s).encode(pattern) for s in range(8)}
        assert len(values) > 1

    def test_caching(self):
        encoder = PatternEncoder(seed=1)
        pattern = ("A", (("B", ()),))
        encoder.encode(pattern)
        encoder.encode(pattern)
        assert encoder.cache_size == 1

    def test_encode_many_preserves_order(self):
        encoder = PatternEncoder(seed=1)
        patterns = [("A", ()), ("B", ()), ("A", ())]
        values = encoder.encode_many(patterns)
        assert values[0] == values[2]
        assert values[0] != values[1]

    def test_rabin_values_bounded(self):
        encoder = PatternEncoder(mapping="rabin", degree=31, seed=2)
        value = encoder.encode(("A", (("B", ()), ("C", ()))))
        assert 0 <= value < (1 << 31)

    def test_pairing_mode_exact(self):
        encoder = PatternEncoder(mapping="pairing")
        a = encoder.encode(("A", (("B", ()),)))
        b = encoder.encode(("A", (("C", ()),)))
        assert a != b

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ConfigError):
            PatternEncoder(mapping="sha256")

    def test_sibling_order_distinguished(self):
        encoder = PatternEncoder(seed=3)
        assert encoder.encode(("A", (("B", ()), ("C", ())))) != encoder.encode(
            ("A", (("C", ()), ("B", ())))
        )

    def test_label_vs_structure_distinguished(self):
        encoder = PatternEncoder(seed=3)
        chain = ("A", (("B", (("C", ()),)),))
        flat = ("A", (("B", ()), ("C", ())))
        assert encoder.encode(chain) != encoder.encode(flat)

    def test_many_patterns_no_collisions_rabin(self):
        # 31-bit residues over a few thousand distinct patterns: expected
        # collisions ~ n^2/2^32 < 0.01.
        encoder = PatternEncoder(mapping="rabin", seed=5)
        patterns = [
            (f"L{i}", ((f"L{j}", ()),)) for i in range(60) for j in range(60)
        ]
        values = encoder.encode_many(patterns)
        assert len(set(values)) == len(patterns)

    def test_unicode_labels(self):
        encoder = PatternEncoder(seed=4)
        a = encoder.encode(("café", (("中文", ()),)))
        b = encoder.encode(("cafe", (("中文", ()),)))
        assert a != b
        assert encoder.encode(("café", (("中文", ()),))) == a

    # Pairing values grow *doubly exponentially* with pattern size (the
    # paper's own argument against them, Section 6.1) — a pattern of just
    # ~10 nodes already needs a multi-megabit integer.  The property is
    # therefore checked on tiny patterns only; injectivity for larger
    # inputs follows from the Prüfer round-trip property plus the integer
    # pairing inverse, both tested exhaustively elsewhere.
    @given(
        nested_trees(max_nodes=4).filter(lambda p: count_nodes(p) <= 4),
        nested_trees(max_nodes=4).filter(lambda p: count_nodes(p) <= 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_pairing_mode_injective(self, a, b):
        encoder = PatternEncoder(mapping="pairing")
        if a != b:
            assert encoder.encode(a) != encoder.encode(b)

    @given(nested_trees(max_nodes=8))
    @settings(max_examples=40, deadline=None)
    def test_rabin_deterministic_property(self, pattern):
        assert PatternEncoder(seed=9).encode(pattern) == PatternEncoder(
            seed=9
        ).encode(pattern)
