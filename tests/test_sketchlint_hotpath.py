"""Tests for sketchlint's hot-path phase (SKL301–SKL305), the
``--explain-hot`` report, and ``--update-baseline``'s prune-on-write.

Rule fixtures live under ``tests/fixtures/sketchlint/hotpath`` as a
mini-project analysed with a *custom* :class:`HotPathConfig` whose
entrypoint glob makes every fixture function hot.  The
acceptance-mutation tests run the real analysis over the real ``src/``
tree with one performance fix surgically reverted, pinning that the
rules would catch exactly the regressions this phase exists to prevent.
"""

import json
from pathlib import Path

import pytest

from tools.sketchlint.cli import main as cli_main
from tools.sketchlint.semantic import analyze_project
from tools.sketchlint.semantic.callgraph import CallGraph
from tools.sketchlint.semantic.hotpath import (
    DEFAULT_CONFIG,
    HotPathConfig,
    check_hotpath,
    explain_hot,
    hot_functions,
)
from tools.sketchlint.semantic.model import ProjectModel

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "sketchlint" / "hotpath"

#: Every fixture function is a hot entrypoint; both Batch classes carry
#: columnar ndarray attributes.
APP_CONFIG = HotPathConfig(
    entrypoints=("app.*",),
    columnar_attrs=(
        ("app.skl302_columnar.Batch", ("values", "counts")),
        ("app.pipeline.Batch", ("values", "counts")),
    ),
)


def write_project(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise ``relative path -> source`` as a package tree."""
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        for parent in path.parents:
            if parent == root:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return root


def pairs_under(root: Path):
    return [
        (path, path.read_text(encoding="utf-8"))
        for path in sorted(root.rglob("*.py"))
    ]


def run_hotpath(pairs, config=APP_CONFIG):
    model = ProjectModel.build(pairs)
    graph = CallGraph.build(model)
    return check_hotpath(model, graph, config)


def run_project(tmp_path, files, config=APP_CONFIG):
    return run_hotpath(pairs_under(write_project(tmp_path, files)), config)


def rules_of(violations):
    return sorted({v.rule for v in violations})


class TestFixtures:
    def test_bad_fixtures_fire_exactly_their_rule(self):
        violations = run_hotpath(pairs_under(FIXTURES / "bad"))
        by_file: dict[str, set] = {}
        for violation in violations:
            by_file.setdefault(Path(violation.path).stem, set()).add(violation.rule)
        by_file.pop("__init__", None)
        assert by_file == {
            "skl301_double_consume": {"SKL301"},
            "skl302_columnar": {"SKL302"},
            "skl303_alloc": {"SKL303"},
            "skl304_astype": {"SKL304"},
            "skl305_obs": {"SKL305"},
        }

    def test_clean_fixtures_have_no_findings(self):
        assert run_hotpath(pairs_under(FIXTURES / "clean")) == []


class TestSKL301SingleUse:
    def test_iterator_reconsumed_inside_a_loop(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "def widest(rows, cols):\n"
                    "    pairs = zip(rows, cols)\n"
                    "    best = 0\n"
                    "    for _ in range(3):\n"
                    "        best = max(best, sum(pairs))\n"
                    "    return best\n"
                ),
            },
        )
        assert rules_of(violations) == ["SKL301"]
        assert "pairs" in violations[0].message

    def test_iterable_param_consumed_per_bucket(self, tmp_path):
        # The WindowedSketchTree.estimate_sum bug class in miniature.
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "from typing import Iterable\n"
                    "def spread(queries: Iterable, buckets):\n"
                    "    return sum(b.score(queries) for b in buckets)\n"
                ),
            },
        )
        assert rules_of(violations) == ["SKL301"]

    def test_materialised_param_is_clean(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "from typing import Iterable\n"
                    "def spread(queries: Iterable, buckets):\n"
                    "    queries = list(queries)\n"
                    "    return sum(b.score(queries) for b in buckets)\n"
                ),
            },
        )
        assert violations == []

    def test_early_return_paths_do_not_double_count(self, tmp_path):
        # `return run(trees)` ends its control path; the later iter() is
        # the first consumption on the fall-through path.
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "from typing import Iterable\n"
                    "def resume(restored, trees: Iterable):\n"
                    "    if restored is None:\n"
                    "        return list(trees)\n"
                    "    it = iter(trees)\n"
                    "    next(it, None)\n"
                    "    return list(it)\n"
                ),
            },
        )
        assert violations == []

    def test_numpy_generator_param_is_not_one_shot(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "import numpy as np\n"
                    "def draw(rng: np.random.Generator, n: int):\n"
                    "    return [rng.integers(10) for _ in range(n)]\n"
                ),
            },
        )
        assert violations == []

    def test_sequence_param_consumed_twice_is_clean(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "from typing import Sequence\n"
                    "def both(values: Sequence):\n"
                    "    return sum(values), max(values)\n"
                ),
            },
        )
        assert violations == []


class TestSKL303Allocation:
    def test_variant_allocation_is_clean(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "import numpy as np\n"
                    "def ingest(rows):\n"
                    "    out = []\n"
                    "    for row in rows:\n"
                    "        out.append(np.zeros(row))\n"  # depends on row
                    "    return out\n"
                ),
            },
        )
        assert violations == []

    def test_concatenate_outside_loop_is_clean(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "import numpy as np\n"
                    "def ingest(chunks):\n"
                    "    parts = list(chunks)\n"
                    "    return np.concatenate(parts)\n"
                ),
            },
        )
        assert violations == []

    def test_self_mutating_loop_chains_are_not_invariant(self, tmp_path):
        # The WindowedSketchTree._rotate pattern: a self-method call in
        # the loop may rewrite any attribute, so repeated self.* chains
        # must not be reported as hoistable.
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "class Window:\n"
                    "    def ingest(self, trees):\n"
                    "        for tree in trees:\n"
                    "            self.bucket.synopsis.add(tree)\n"
                    "            if self.bucket.synopsis.full():\n"
                    "                self._rotate()\n"
                    "    def _rotate(self):\n"
                    "        self.bucket = None\n"
                ),
            },
            HotPathConfig(entrypoints=("app.mod.Window.ingest",), columnar_attrs=()),
        )
        assert [v for v in violations if v.rule == "SKL303"] == []

    def test_cold_functions_are_not_checked(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "import numpy as np\n"
                    "def offline(chunks):\n"
                    "    acc = np.zeros(2)\n"
                    "    for chunk in chunks:\n"
                    "        acc = np.concatenate([acc, chunk])\n"
                    "    return acc\n"
                ),
            },
            HotPathConfig(entrypoints=("app.mod.nothing_matches",), columnar_attrs=()),
        )
        assert violations == []

    def test_hot_helper_reached_transitively(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "import numpy as np\n"
                    "def ingest(chunks):\n"
                    "    return _apply(chunks)\n"
                    "def _apply(chunks):\n"
                    "    acc = np.zeros(2)\n"
                    "    for chunk in chunks:\n"
                    "        acc = np.concatenate([acc, chunk])\n"
                    "    return acc\n"
                ),
            },
            HotPathConfig(entrypoints=("app.mod.ingest",), columnar_attrs=()),
        )
        assert rules_of(violations) == ["SKL303"]
        assert "ingest -> app.mod._apply" in violations[0].message


class TestSKL305Observability:
    def test_while_true_event_loop_try_is_exempt(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "def drain(queue):\n"
                    "    while True:\n"
                    "        try:\n"
                    "            item = queue.get()\n"
                    "        except TimeoutError:\n"
                    "            return\n"
                ),
            },
        )
        assert violations == []

    def test_try_amortised_over_inner_loop_is_exempt(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "def ingest(groups):\n"
                    "    out = []\n"
                    "    for group in groups:\n"
                    "        try:\n"
                    "            for row in group:\n"
                    "                out.append(row)\n"
                    "        except ValueError:\n"
                    "            continue\n"
                    "    return out\n"
                ),
            },
        )
        assert violations == []

    def test_observe_batch_is_the_fix(self, tmp_path):
        violations = run_project(
            tmp_path,
            {
                "app/mod.py": (
                    "def ingest(histogram, batches):\n"
                    "    for batch in batches:\n"
                    "        histogram.observe_batch(batch)\n"
                ),
            },
        )
        assert violations == []


class TestExplainHot:
    def test_hot_set_includes_transitive_callees_with_chains(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "app/mod.py": (
                    "def ingest(trees):\n"
                    "    return _helper(trees)\n"
                    "def _helper(trees):\n"
                    "    return list(trees)\n"
                    "def cold(trees):\n"
                    "    return None\n"
                ),
            },
        )
        pairs = pairs_under(root)
        model = ProjectModel.build(pairs)
        graph = CallGraph.build(model)
        config = HotPathConfig(entrypoints=("app.mod.ingest",), columnar_attrs=())
        chains = hot_functions(model, graph, config)
        assert set(chains) == {"app.mod.ingest", "app.mod._helper"}
        assert chains["app.mod._helper"] == ["app.mod.ingest", "app.mod._helper"]
        report = explain_hot(model, graph, config)
        assert "hot set: 2 functions" in report
        assert "app.mod.ingest -> app.mod._helper" in report

    def test_cli_explain_hot_over_real_src(self, capsys):
        rc = cli_main(["--explain-hot", "src"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro.core.sketchtree.SketchTree.update_batch" in out
        assert "repro.core.virtual.VirtualStreams.update_batch" in out
        assert "via:" in out

    def test_default_entrypoints_cover_the_serving_read_path(self):
        pairs = _src_pairs()
        model = ProjectModel.build(pairs)
        graph = CallGraph.build(model)
        chains = hot_functions(model, graph, DEFAULT_CONFIG)
        assert "repro.serve.service.ShardedService.estimate_sum" in chains
        assert "repro.enumtree.enumerate.collect_forest_patterns" in chains


class TestUpdateBaselinePrune:
    # SKL003 (mutable default) fires regardless of the file's path.
    FLAGGED_SOURCE = "def roll(seen=[]):\n    return seen\n"

    def _update(self, target: Path, baseline: Path) -> int:
        return cli_main(
            [
                str(target),
                "--baseline",
                str(baseline),
                "--update-baseline",
                "--no-semantic",
            ]
        )

    def test_entries_for_deleted_files_are_pruned(self, tmp_path, capsys):
        a_dir = tmp_path / "a"
        b_dir = tmp_path / "b"
        a_dir.mkdir()
        b_dir.mkdir()
        (a_dir / "mod_a.py").write_text(self.FLAGGED_SOURCE, encoding="utf-8")
        (b_dir / "mod_b.py").write_text(self.FLAGGED_SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"

        assert self._update(a_dir, baseline) == 0
        first = json.loads(baseline.read_text(encoding="utf-8"))["findings"]
        assert len(first) == 1

        # File a disappears; updating over b alone must prune a's entry.
        (a_dir / "mod_a.py").unlink()
        assert self._update(b_dir, baseline) == 0
        second = json.loads(baseline.read_text(encoding="utf-8"))["findings"]
        assert len(second) == 1
        (entry,) = second.values()
        assert entry["path"].endswith("mod_b.py")
        assert "pruned" in capsys.readouterr().out

    def test_entries_for_existing_out_of_scope_files_are_retained(self, tmp_path):
        a_dir = tmp_path / "a"
        b_dir = tmp_path / "b"
        a_dir.mkdir()
        b_dir.mkdir()
        (a_dir / "mod_a.py").write_text(self.FLAGGED_SOURCE, encoding="utf-8")
        (b_dir / "mod_b.py").write_text(self.FLAGGED_SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"

        assert self._update(a_dir, baseline) == 0
        assert self._update(b_dir, baseline) == 0
        findings = json.loads(baseline.read_text(encoding="utf-8"))["findings"]
        paths = sorted(entry["path"] for entry in findings.values())
        assert len(findings) == 2
        assert paths[0].endswith("mod_a.py") and paths[1].endswith("mod_b.py")

    def test_relinted_paths_are_replaced_not_duplicated(self, tmp_path):
        a_dir = tmp_path / "a"
        a_dir.mkdir()
        target = a_dir / "mod_a.py"
        target.write_text(self.FLAGGED_SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert self._update(a_dir, baseline) == 0

        target.write_text("VALUE = 1\n", encoding="utf-8")  # now clean
        assert self._update(a_dir, baseline) == 0
        findings = json.loads(baseline.read_text(encoding="utf-8"))["findings"]
        assert findings == {}


def _src_pairs(mutate: dict[str, tuple[str, str]] | None = None):
    """All of src/ as ``(path, source)``, with optional string surgeries.

    ``mutate`` maps a path suffix to an ``(old, new)`` replacement; the
    test fails if the old text is missing (the fixture went stale).
    """
    pairs = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        if mutate:
            for suffix, (old, new) in mutate.items():
                if path.as_posix().endswith(suffix):
                    assert old in source, f"stale mutation fixture for {suffix}"
                    source = source.replace(old, new)
        pairs.append((path, source))
    return pairs


SKL3XX = {"SKL301", "SKL302", "SKL303", "SKL304", "SKL305"}


class TestAcceptanceMutations:
    """Re-introducing the bugs this phase fixed must trip the analysis."""

    def test_real_src_is_clean(self):
        assert analyze_project(_src_pairs(), select=SKL3XX) == []

    def test_estimate_sum_generator_bug_trips_skl301(self):
        # PR 7's bug, reintroduced: dropping the materialisation hands
        # the same iterable to every live bucket, so the first bucket
        # exhausts it and the rest silently estimate 0.
        mutated = _src_pairs(
            mutate={
                "repro/core/window.py": (
                    "        queries = list(queries)\n"
                    "        return sum(b.estimate_sum(queries) for b in "
                    "self._live_buckets())\n",
                    "        return sum(b.estimate_sum(queries) for b in "
                    "self._live_buckets())\n",
                )
            }
        )
        violations = analyze_project(mutated, select={"SKL301"})
        assert any(
            v.rule == "SKL301" and v.path.endswith("repro/core/window.py")
            for v in violations
        )

    def test_concatenate_in_hot_loop_trips_skl303(self):
        # Rebuilding the group-edge array with np.concatenate inside the
        # chunk loop is the quadratic-growth pattern SKL303 exists for.
        mutated = _src_pairs(
            mutate={
                "repro/core/virtual.py": (
                    "            edges = np.empty(len(change) + 2, dtype=np.int64)\n"
                    "            edges[0] = 0\n"
                    "            edges[1:-1] = change\n"
                    "            edges[-1] = hi - lo\n",
                    "            edges = np.concatenate(([0], change, [hi - lo]))\n",
                )
            }
        )
        violations = analyze_project(mutated, select={"SKL303"})
        assert any(
            v.rule == "SKL303" and v.path.endswith("repro/core/virtual.py")
            for v in violations
        )
